#!/usr/bin/env python3
"""Watch the lower bounds bite: crawls of the Theorem 3 / 4 instances.

The paper's second contribution is a pair of adversarial constructions
proving no algorithm can beat rank-shrink / slice-cover by more than a
constant factor.  This example builds those instances, crawls them, and
prints the sandwich

    lower bound  <=  measured cost  <=  Theorem 1 upper bound

together with the structural facts the proofs rest on (Lemma 5's
distinct-resolved-query cover; Lemma 7's "diverse queries resolve").

Run::

    python examples/adversarial_hardness.py
"""

from repro import RankShrink, SliceCover, TopKServer, assert_complete
from repro.datasets import theorem3_instance, theorem4_instance
from repro.theory import bounds
from repro.theory.hardness import (
    check_lemma5_cover,
    check_lemma7_diverse_resolves,
    classify_categorical_query,
)


def theorem3_demo() -> None:
    k, d = 32, 4
    print(f"Theorem 3 (numeric): k={k}, d={d}")
    print(f"  {'m':>4} {'n':>6} {'lower d*m':>10} {'measured':>9} {'upper':>7}")
    for m in (8, 16, 32):
        instance = theorem3_instance(k, d, m)
        crawler = RankShrink(TopKServer(instance.dataset, k=k))
        result = crawler.crawl()
        assert_complete(result, instance.dataset)
        upper = bounds.rank_shrink_upper_bound(instance.dataset.n, k, d)
        print(
            f"  {m:>4} {instance.dataset.n:>6} {instance.lower_bound:>10} "
            f"{result.cost:>9} {upper:>7}"
        )
        # Lemma 5: every non-diagonal point needs its own resolved query.
        log = [(q, crawler.client.peek(q)) for q in crawler.client.history]
        check_lemma5_cover(log, instance.non_diagonal_points)
    print("  Lemma 5 verified: each non-diagonal point covered by a "
          "distinct resolved query\n")


def theorem4_demo() -> None:
    k = 20  # d = 2k = 40; dU^2 <= 2^(d/4) holds for U <= 5
    print(f"Theorem 4 (categorical): k={k}, d={2 * k}")
    print(f"  {'U':>4} {'n':>5} {'lower':>7} {'measured':>9} {'upper':>7} "
          f"{'diverse':>8} {'monotonic':>10}")
    for U in (3, 4, 5):
        instance = theorem4_instance(k, U)
        crawler = SliceCover(TopKServer(instance.dataset, k=k))
        result = crawler.crawl()
        assert_complete(result, instance.dataset)
        log = [(q, crawler.client.peek(q)) for q in crawler.client.history]
        check_lemma7_diverse_resolves(log)
        kinds = [classify_categorical_query(q) for q in crawler.client.history]
        print(
            f"  {U:>4} {instance.n:>5} "
            f"{bounds.theorem4_lower_bound(instance.d, U):>7} "
            f"{result.cost:>9} {bounds.theorem4_upper_bound(k, U):>7} "
            f"{kinds.count('diverse'):>8} {kinds.count('monotonic'):>10}"
        )
    print("  Lemma 7 verified: every diverse query resolved")
    print("\nThe measured costs track the Omega(dU^2) shape -- the "
          "multiplicative penalty the paper proves unavoidable once a "
          "database has two categorical attributes with large domains.")


def main() -> None:
    theorem3_demo()
    theorem4_demo()


if __name__ == "__main__":
    main()
