#!/usr/bin/env python3
"""Crawl a purely categorical grants portal: DFS vs slice-cover variants.

An NSF-awards-style database has only categorical attributes (funding
bracket, instrument, field, state, ...) with wildly different domain
sizes -- from 5 up to tens of thousands.  This is where the choice of
algorithm matters by orders of magnitude (paper Figure 11): the eager
slice table pays ``sum(Ui)`` up front, DFS explores the data space tree
blindly, and lazy-slice-cover touches only the slices the traversal
actually needs.

The script also demonstrates the domain-discovery extension: crawling
the same portal when the attribute domains are *not* printed on the
search form.

Run::

    python examples/grants_portal.py
"""

from repro import (
    DepthFirstSearch,
    LazySliceCover,
    SliceCover,
    TopKServer,
    assert_complete,
)
from repro.datasets import nsf
from repro.discovery import discover_domains

N = 8000  # scaled-down portal (the paper's NSF crawl has 47,816)
K = 64


def main() -> None:
    dataset = nsf(n=N, seed=23)
    sizes = dataset.space.categorical_domain_sizes
    print(f"portal: {dataset.n} awards, domain sizes {sizes}")
    print(f"slice-table cost floor (sum Ui): {sum(sizes)}\n")

    print(f"algorithm comparison at k = {K}:")
    print(f"  {'algorithm':<18} {'queries':>8}  {'phases'}")
    for cls in (DepthFirstSearch, SliceCover, LazySliceCover):
        server = TopKServer(dataset, k=K, priority_seed=3)
        result = cls(server).crawl()
        assert_complete(result, dataset)
        phases = result.phase_costs or "-"
        print(f"  {result.algorithm:<18} {result.cost:>8}  {phases}")

    # -- domain discovery (extension) ----------------------------------
    print("\ndomain discovery (when the form shows no pull-down menus):")
    server = TopKServer(dataset, k=K, priority_seed=3)
    report = discover_domains(server, max_queries=400)
    print(f"  probes spent: {report.cost}, saturated: {report.saturated}")
    for i, attr in enumerate(dataset.space):
        present = len({int(v) for v in dataset.rows[:, i]})
        print(
            f"  {attr.name:<10} discovered {report.counts[i]:>6} values "
            f"({present} present in data, domain {attr.domain_size})"
        )
    print(
        "  note: values absent from the data are undiscoverable -- and "
        "irrelevant to the crawl's output."
    )


if __name__ == "__main__":
    main()
