#!/usr/bin/env python3
"""A multi-day crawl under a per-IP daily query quota.

The paper motivates its cost metric with exactly this constraint: "most
systems have a control on how many queries can be submitted by the same
IP address within a period of time (e.g., a day)".  This example crawls
a marketplace whose server admits only 150 queries per day:

* each day the crawler runs until the quota trips;
* overnight, nothing is lost -- the algorithms are deterministic and the
  response cache replays the finished prefix for free;
* progressive output means every day ends with a usable partial bag.

Run::

    python examples/budgeted_crawl.py
"""

from repro import (
    CachingClient,
    DailyRateLimit,
    Hybrid,
    SimulatedClock,
    TopKServer,
    assert_complete,
)
from repro.datasets import yahoo_autos

N = 10000
K = 128
PER_DAY = 150


def main() -> None:
    dataset = yahoo_autos(n=N, seed=5, duplicates=0)
    clock = SimulatedClock()
    server = TopKServer(
        dataset, k=K, priority_seed=2, limits=[DailyRateLimit(PER_DAY, clock)]
    )
    client = CachingClient(server)  # shared across days: the crawl state

    print(f"inventory: {dataset.n} tuples; quota: {PER_DAY} queries/day\n")
    print(f"  {'day':>4} {'queries today':>14} {'tuples so far':>14} {'%':>6}")

    result = None
    for day in range(1, 40):
        before = client.cost
        result = Hybrid(client).crawl(allow_partial=True)
        spent_today = client.cost - before
        extracted = result.tuples_extracted
        print(
            f"  {day:>4} {spent_today:>14} {extracted:>14} "
            f"{100 * extracted / dataset.n:>5.1f}%"
        )
        if result.complete:
            break
        clock.sleep_until_next_day()

    assert result is not None and result.complete
    assert_complete(result, dataset)
    print(
        f"\nfinished on day {clock.day + 1}: {client.cost} total queries, "
        f"{result.tuples_extracted} tuples, bag verified exact"
    )
    print(
        "resumption was free: every morning the deterministic crawler "
        "replayed its finished prefix from the response cache."
    )


if __name__ == "__main__":
    main()
