#!/usr/bin/env python3
"""Sampling versus crawling: what a query budget actually buys.

The deep-web literature the paper builds on (its Section 1.4) offers
two ways to learn about a hidden database: *estimate* aggregates from
random drill-down samples, or *crawl* the whole content and compute
anything exactly.  This example stages the fair fight on a synthetic
car marketplace:

1. a size/sum estimate from Horvitz-Thompson weighted drill-down walks
   at several query budgets;
2. budget-capped hybrid crawls at the same budgets, reporting how much
   of the database each extracted;
3. the punchline: once the budget reaches the crawler's finishing cost
   (near-optimal by Theorem 1), every further question -- means,
   histograms, joins, whatever -- is answered exactly and for free.

Run::

    python examples/analytics_showdown.py
"""

import numpy as np

from repro import TopKServer
from repro.analytics import compare_at_budgets, estimate_mean
from repro.dataspace.dataset import Dataset
from repro.dataspace.space import DataSpace


def build_marketplace(n: int = 4000, seed: int = 11) -> Dataset:
    """A mixed-space marketplace with skewed makes and correlated price."""
    rng = np.random.default_rng(seed)
    space = DataSpace.mixed(
        [("make", 12), ("body", 5)],
        ["year", "price"],
        numeric_bounds=[(1995, 2012), (0, 65535)],
    )
    make = 1 + np.minimum(rng.geometric(0.35, n) - 1, 11)
    body = rng.integers(1, 6, n)
    year = rng.integers(1995, 2013, n)
    price = np.clip(
        (year - 1990) * 1500 + rng.normal(0, 4000, n), 0, 65535
    ).astype(np.int64)
    rows = np.column_stack([make, body, year, price]).astype(np.int64)
    return Dataset(space, rows, name="marketplace")


def main() -> None:
    dataset = build_marketplace()
    k = 64
    price = dataset.space.index_of("price")

    budgets = [25, 50, 100, 200, 400, 800]
    report = compare_at_budgets(dataset, k, budgets, attribute=price, seed=4)

    print(f"marketplace: n={report.n}, k={k}")
    print(f"full hybrid crawl finishes in {report.crawl_full_cost} queries")
    print()
    header = (
        f"{'budget':>7} {'size err':>9} {'sum err':>9} "
        f"{'crawled':>8} {'exact?':>7}"
    )
    print(header)
    print("-" * len(header))
    for budget, size_err, sum_err, fraction, complete in report.rows():
        print(
            f"{budget:>7} {size_err:>9.1%} {sum_err:>9.1%} "
            f"{fraction:>8.1%} {complete:>7}"
        )

    print()
    print("after a complete crawl, any aggregate is exact; e.g. the mean")
    truth = float(dataset.rows[:, price].mean())
    estimate = estimate_mean(TopKServer(dataset, k), price, walks=600, seed=4)
    print(f"  true mean price:      {truth:12.2f}  (crawl: exact, free)")
    print(
        f"  sampling estimate:    {estimate.estimate:12.2f}"
        f"  (+- {estimate.stderr:.2f}, {estimate.cost} queries)"
    )


if __name__ == "__main__":
    main()
