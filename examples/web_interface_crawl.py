#!/usr/bin/env python3
"""Crawl a hidden database through its *web interface* -- HTML only.

Everything the paper assumes about the interface is exercised for real
here: the crawler fetches the search page, reads the schema and the
categorical domains off the pull-down menus (the Section 1.3
observation), learns the retrieval limit ``k`` from the page, and then
runs the hybrid algorithm by submitting form queries and scraping the
dynamically generated result pages.  At no point does it hold a handle
to the server or the dataset.

Run::

    python examples/web_interface_crawl.py
"""

from repro import CachingClient, Hybrid, TopKServer, verify_complete
from repro.datasets import yahoo_autos
from repro.web import HiddenWebSite, WebSession


def main() -> None:
    # ------------------------------------------------------------------
    # Provider side: a site fronting the (synthetic) Yahoo! Autos data.
    # Nothing below this object is reachable by the crawler.
    # ------------------------------------------------------------------
    dataset = yahoo_autos()
    site = HiddenWebSite(TopKServer(dataset, k=1024))

    # ------------------------------------------------------------------
    # Crawler side: bootstrap everything from the search page.
    # ------------------------------------------------------------------
    session = WebSession(site)
    print("Parsed the search form:")
    print(f"  schema: {session.space}")
    for i in range(session.space.cat):
        attr = session.space[i]
        print(f"  menu {attr.name!r} advertises {attr.domain_size} values")
    print(f"  page says each search returns at most k={session.k} results")
    print()

    result = Hybrid(CachingClient(session)).crawl()
    print(f"crawl: {result}")
    print(f"search requests sent: {session.requests}")
    print(f"pages served by the site (incl. the form): {site.pages_served}")

    # The paper's headline anecdote: ~200 queries suffice for the
    # 69,768-tuple Yahoo! Autos database at k around 1000.
    print()
    print(
        f"paper anecdote check: {result.cost} queries for "
        f"{result.tuples_extracted} tuples at k=1024 "
        "(paper: ~200 at k=1000)"
    )

    # Verification is possible only because this demo owns the dataset.
    report = verify_complete(result, dataset)
    print(f"verify: {report.summary()}")


if __name__ == "__main__":
    main()
