#!/usr/bin/env python3
"""Crawl a Yahoo!-Autos-scale marketplace and study k's impact.

The scenario of the paper's introduction: a search form over make, body
style, owner, price, year and mileage, a back-end limiting every answer
to k tuples, and a crawler that wants the entire inventory.

The script (on a scaled-down marketplace so it runs in seconds):

1. shows that the naive approach -- re-issuing the all-wildcard query --
   never gets past the first k tuples;
2. crawls the full inventory with hybrid and reports cost vs k;
3. demonstrates the feasibility cliff: with a dealer fleet of identical
   listings larger than k, no algorithm can finish (the paper's
   "no reported value for Yahoo at k = 64").

Run::

    python examples/auto_marketplace.py
"""

from repro import (
    Hybrid,
    InfeasibleCrawlError,
    Query,
    TopKServer,
    assert_complete,
)
from repro.datasets import yahoo_autos

N = 12000  # scaled-down marketplace (the paper's Yahoo has 69,768)
FLEET = 80  # identical listings planted at one point


def naive_recrawl(server, attempts: int = 5) -> int:
    """Re-issue the all-wildcard query; count distinct tuples seen."""
    seen = set()
    query = Query.full(server.space)
    for _ in range(attempts):
        response = server.run(query)
        seen.update(response.rows)
    return len(seen)


def main() -> None:
    dataset = yahoo_autos(n=N, seed=5, duplicates=FLEET)
    print(f"marketplace: {dataset.n} listings, min feasible k = "
          f"{dataset.min_feasible_k()}\n")

    # -- 1. why naive querying fails -----------------------------------
    server = TopKServer(dataset, k=128)
    distinct = naive_recrawl(server)
    print("naive re-querying the ANY/ANY/... form 5 times:")
    print(f"  distinct tuples seen: {distinct} of {dataset.n} "
          "(the same top-k every time)\n")

    # -- 2. hybrid crawl across k --------------------------------------
    print("hybrid crawl cost vs k:")
    print(f"  {'k':>6}  {'queries':>8}  {'tuples':>7}  {'queries/tuple':>13}")
    for k in (128, 256, 512, 1024):
        server = TopKServer(dataset, k=k, priority_seed=1)
        result = Hybrid(server).crawl()
        assert_complete(result, dataset)
        print(
            f"  {k:>6}  {result.cost:>8}  {result.tuples_extracted:>7}"
            f"  {result.cost / result.tuples_extracted:>13.4f}"
        )

    # -- 3. the feasibility cliff --------------------------------------
    print(f"\nfeasibility: the planted fleet has {FLEET} identical listings")
    for k in (64, 128):
        server = TopKServer(dataset, k=k, priority_seed=1)
        try:
            result = Hybrid(server).crawl()
            print(f"  k = {k:4d}: complete in {result.cost} queries")
        except InfeasibleCrawlError as exc:
            print(f"  k = {k:4d}: IMPOSSIBLE -- {exc}")


if __name__ == "__main__":
    main()
