#!/usr/bin/env python3
"""Partitioned crawling: several rate-limited identities, one database.

The paper's cost metric exists because servers meter queries per IP per
day.  A crawler with several identities can split the data space into
disjoint regions and crawl them through separate sessions -- each with
its own daily quota -- cutting the *wall-clock days* needed to finish
even though the total query count rises slightly (shared prefixes are
re-paid per session).

This example partitions a synthetic Yahoo! Autos database on MAKE
across four sessions, gives each a 60-queries-per-day quota, and
compares the calendar time against a single-identity crawl under the
same quota.  It then re-runs the plan on the concurrent executor
(:func:`repro.crawl.parallel.crawl_partitioned_parallel`) against
latency-simulating servers, showing the real wall-clock win: worker
threads overlap the per-query round trips, and the merged bag and total
cost are identical to the sequential run -- that is the executor's
determinism contract.

Picking an executor backend
---------------------------
The thread pool is one of four pluggable backends
(:mod:`repro.crawl.executors`); all of them honour the same
determinism contract, so the choice is purely about where the time
goes:

``--executor thread`` (default)
    Latency-bound crawls: real round trips dominate, threads overlap
    them.
``--executor process``
    CPU-bound simulated workloads: the GIL caps threads at one core,
    worker processes do not.  Sources are pickled into the workers, so
    use limit-free servers (each worker admits against its own copy).
``--executor async``
    Awaitable sources (:class:`repro.server.AsyncLatencySource`, web
    adapters behind :class:`repro.server.AwaitableClient`): the waits
    multiplex on one event loop.
``--rebalance``
    Any backend: work stealing moves whole regions off the slowest
    session, using the observed cost of every finished region to pick
    the victim.  The merged result is unchanged, byte for byte.

The same switches exist programmatically::

    from repro.crawl.parallel import crawl_partitioned_parallel
    merged = crawl_partitioned_parallel(
        sources, plan, executor="process", rebalance=True
    )

and on the CLI::

    python -m repro.crawl data.csv --k 256 --workers 4 \
        --executor process --rebalance

The last section below demonstrates exactly that combination.

Run::

    python examples/partitioned_crawl.py
"""

import time

from repro import (
    DailyRateLimit,
    Hybrid,
    LatencySource,
    QueryBudgetExhausted,
    SimulatedClock,
    TopKServer,
)
from repro.crawl.parallel import crawl_partitioned_parallel
from repro.crawl.partition import (
    SubspaceView,
    crawl_partitioned,
    partition_space,
)
from repro.datasets import yahoo_autos


def crawl_days(crawl_once, clock: SimulatedClock) -> int:
    """Drive a budgeted crawl to completion, sleeping across days."""
    while True:
        try:
            crawl_once()
            return clock.day + 1
        except QueryBudgetExhausted:
            clock.sleep_until_next_day()


def main() -> None:
    dataset = yahoo_autos(n=12000, seed=5, duplicates=0)
    k, per_day, sessions = 256, 60, 4

    # ------------------------------------------------------------------
    # Baseline: one identity, one daily quota.
    # ------------------------------------------------------------------
    clock = SimulatedClock()
    server = TopKServer(dataset, k, limits=[DailyRateLimit(per_day, clock)])
    # Deterministic algorithm + shared response cache: each retry
    # replays the finished prefix for free and continues.
    from repro.server.client import CachingClient

    client = CachingClient(server)
    single_cost = []

    def run_single():
        Hybrid(client).crawl()
        single_cost.append(client.cost)

    days_single = crawl_days(run_single, clock)
    print(
        f"single identity : {single_cost[0]:4d} queries, "
        f"{days_single:2d} simulated days at {per_day}/day"
    )

    # ------------------------------------------------------------------
    # Partitioned: four identities, each with its own quota and region.
    # ------------------------------------------------------------------
    plan = partition_space(dataset.space, sessions)
    attr = dataset.space[plan.attribute]
    print(
        f"plan            : {len(plan.regions)} regions on "
        f"{attr.name!r}, {plan.sessions} sessions"
    )

    clocks = [SimulatedClock() for _ in range(sessions)]
    servers = [
        TopKServer(dataset, k, limits=[DailyRateLimit(per_day, clocks[i])])
        for i in range(sessions)
    ]

    # Each session crawls its bundle across as many days as it needs;
    # sessions run in parallel, so calendar time = the slowest session.
    session_days, session_costs, all_rows = [], [], []
    for i, bundle in enumerate(plan.bundles):
        client = CachingClient(servers[i])
        rows_before = len(all_rows)

        # Re-running replays cached prefixes at zero cost, so retrying
        # the whole bundle after each budget interruption is idempotent.
        def run_bundle(client=client, bundle=bundle, rows_before=rows_before):
            del all_rows[rows_before:]
            for region in bundle:
                result = Hybrid(
                    CachingClient(SubspaceView(client, region))
                ).crawl()
                all_rows.extend(result.rows)

        days = crawl_days(run_bundle, clocks[i])
        session_days.append(days)
        session_costs.append(client.cost)

    print(
        f"four identities : {sum(session_costs):4d} total queries "
        f"({session_costs} per session)"
    )
    print(
        f"calendar time   : {max(session_days):2d} days "
        f"(vs {days_single} single) -- sessions run concurrently"
    )
    assert sorted(all_rows) == sorted(dataset.iter_rows())
    print(f"merged bag      : exact ({len(all_rows)} tuples)")

    # ------------------------------------------------------------------
    # Wall clock: the same plan on the concurrent executor, against
    # servers that charge a simulated network round trip per query.
    # ------------------------------------------------------------------
    rtt = 0.002  # 2ms per query, a fast but honest round trip

    def latency_sources():
        return [
            LatencySource(TopKServer(dataset, k), rtt)
            for _ in range(sessions)
        ]

    start = time.perf_counter()
    sequential = crawl_partitioned(latency_sources(), plan)
    seq_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel = crawl_partitioned_parallel(
        latency_sources(), plan, max_workers=sessions
    )
    par_seconds = time.perf_counter() - start

    assert parallel.rows == sequential.rows  # byte-identical merge
    assert parallel.cost == sequential.cost
    print(
        f"wall clock      : {seq_seconds:.2f}s sequential vs "
        f"{par_seconds:.2f}s with {sessions} workers "
        f"({seq_seconds / par_seconds:.1f}x) at {rtt * 1000:.0f}ms RTT; "
        "identical bag and cost"
    )

    # ------------------------------------------------------------------
    # The same plan on the process backend with adaptive rebalancing:
    # `--executor process --rebalance` on the CLI.  Worker processes
    # escape the GIL (the win that matters on CPU-bound simulated
    # engines), the work-stealing scheduler drains the slowest session
    # first, and the merged result is still byte-identical.
    # ------------------------------------------------------------------
    def plain_sources():
        return [TopKServer(dataset, k) for _ in range(sessions)]

    start = time.perf_counter()
    stolen = crawl_partitioned_parallel(
        plain_sources(),
        plan,
        max_workers=sessions,
        executor="process",
        rebalance=True,
    )
    proc_seconds = time.perf_counter() - start
    reference = crawl_partitioned(plain_sources(), plan)
    assert stolen.rows == reference.rows  # stealing never changes rows
    assert stolen.cost == reference.cost
    assert stolen.progress == reference.progress
    print(
        f"process+steal   : {proc_seconds:.2f}s, "
        f"{stolen.cost} queries across {stolen.plan.sessions} sessions; "
        "byte-identical to sequential"
    )


if __name__ == "__main__":
    main()
