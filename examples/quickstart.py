#!/usr/bin/env python3
"""Quickstart: crawl a small hidden database end to end.

Builds a toy car-listing database, hides it behind a top-k interface,
crawls it with the paper's hybrid algorithm, and verifies the extracted
bag is exact.  Run::

    python examples/quickstart.py
"""

from repro import DataSpace, Dataset, Hybrid, TopKServer, verify_complete
from repro.theory.bounds import upper_bound_for_dataset


def main() -> None:
    # 1. A data space: two categorical attributes (make, body style) and
    #    two numeric ones (price, mileage) -- a miniature Yahoo! Autos.
    space = DataSpace.mixed(
        categorical_attrs=[("make", 4), ("body", 3)],
        numeric_names=["price", "mileage"],
    )

    # 2. The hidden content.  Note the duplicate listing: hidden
    #    databases are bags, and a correct crawl recovers multiplicity.
    rows = [
        # make, body, price, mileage
        (1, 1, 17500, 68647),
        (1, 1, 17500, 76072),
        (1, 2, 3299, 158573),
        (2, 3, 50000, 5231),
        (2, 1, 22000, 30200),
        (3, 1, 8750, 96000),
        (3, 1, 8750, 96000),  # identical duplicate
        (4, 2, 64000, 1200),
        (4, 3, 41000, 15000),
        (2, 2, 12999, 87000),
    ]
    dataset = Dataset(space, rows, name="toy-autos")

    # 3. The server: returns at most k=3 tuples per query, highest
    #    priority first, and answers repeated queries identically.
    server = TopKServer(dataset, k=3, priority_seed=7)

    # 4. Crawl.  Hybrid handles any space kind; here it walks the
    #    categorical prefix with lazy-slice-cover and runs rank-shrink
    #    over (price, mileage) wherever a make/body point overflows.
    crawler = Hybrid(server)
    result = crawler.crawl()

    # 5. Verify against the ground truth (possible here because we own
    #    the server; a real deployment would not).
    report = verify_complete(result, dataset)

    print(f"dataset: {dataset}")
    print(f"crawl:   {result}")
    print(f"verify:  {report.summary()}")
    bound = upper_bound_for_dataset(dataset, server.k)
    print(f"cost:    {result.cost} queries (Theorem 1 bound: {bound})")
    print()
    print("queries issued:")
    for i, query in enumerate(crawler.client.history, 1):
        response = crawler.client.peek(query)
        state = "overflow" if response.overflow else f"{len(response.rows)} rows"
        print(f"  {i:2d}. {query}  ->  {state}")


if __name__ == "__main__":
    main()
