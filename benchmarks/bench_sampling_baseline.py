"""Extension: systematic crawling vs random probing, and provider burden.

Two claims from the paper's framing, quantified:

* Section 1.4 contrasts crawling with the query-based *sampling* line
  of work: a sample cannot support "virtually any query on the
  database".  We give a random prober the exact budget hybrid needed to
  finish, and measure how far short it falls (plus its diminishing
  returns).
* Section 1.2: "for a data provider, permitting an engine to crawl its
  database is not expected to impose a heavy toll on its workload."
  We measure the ship factor (tuples sent / n) of a full hybrid crawl.
"""

from benchmarks.conftest import run_once
from repro.crawl.hybrid import Hybrid
from repro.crawl.sampling import RandomProber
from repro.datasets.yahoo import yahoo_autos
from repro.server.server import TopKServer
from repro.server.workload import workload_report

N = 12000
K = 128


def test_sampling_falls_short_of_crawling(benchmark):
    dataset = yahoo_autos(n=N, seed=5, duplicates=0)

    def contrast():
        full = Hybrid(TopKServer(dataset, k=K, priority_seed=1)).crawl()
        prober = RandomProber(
            TopKServer(dataset, k=K, priority_seed=1), probes=full.cost, seed=2
        )
        prober.crawl()
        return full, prober

    full, prober = run_once(benchmark, contrast)
    distinct_truth = len(set(dataset.iter_rows()))
    coverage = prober.distinct_seen() / distinct_truth
    benchmark.extra_info["crawl_cost"] = full.cost
    benchmark.extra_info["sampling_coverage"] = round(coverage, 4)
    # The crawler finishes; equal-budget sampling leaves a large gap.
    assert full.tuples_extracted == dataset.n
    assert coverage < 0.9

    # Diminishing returns: the last half of the probes yields less than
    # the first half.
    curve = prober.coverage_curve
    half = len(curve) // 2
    assert curve[-1][1] - curve[half][1] < curve[half][1] - curve[0][1]


def test_provider_burden_is_light(benchmark):
    dataset = yahoo_autos(n=N, seed=5, duplicates=0)

    def crawl():
        server = TopKServer(dataset, k=K, priority_seed=1)
        Hybrid(server).crawl()
        return server

    server = run_once(benchmark, crawl)
    report = workload_report(server)
    benchmark.extra_info["ship_factor"] = round(report.ship_factor, 3)
    benchmark.extra_info["tuples_per_query"] = round(report.tuples_per_query, 1)
    assert 1.0 <= report.ship_factor < 6.0
    assert report.tuples_per_query <= K
