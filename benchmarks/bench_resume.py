"""Checkpoint/resume: a killed crawl restarts without re-paying queries.

The paper's crawls run against per-IP query quotas measured in days
(Section 1 of Sheng et al.); a real deployment is therefore a sequence
of budget-exhausted kills and restarts.  PR 6 made restarts free:
``CheckpointWriter`` atomically persists every completed region (plus
the budget's charge state), and resuming pre-files those regions into
the merge so the finished prefix costs **zero** server queries.

This benchmark crawls one plan on the thread backend while
checkpointing at every region boundary, snapshots the checkpoint at the
midpoint, and resumes twice on fresh servers:

* from the *full* checkpoint -- the output must be byte-identical and
  the resumed crawl must issue **0 queries** (``reissued_on_resume``,
  the CI-gated metric: any value above the committed baseline of 0
  means resume started re-crawling finished work),
* from the *midpoint* snapshot -- byte-identical again, and the
  queries actually issued must be exactly the baseline cost of the
  unfinished suffix (no overlap with the restored prefix).

Measurements land in ``BENCH_resume.json`` (path overridable via
``REPRO_BENCH_RESUME_OUT``) for ``tools/compare_bench.py``.
"""

import json
import os
import shutil
import threading
import time

import numpy as np

from benchmarks.conftest import bench_scale
from repro.crawl.checkpoint import CheckpointWriter, load_crawl_checkpoint
from repro.crawl.executors import ThreadExecutor
from repro.crawl.partition import crawl_partitioned, partition_space
from repro.dataspace.dataset import Dataset
from repro.dataspace.space import DataSpace
from repro.server.server import TopKServer

K = 24
SESSIONS = 3


def crawl_dataset(n: int, seed: int = 23) -> Dataset:
    """A mixed-space dataset large enough for a multi-region plan."""
    rng = np.random.default_rng(seed)
    space = DataSpace.mixed(
        [("make", 6), ("body", 3)],
        ["price"],
        numeric_bounds=[(0, 999)],
    )
    rows = np.column_stack(
        [
            rng.integers(1, 7, n),
            rng.integers(1, 4, n),
            rng.integers(0, 1000, n),
        ]
    ).astype(np.int64)
    return Dataset(space, rows)


def timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def write_report(report: dict) -> str:
    path = os.environ.get("REPRO_BENCH_RESUME_OUT", "BENCH_resume.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    return path


def assert_identical(resumed, reference, label):
    assert resumed.rows == reference.rows, label
    assert resumed.cost == reference.cost, label
    assert resumed.progress == reference.progress, label
    assert resumed.session_costs() == reference.session_costs(), label


def test_resume_reissues_zero_queries(benchmark, tmp_path):
    """Kill + resume is byte-identical and the finished prefix is free."""
    n = max(1200, int(6000 * bench_scale()))
    dataset = crawl_dataset(n)
    plan = partition_space(dataset.space, SESSIONS)

    def sources():
        return [TopKServer(dataset, K) for _ in range(SESSIONS)]

    reference = crawl_partitioned(sources(), plan)

    path = tmp_path / "crawl.json"
    midpoint_path = tmp_path / "crawl.midpoint.json"
    midpoint_at = len(plan.regions) // 2
    measurements = {}

    def checkpointed_crawl():
        writer = CheckpointWriter(path, plan, K)
        writer.write()
        done = []
        snapshot_lock = threading.Lock()

        def on_region(key, result):
            # One lock around write + copy so the midpoint snapshot
            # holds exactly ``midpoint_at`` regions.
            with snapshot_lock:
                writer.region_done(key, result)
                done.append(key)
                if len(done) == midpoint_at:
                    shutil.copy(path, midpoint_path)

        executor = ThreadExecutor(max_workers=2)
        result, seconds = timed(
            lambda: executor.run(
                sources(), plan, rebalance=True, on_region=on_region
            )
        )
        measurements["interrupted"] = (result, seconds)

    benchmark.pedantic(checkpointed_crawl, rounds=1, iterations=1)
    first, first_seconds = measurements["interrupted"]
    assert_identical(first, reference, "checkpointed crawl")

    # Resume from the full checkpoint: every region restored, zero
    # queries reach any server.
    checkpoint = load_crawl_checkpoint(path, plan, K)
    assert len(checkpoint.completed) == len(plan.regions)
    full_sources = sources()
    resumed, resume_seconds = timed(
        lambda: ThreadExecutor(max_workers=2).run(
            full_sources,
            plan,
            rebalance=True,
            completed=checkpoint.completed,
        )
    )
    assert_identical(resumed, reference, "full resume")
    reissued = sum(source.stats.queries for source in full_sources)

    # Resume from the midpoint kill: the restored prefix is free, so
    # the resumed crawl must issue strictly fewer queries than an
    # uninterrupted crawl of the whole plan.
    snapshot = load_crawl_checkpoint(midpoint_path, plan, K)
    assert len(snapshot.completed) == midpoint_at
    baseline = sources()
    crawl_partitioned(baseline, plan)
    total_queries = sum(source.stats.queries for source in baseline)
    mid_sources = sources()
    mid_resumed, _ = timed(
        lambda: ThreadExecutor(max_workers=2).run(
            mid_sources,
            plan,
            rebalance=True,
            completed=snapshot.completed,
        )
    )
    assert_identical(mid_resumed, reference, "midpoint resume")
    midpoint_reissued = sum(source.stats.queries for source in mid_sources)

    report = {
        "workload": "checkpoint at every region boundary, kill, resume",
        "cpu_count": os.cpu_count(),
        "scale": bench_scale(),
        "n": dataset.n,
        "sessions": SESSIONS,
        "regions": len(plan.regions),
        "total_queries": total_queries,
        "reissued_on_resume": reissued,
        "midpoint": {
            "regions_restored": midpoint_at,
            "queries_issued": midpoint_reissued,
        },
        "seconds": {
            "checkpointed_crawl": round(first_seconds, 3),
            "full_resume": round(resume_seconds, 3),
        },
    }
    path_out = write_report(report)
    benchmark.extra_info.update(report)
    benchmark.extra_info["report_path"] = path_out

    assert reissued == 0, (
        f"resume from a complete checkpoint re-issued {reissued} "
        "queries; the restored prefix must be free"
    )
    assert midpoint_reissued < total_queries, (
        f"midpoint resume issued {midpoint_reissued} of "
        f"{total_queries} total queries; the restored prefix was "
        "re-crawled"
    )
