"""Figure 11: categorical algorithms (DFS, slice-cover, lazy-slice-cover).

Reproduces the three panels of the paper's Figure 11 on the NSF
dataset.  Shape claims checked (Section 6, "Categorical algorithms"):

* lazy-slice-cover is "the clear winner in all the experiments";
* eager slice-cover "turned out to exhibit the worst performance" --
  its cost is dominated by the ~flat slice-table term ``sum Ui``;
* DFS sits between the two.
"""

from benchmarks.conftest import record_figure, run_once
from repro.experiments.figures import figure_11a, figure_11b, figure_11c

KS = (64, 128, 256, 512, 1024)


def test_fig11a_cost_vs_k(benchmark, scale):
    figure = run_once(benchmark, figure_11a, scale=scale, ks=KS)
    record_figure(benchmark, figure)
    dfs = figure.series_by_name("DFS").ys()
    eager = figure.series_by_name("slice-cover").ys()
    lazy = figure.series_by_name("lazy-slice-cover").ys()
    for d_cost, e_cost, l_cost in zip(dfs, eager, lazy):
        assert l_cost <= e_cost
        assert e_cost >= d_cost  # eager is the worst on NSF, as reported
        if scale >= 1.0 or d_cost > 200:
            # Lazy wins pointwise wherever costs are non-trivial; at
            # reduced scale the large-k points are noise-sized (tens of
            # queries) and lazy's fixed root/slice overhead can tie.
            assert l_cost <= d_cost
    assert sum(lazy) < sum(dfs)
    # Eager's ~constant slice-table term (sum Ui) dominates its cost at
    # every k: the series never drops below half its maximum, unlike the
    # other algorithms whose costs fall by an order of magnitude.
    assert min(eager) >= 0.5 * max(eager)
    assert min(dfs) < 0.25 * max(dfs)


def test_fig11b_cost_vs_d(benchmark, scale):
    figure = run_once(
        benchmark, figure_11b, scale=scale, k=256, dims=(5, 6, 7, 8, 9)
    )
    record_figure(benchmark, figure)
    lazy = figure.series_by_name("lazy-slice-cover").ys()
    eager = figure.series_by_name("slice-cover").ys()
    assert all(l <= e for l, e in zip(lazy, eager))


def test_fig11c_cost_vs_n(benchmark, scale):
    figure = run_once(
        benchmark,
        figure_11c,
        scale=scale,
        k=256,
        fractions=(0.2, 0.4, 0.6, 0.8, 1.0),
    )
    record_figure(benchmark, figure)
    lazy = figure.series_by_name("lazy-slice-cover").ys()
    eager = figure.series_by_name("slice-cover").ys()
    assert all(l <= e for l, e in zip(lazy, eager))
    assert lazy[0] <= lazy[-1]  # grows with n
