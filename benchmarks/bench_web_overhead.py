"""Web-layer micro-benchmark: what HTML adds on top of the interface.

The abstract query interface and the scraped web interface are
information-equivalent (the adapter tests prove cost/bag parity); this
benchmark quantifies the only thing the web layer *does* add -- the
wall-clock overhead of rendering, transporting and parsing HTML --
by running the same full hybrid crawl both ways.

The interesting outcome is qualitative: overhead per query is a small
constant (form encoding + page parse), so crawling through HTML remains
entirely practical, supporting the paper's framing that the bottleneck
is the *number of queries*, never the mechanics of issuing one.
"""

import pytest

from repro.crawl.hybrid import Hybrid
from repro.datasets.yahoo import yahoo_autos
from repro.server.client import CachingClient
from repro.server.server import TopKServer
from repro.web.adapter import WebSession
from repro.web.site import HiddenWebSite


@pytest.fixture(scope="module")
def dataset():
    return yahoo_autos(n=8000, seed=5, duplicates=0)


def crawl_direct(dataset, k):
    result = Hybrid(TopKServer(dataset, k=k)).crawl()
    assert result.complete
    return result


def crawl_via_web(dataset, k):
    session = WebSession(HiddenWebSite(TopKServer(dataset, k=k)))
    result = Hybrid(CachingClient(session)).crawl()
    assert result.complete
    return result


def test_hybrid_direct(benchmark, dataset):
    result = benchmark.pedantic(
        crawl_direct, args=(dataset, 256), rounds=1, iterations=1
    )
    benchmark.extra_info["queries"] = result.cost


def test_hybrid_via_web(benchmark, dataset):
    result = benchmark.pedantic(
        crawl_via_web, args=(dataset, 256), rounds=1, iterations=1
    )
    benchmark.extra_info["queries"] = result.cost
