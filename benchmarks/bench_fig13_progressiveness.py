"""Figure 13: output progressiveness of hybrid (k = 256).

Shape claim checked: both datasets' curves are close to linear -- "we
were delighted to observe linear progressiveness for both datasets".
We require every decile of the curve to stay within a band around the
diagonal (generous at small benchmark scales, where a single rank-shrink
sub-crawl is a large fraction of the run).
"""

from benchmarks.conftest import record_figure, run_once
from repro.experiments.figures import figure_13

GRID = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


def test_fig13_progressiveness(benchmark, scale):
    figure = run_once(benchmark, figure_13, scale=scale, k=256, grid=GRID)
    record_figure(benchmark, figure)
    halfway_floor = 0.15 if scale >= 1.0 else 0.05
    for series in figure.series:
        curve = dict(zip(series.xs(), series.ys()))
        assert curve[1.0] >= 0.99  # everything is out at the end
        ys = series.ys()
        assert ys == sorted(ys)  # monotone output
        # Rough linearity: by half the queries, a substantial fraction
        # of the tuples is out; no cliff where all output is at the end.
        assert curve[0.5] >= halfway_floor
        assert curve[0.9] >= 0.5
