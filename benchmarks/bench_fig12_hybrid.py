"""Figure 12: the hybrid algorithm on the mixed datasets (Yahoo, Adult).

Shape claims checked:

* hybrid's cost decreases (roughly inverse-linearly) in k on both
  datasets;
* at full scale, Yahoo's k = 64 point is infeasible (the dataset plants
  more than 64 identical tuples) and is reported as a note, matching
  the paper's "there is no reported value for Yahoo at k = 64";
* the headline anchor: crawling the ~70k-tuple Yahoo dataset at
  k = 1024 takes on the order of a few hundred queries (the paper:
  "around 200 queries already suffice" at k = 1000).
"""

from benchmarks.conftest import bench_scale, record_figure, run_once
from repro.experiments.figures import figure_12

KS = (64, 128, 256, 512, 1024)


def test_fig12_cost_vs_k(benchmark, scale):
    figure = run_once(benchmark, figure_12, scale=scale, ks=KS)
    record_figure(benchmark, figure)
    for series in figure.series:
        ys = series.ys()
        assert ys == sorted(ys, reverse=True)  # decreasing in k
    if scale >= 1.0:
        # Yahoo has >64 identical tuples only at (near-)full scale.
        assert any("k = 64 infeasible" in note for note in figure.notes)
        yahoo = figure.series_by_name("Yahoo")
        k1024 = dict(zip(yahoo.xs(), yahoo.ys()))[1024]
        assert k1024 < 600  # same order as the paper's ~200


def test_fig12_headline_anchor(benchmark):
    """The paper's Section 1.2 headline at whatever scale is configured."""
    figure = run_once(benchmark, figure_12, scale=bench_scale(), ks=(1024,))
    record_figure(benchmark, figure)
    for series in figure.series:
        (cost,) = series.ys()
        assert cost >= 1
