"""Subtree sharding vs whole-region stealing on a one-heavy-region plan.

Whole-region work stealing (PR 2) rebalances a skewed plan only down to
the granularity of a region: when essentially *all* of the cost sits in
one region, the worker that picks it up crawls it alone while every
other worker goes idle -- the wall clock degenerates to the sequential
time of the heavy region, no matter how many identities are available.

Subtree sharding (:mod:`repro.crawl.sharding`) is built for exactly
this shape: the heavy region's crawl frontier is split into pairwise
disjoint subtrees that idle workers steal individually, so the region's
round trips overlap across all workers.  This benchmark builds such a
workload (one categorical value carrying ~92% of the tuples, sessions
crawling through latency-simulating sources), times

* static dispatch,
* whole-region stealing (``rebalance=True``), and
* two-level stealing (``rebalance=True, shard_subtrees=N``),

asserts all three produce byte-identical results, requires the sharded
crawl to be **>= 1.5x** faster than whole-region stealing, and writes
the measurements to ``BENCH_subtree_sharding.json`` (path overridable
via ``REPRO_BENCH_SHARDING_OUT``) for CI trend tracking.
"""

import json
import os
import time

import numpy as np

from benchmarks.conftest import bench_scale
from repro.crawl.executors import make_executor
from repro.crawl.partition import partition_space
from repro.dataspace.dataset import Dataset
from repro.dataspace.space import DataSpace
from repro.server.latency import LatencySource
from repro.server.server import TopKServer

K = 16
SESSIONS = 3
SHARDS = 12
RTT = 0.0015


def one_heavy_region_dataset(n: int, seed: int = 21) -> Dataset:
    """~92% of the tuples pile onto one categorical value."""
    rng = np.random.default_rng(seed)
    space = DataSpace.mixed(
        [("category", 6)],
        ["price", "year"],
        numeric_bounds=[(0, 9999), (0, 99)],
    )
    category = np.where(rng.random(n) < 0.92, 1, rng.integers(2, 7, n))
    rows = np.column_stack(
        [
            category,
            rng.integers(0, 10000, n),
            rng.integers(0, 100, n),
        ]
    ).astype(np.int64)
    return Dataset(space, rows)


def timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def write_report(report: dict) -> str:
    path = os.environ.get(
        "REPRO_BENCH_SHARDING_OUT", "BENCH_subtree_sharding.json"
    )
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    return path


def test_subtree_sharding_beats_whole_region_stealing(benchmark):
    """Two-level stealing >= 1.5x over region stealing, same bytes."""
    n = max(1500, int(9000 * bench_scale()))
    dataset = one_heavy_region_dataset(n)
    plan = partition_space(dataset.space, SESSIONS)

    def sources():
        return [
            LatencySource(TopKServer(dataset, K), RTT)
            for _ in range(SESSIONS)
        ]

    static, static_seconds = timed(
        lambda: make_executor("thread", max_workers=SESSIONS).run(
            sources(), plan
        )
    )
    region_stolen, region_seconds = timed(
        lambda: make_executor("thread", max_workers=SESSIONS).run(
            sources(), plan, rebalance=True
        )
    )

    def sharded():
        return make_executor("thread", max_workers=SESSIONS).run(
            sources(), plan, rebalance=True, shard_subtrees=SHARDS
        )

    shard_result = benchmark.pedantic(sharded, rounds=1, iterations=1)
    shard_seconds = benchmark.stats.stats.mean

    # Determinism contract: sharding and stealing change the schedule,
    # never the bytes.
    for other in (region_stolen, shard_result):
        assert other.rows == static.rows
        assert other.cost == static.cost
        assert other.progress == static.progress
        assert other.session_costs() == static.session_costs()

    session_costs = static.session_costs()
    heavy_share = max(session_costs) / max(1, sum(session_costs))
    speedup = region_seconds / max(shard_seconds, 1e-9)
    report = {
        "workload": "one-heavy-region (latency-bound)",
        "cpu_count": os.cpu_count(),
        "scale": bench_scale(),
        "n": dataset.n,
        "sessions": SESSIONS,
        "shards_per_region": SHARDS,
        "rtt_seconds": RTT,
        "total_queries": static.cost,
        "session_queries": session_costs,
        "heavy_session_share": round(heavy_share, 3),
        "seconds": {
            "static": round(static_seconds, 3),
            "region_stealing": round(region_seconds, 3),
            "subtree_sharding": round(shard_seconds, 3),
        },
        "sharding_over_region_stealing": round(speedup, 2),
    }
    path = write_report(report)
    benchmark.extra_info.update(report)
    benchmark.extra_info["report_path"] = path

    # The whole point of the subsystem: when one region dominates, only
    # subtree stealing can spread it across identities.
    assert heavy_share >= 0.7, (
        f"workload lost its skew (heavy share {heavy_share:.2f}); the "
        "comparison below would be meaningless"
    )
    assert speedup >= 1.5, (
        f"expected subtree sharding >= 1.5x over whole-region stealing "
        f"on a one-heavy-region plan, got {speedup:.2f}x "
        f"({region_seconds:.2f}s regions, {shard_seconds:.2f}s sharded)"
    )
