"""Partitioning ablation: query overhead versus session parallelism.

Splitting the data space across ``s`` sessions bounds every identity's
query count by roughly ``total / s`` (good: per-IP quotas are the
binding constraint the paper names), at the price of re-paying shared
work per session.  This benchmark sweeps the session count on the
synthetic Yahoo! Autos dataset and records both the total and the
maximum per-session cost.

Expected shape: max-per-session cost falls steeply with ``s`` while the
total stays within a small factor of the single-session cost --
partitioning on the biggest categorical domain replaces that domain's
slice probing, so the overhead can even be negative.
"""

import pytest

from benchmarks.conftest import bench_scale
from repro.crawl.hybrid import Hybrid
from repro.crawl.partition import crawl_partitioned, partition_space
from repro.datasets.yahoo import yahoo_autos
from repro.server.server import TopKServer

K = 256


@pytest.fixture(scope="module")
def dataset():
    n = max(6000, int(69768 * bench_scale()))
    return yahoo_autos(n=n, seed=5, duplicates=0)


def run_partitioned(dataset, sessions):
    if sessions == 1:
        result = Hybrid(TopKServer(dataset, k=K)).crawl()
        assert result.complete
        return result.cost, result.cost
    plan = partition_space(dataset.space, sessions)
    sources = [TopKServer(dataset, k=K) for _ in range(sessions)]
    merged = crawl_partitioned(sources, plan)
    assert merged.complete
    assert merged.tuples_extracted == dataset.n
    return merged.cost, max(merged.session_costs())


@pytest.mark.parametrize("sessions", [1, 2, 4, 8])
def test_partitioned_crawl_costs(benchmark, dataset, sessions):
    total, per_session_max = benchmark.pedantic(
        run_partitioned, args=(dataset, sessions), rounds=1, iterations=1
    )
    benchmark.extra_info["sessions"] = sessions
    benchmark.extra_info["total_queries"] = total
    benchmark.extra_info["max_session_queries"] = per_session_max
