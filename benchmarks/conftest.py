"""Shared helpers for the benchmark suite.

Run with::

    pytest benchmarks/ --benchmark-only                  # quick (scale 0.1)
    REPRO_BENCH_SCALE=1.0 pytest benchmarks/ --benchmark-only   # paper scale

Each benchmark regenerates one figure of the paper through
:mod:`repro.experiments.figures`, asserts the qualitative shape the
paper reports, and attaches the measured series to the benchmark record
(``extra_info``), so the JSON output doubles as an experiment artefact.
The wall-clock numbers produced by pytest-benchmark measure the whole
experiment (dataset generation + simulated crawls); the scientifically
meaningful metric is the *query count* inside ``extra_info``.
"""

from __future__ import annotations

import os

import pytest


def bench_scale() -> float:
    """Dataset scale for benchmarks (env REPRO_BENCH_SCALE, default 0.1)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.1"))


@pytest.fixture(scope="session")
def scale() -> float:
    return bench_scale()


def record_figure(benchmark, figure) -> None:
    """Attach a FigureResult's series to the benchmark record."""
    benchmark.extra_info["figure"] = figure.figure_id
    for series in figure.series:
        benchmark.extra_info[series.name] = list(zip(series.xs(), series.ys()))
    if figure.notes:
        benchmark.extra_info["notes"] = list(figure.notes)


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under the benchmark clock.

    The experiments are deterministic and expensive; statistical
    repetition belongs to the engine micro-benchmarks, not here.
    """
    return benchmark.pedantic(
        fn, args=args, kwargs=kwargs, rounds=1, iterations=1
    )
