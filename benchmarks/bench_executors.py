"""Executor backends compared: CPU-bound speedups, identical results.

The thread backend owns latency-bound crawls (threads overlap simulated
round trips) but the GIL caps it at one core on CPU-bound simulated
workloads -- exactly the regime of the pure-Python
:class:`~repro.server.engines.LinearScanEngine`.  The process backend
exists for that regime: region crawls run in worker processes against
pickled source copies, so the wall clock drops towards
``sequential / cores``.

This benchmark crawls one CPU-bound plan on every backend, asserts the
results are byte-identical across all of them, and writes the measured
speedups to ``BENCH_executors.json`` (path overridable via
``REPRO_BENCH_OUT``) so CI can track the perf trajectory per PR.  The
``>= 1.5x process-over-thread`` assertion only fires on multi-core
hosts -- on a single core the process backend cannot beat anything,
and the JSON records that honestly (``cpu_count`` rides along).

A second measurement times static vs work-stealing dispatch on a
skewed plan against latency-simulating servers; the stolen regions'
schedule changes, the result does not.
"""

import json
import os
import time

import numpy as np

from benchmarks.conftest import bench_scale
from repro.crawl.executors import ProcessExecutor, make_executor
from repro.crawl.partition import crawl_partitioned, partition_space
from repro.dataspace.dataset import Dataset
from repro.dataspace.space import DataSpace
from repro.server.latency import LatencySource
from repro.server.limits import QueryBudget
from repro.server.server import TopKServer

K = 16
SESSIONS = 4


def cpu_bound_dataset(n: int, seed: int = 11) -> Dataset:
    """A mixed-space dataset crawled through the pure-Python engine."""
    rng = np.random.default_rng(seed)
    space = DataSpace.mixed(
        [("make", 8), ("body", 4)],
        ["price"],
        numeric_bounds=[(0, 1999)],
    )
    rows = np.column_stack(
        [
            rng.integers(1, 9, n),
            rng.integers(1, 5, n),
            rng.integers(0, 2000, n),
        ]
    ).astype(np.int64)
    return Dataset(space, rows)


def skewed_dataset(n: int, seed: int = 12) -> Dataset:
    """Most tuples pile onto one partition value: a worst-case plan."""
    rng = np.random.default_rng(seed)
    space = DataSpace.mixed(
        [("make", 8), ("body", 4)],
        ["price"],
        numeric_bounds=[(0, 1999)],
    )
    make = np.where(rng.random(n) < 0.75, 1, rng.integers(1, 9, n))
    rows = np.column_stack(
        [
            make,
            rng.integers(1, 5, n),
            rng.integers(0, 2000, n),
        ]
    ).astype(np.int64)
    return Dataset(space, rows)


def timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def write_report(report: dict) -> str:
    path = os.environ.get("REPRO_BENCH_OUT", "BENCH_executors.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    return path


def measure_coordinator_round_trips() -> int:
    """Control-plane chatter of a fixed shared-limit crawl.

    Deliberately scale-independent and statically dispatched: the same
    small limit-bearing plan leases, flushes and records identically on
    every run, so the recorded count is a property of the admission
    protocol, not of the benchmark host -- which is what lets
    ``tools/compare_bench.py`` gate regressions on it (a jump here
    means per-query chatter crept back into the control plane).
    """
    rng = np.random.default_rng(29)
    space = DataSpace.mixed(
        [("make", 6), ("body", 3)],
        ["price"],
        numeric_bounds=[(0, 999)],
    )
    rows = np.column_stack(
        [
            rng.integers(1, 7, 800),
            rng.integers(1, 4, 800),
            rng.integers(0, 1000, 800),
        ]
    ).astype(np.int64)
    dataset = Dataset(space, rows)
    plan = partition_space(space, 3)
    budget = QueryBudget(10_000_000)
    sources = [TopKServer(dataset, 24, limits=[budget]) for _ in range(3)]
    ProcessExecutor(max_workers=2).run(sources, plan, shared_limits=True)
    return sources[0].stats.round_trips


def test_backend_speedups_cpu_bound(benchmark):
    """Thread vs process vs async on a GIL-hostile workload."""
    # Sized so the crawl is seconds of pure-Python engine work even in
    # quick mode: the process pool's startup must be noise next to it.
    n = max(6000, int(20000 * bench_scale()))
    dataset = cpu_bound_dataset(n)
    plan = partition_space(dataset.space, SESSIONS)

    def sources():
        return [
            TopKServer(dataset, K, engine="linear")
            for _ in range(SESSIONS)
        ]

    sequential, seq_seconds = timed(lambda: crawl_partitioned(sources(), plan))
    seconds = {"sequential": seq_seconds}
    results = {}

    def run_all():
        for name in ("thread", "process", "async"):
            executor = make_executor(name, max_workers=SESSIONS)
            results[name], seconds[name] = timed(
                lambda executor=executor: executor.run(
                    sources(), plan, rebalance=True
                )
            )

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    for name, result in results.items():
        assert result.rows == sequential.rows, name
        assert result.cost == sequential.cost, name
        assert result.progress == sequential.progress, name

    speedups = {
        name: round(seq_seconds / max(s, 1e-9), 2)
        for name, s in seconds.items()
        if name != "sequential"
    }
    process_over_thread = round(
        seconds["thread"] / max(seconds["process"], 1e-9), 2
    )
    report = {
        "workload": "cpu-bound (linear engine)",
        "cpu_count": os.cpu_count(),
        "scale": bench_scale(),
        "n": dataset.n,
        "sessions": SESSIONS,
        "total_queries": sequential.cost,
        "seconds": {name: round(s, 3) for name, s in seconds.items()},
        "speedup_vs_sequential": speedups,
        "process_over_thread": process_over_thread,
        # Shared-limit control-plane chatter on a fixed reference
        # crawl (lease-batched admission; lower is better, gated).
        "coordinator_round_trips": measure_coordinator_round_trips(),
    }
    path = write_report(report)
    benchmark.extra_info.update(report)
    benchmark.extra_info["report_path"] = path

    if (os.cpu_count() or 1) >= 2:
        assert process_over_thread >= 1.5, (
            f"expected the process backend >= 1.5x over threads on a "
            f"CPU-bound workload with {os.cpu_count()} cores, got "
            f"{process_over_thread}x "
            f"({seconds['thread']:.2f}s thread, "
            f"{seconds['process']:.2f}s process)"
        )


def test_rebalancing_on_a_skewed_plan(benchmark):
    """Work stealing vs static dispatch when one session dominates."""
    n = max(2000, int(12000 * bench_scale()))
    dataset = skewed_dataset(n)
    plan = partition_space(dataset.space, SESSIONS)
    rtt = 0.002

    def sources():
        return [
            LatencySource(TopKServer(dataset, 256), rtt)
            for _ in range(SESSIONS)
        ]

    executor = make_executor("thread", max_workers=SESSIONS)
    static, static_seconds = timed(lambda: executor.run(sources(), plan))

    def rebalanced():
        return make_executor("thread", max_workers=SESSIONS).run(
            sources(), plan, rebalance=True
        )

    stolen = benchmark.pedantic(rebalanced, rounds=1, iterations=1)
    stolen_seconds = benchmark.stats.stats.mean

    assert stolen.rows == static.rows
    assert stolen.cost == static.cost
    assert stolen.progress == static.progress

    session_costs = static.session_costs()
    benchmark.extra_info["session_queries"] = session_costs
    benchmark.extra_info["skew"] = round(
        max(session_costs) / max(1, min(session_costs)), 2
    )
    benchmark.extra_info["static_seconds"] = round(static_seconds, 3)
    benchmark.extra_info["rebalanced_seconds"] = round(stolen_seconds, 3)
    benchmark.extra_info["rebalance_speedup"] = round(
        static_seconds / max(stolen_seconds, 1e-9), 2
    )
