"""Sampling-vs-crawling benchmark: accuracy per query budget.

Regenerates the quantitative backing for the paper's Section 1.4
positioning: drill-down sampling buys approximate aggregates cheaply
but plateaus; crawling pays a near-optimal finite cost after which
*everything* is exact.  The recorded series is the equal-budget sweep
of :func:`repro.analytics.compare.compare_at_budgets`.

Expected shape:

* sampling errors shrink roughly like ``1/sqrt(budget)`` and never
  reach zero;
* the crawled fraction grows roughly linearly (the paper's Figure 13
  progressiveness) and snaps to exactly 1.0 at the crawler's
  finishing cost.
"""

import pytest

from benchmarks.conftest import bench_scale
from repro.analytics.compare import compare_at_budgets
from repro.datasets.yahoo import yahoo_autos


@pytest.fixture(scope="module")
def dataset():
    n = max(4000, int(69768 * bench_scale()))
    data = yahoo_autos(n=n, seed=5, duplicates=0)
    return data.with_bounds_from_data()


def run_sweep(dataset, k, budgets):
    return compare_at_budgets(dataset, k, budgets, seed=4)


def test_sampling_vs_crawling(benchmark, dataset):
    k = 256
    budgets = [25, 50, 100, 200, 400, 800]
    report = benchmark.pedantic(
        run_sweep, args=(dataset, k, budgets), rounds=1, iterations=1
    )
    fractions = [p.crawl_fraction for p in report.points]
    assert fractions == sorted(fractions), "crawl coverage must be monotone"
    assert (
        report.points[-1].crawl_complete
        or budgets[-1] < report.crawl_full_cost
    )
    benchmark.extra_info["full_crawl_cost"] = report.crawl_full_cost
    benchmark.extra_info["rows"] = report.rows()
