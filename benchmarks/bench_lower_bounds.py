"""Theorem 3 / Theorem 4: measured costs inside the proven envelopes.

The paper's lower bounds are statements about *any* correct algorithm
on the adversarial instances of Figures 7 and 8.  These benchmarks run
our (correct) algorithms on those instances and pin the measured cost
between the theorem's floor and Theorem 1's ceiling -- the
"asymptotically optimal" sandwich that is the paper's core claim.
"""

from benchmarks.conftest import record_figure, run_once
from repro.experiments.figures import theorem_3_check, theorem_4_check


def test_theorem3_envelope(benchmark):
    figure = run_once(
        benchmark, theorem_3_check, k=32, d=4, ms=(8, 16, 32, 64)
    )
    record_figure(benchmark, figure)
    measured = figure.series_by_name("rank-shrink").ys()
    lower = figure.series_by_name("lower bound d*m").ys()
    upper = figure.series_by_name("Theorem 1 upper bound").ys()
    for cost, lo, hi in zip(measured, lower, upper):
        assert lo <= cost <= hi
    # The lower bound scales linearly in m; so must the measured cost.
    assert measured[-1] >= 4 * measured[0] / 2


def test_theorem3_dimension_sweep(benchmark):
    """The d*m floor grows with d (at fixed m, k)."""

    def sweep():
        return [theorem_3_check(k=32, d=d, ms=(16,)) for d in (2, 4, 8)]

    figures = run_once(benchmark, sweep)
    floors = [f.series_by_name("lower bound d*m").ys()[0] for f in figures]
    costs = [f.series_by_name("rank-shrink").ys()[0] for f in figures]
    benchmark.extra_info["floors"] = floors
    benchmark.extra_info["costs"] = costs
    assert floors == sorted(floors)
    for cost, floor in zip(costs, floors):
        assert cost >= floor


def test_theorem4_envelope(benchmark):
    figure = run_once(benchmark, theorem_4_check, k=20, us=(3, 4, 5))
    record_figure(benchmark, figure)
    for name in ("slice-cover", "lazy-slice-cover"):
        measured = figure.series_by_name(name).ys()
        lower = figure.series_by_name("lower bound").ys()
        upper = figure.series_by_name("Lemma 4 upper bound").ys()
        for cost, lo, hi in zip(measured, lower, upper):
            assert lo <= cost <= hi
    # The dU^2 shape: the Lemma 4 ceiling grows superlinearly in U, and
    # the eager algorithm's measured cost tracks it.
    eager = figure.series_by_name("slice-cover").ys()
    assert eager[-1] > eager[0]
