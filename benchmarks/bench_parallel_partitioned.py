"""Parallel partitioned crawling: wall-clock speedup, identical results.

The concurrent executor (:mod:`repro.crawl.parallel`) promises two
things over sequential :func:`~repro.crawl.partition.crawl_partitioned`:

* a wall-clock win on latency-bound sessions -- the whole point of
  owning several identities; and
* a deterministic merge: byte-identical rows and identical total query
  cost, independent of thread scheduling.

This benchmark measures both on a 4-session plan over the synthetic
Yahoo! Autos dataset with the :class:`~repro.server.engines.VectorEngine`
(the default, paper-scale engine).  Each server is wrapped in a
:class:`~repro.server.latency.LatencySource` charging a simulated
round trip per query, which is what a crawl of a real hidden database
pays; worker threads overlap the waits, so the parallel wall clock
drops towards the slowest session while the sequential one pays the sum.

The speedup assertion (>= 2x with 4 sessions) is conservative: the
ideal ratio is total-cost / max-session-cost (~2.9 on this plan), and
the round trip is chosen large enough (5ms) that Python-side work is
noise next to it.
"""

import time

import pytest

from benchmarks.conftest import bench_scale
from repro.crawl.parallel import crawl_partitioned_parallel
from repro.crawl.partition import crawl_partitioned, partition_space
from repro.datasets.yahoo import yahoo_autos
from repro.server.latency import LatencySource
from repro.server.server import TopKServer

K = 256
SESSIONS = 4
RTT_SECONDS = 0.005


@pytest.fixture(scope="module")
def dataset():
    n = max(6000, int(69768 * bench_scale()))
    return yahoo_autos(n=n, seed=5, duplicates=0)


@pytest.fixture(scope="module")
def plan(dataset):
    return partition_space(dataset.space, SESSIONS)


def make_sources(dataset):
    return [
        LatencySource(TopKServer(dataset, K, engine="vector"), RTT_SECONDS)
        for _ in range(SESSIONS)
    ]


def test_parallel_speedup_and_determinism(benchmark, dataset, plan):
    start = time.perf_counter()
    sequential = crawl_partitioned(make_sources(dataset), plan)
    seq_seconds = time.perf_counter() - start

    parallel = benchmark.pedantic(
        crawl_partitioned_parallel,
        args=(make_sources(dataset), plan),
        kwargs={"max_workers": SESSIONS},
        rounds=1,
        iterations=1,
    )
    par_seconds = benchmark.stats.stats.mean

    # Determinism contract: byte-identical merged rows, identical cost.
    assert parallel.rows == sequential.rows
    assert parallel.cost == sequential.cost
    assert parallel.progress == sequential.progress
    assert parallel.complete and sequential.complete
    assert parallel.tuples_extracted == dataset.n

    speedup = seq_seconds / par_seconds
    ideal = parallel.cost / max(parallel.session_costs())
    benchmark.extra_info["sequential_seconds"] = round(seq_seconds, 3)
    benchmark.extra_info["parallel_seconds"] = round(par_seconds, 3)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["ideal_speedup"] = round(ideal, 2)
    benchmark.extra_info["total_queries"] = parallel.cost
    benchmark.extra_info["session_queries"] = parallel.session_costs()
    assert speedup >= 2.0, (
        f"expected >= 2x wall-clock speedup with {SESSIONS} sessions, got "
        f"{speedup:.2f}x ({seq_seconds:.2f}s sequential, "
        f"{par_seconds:.2f}s parallel, ideal {ideal:.2f}x)"
    )


def test_worker_count_sweep(benchmark, dataset, plan):
    """Wall clock falls as workers grow; results never change."""
    reference = crawl_partitioned(make_sources(dataset), plan)
    timings = {}

    def sweep():
        for workers in (1, 2, 4):
            start = time.perf_counter()
            merged = crawl_partitioned_parallel(
                make_sources(dataset), plan, max_workers=workers
            )
            timings[workers] = time.perf_counter() - start
            assert merged.rows == reference.rows
            assert merged.cost == reference.cost
        return timings

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info["seconds_by_workers"] = {
        w: round(s, 3) for w, s in timings.items()
    }
    # Monotone improvement with generous slack for scheduler noise.
    assert timings[4] < timings[1]
