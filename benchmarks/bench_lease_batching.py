"""Lease-batched vs per-query admission on the shared-limit plane.

Exactly-once admission across a process pool used to cost one
coordinator round trip per query: every ``admit()`` travelled to the
:class:`~repro.crawl.coordinator.LimitCoordinator`'s manager process
and back.  Hidden-web crawler surveys (Gupta & Bhatia) stress that this
interface-layer cost -- not the crawl logic -- dominates real
deployments, and it is exactly what the leasing
:class:`~repro.crawl.coordinator.SharedLimitClient` removes: one
``lease(n)`` round trip admits a budget chunk, local ``admit()`` calls
consume it for free, and unused units flow back at region boundaries.

This benchmark crawls one limit-bearing plan on the shared-limit
process backend twice -- ``lease_chunk=1`` (the old per-query protocol)
and the estimator-sized default -- and

* asserts the two runs are byte-identical with the exact same charge
  (leasing trades zero exactness),
* requires **>= 2x fewer coordinator round trips** with leasing
  (measured by the control plane itself and written back into
  ``QueryStats.round_trips``),
* requires no wall-clock regression (the leased crawl must not be
  slower than per-query admission beyond noise), and
* writes the measurements to ``BENCH_lease_batching.json`` (path
  overridable via ``REPRO_BENCH_LEASE_OUT``) so CI can gate the
  reduction ratio per PR (``tools/compare_bench.py``).

Static dispatch keeps the round-trip counts deterministic: each session
is one pool task, so every run leases and flushes identically.
"""

import json
import os
import time

import numpy as np

from benchmarks.conftest import bench_scale
from repro.crawl.executors import ProcessExecutor
from repro.crawl.partition import crawl_partitioned, partition_space
from repro.dataspace.dataset import Dataset
from repro.dataspace.space import DataSpace
from repro.server.limits import QueryBudget
from repro.server.server import TopKServer

K = 24
SESSIONS = 3


def limited_dataset(n: int, seed: int = 17) -> Dataset:
    """A mixed-space dataset crawled behind one fleet-wide budget."""
    rng = np.random.default_rng(seed)
    space = DataSpace.mixed(
        [("make", 6), ("body", 3)],
        ["price"],
        numeric_bounds=[(0, 999)],
    )
    rows = np.column_stack(
        [
            rng.integers(1, 7, n),
            rng.integers(1, 4, n),
            rng.integers(0, 1000, n),
        ]
    ).astype(np.int64)
    return Dataset(space, rows)


def timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def write_report(report: dict) -> str:
    path = os.environ.get("REPRO_BENCH_LEASE_OUT", "BENCH_lease_batching.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    return path


def test_lease_batching_cuts_coordinator_round_trips(benchmark):
    """Per-query vs leased admission: same bytes, far fewer trips."""
    n = max(1200, int(6000 * bench_scale()))
    dataset = limited_dataset(n)
    plan = partition_space(dataset.space, SESSIONS)

    def sources(budget):
        return [
            TopKServer(dataset, K, limits=[budget]) for _ in range(SESSIONS)
        ]

    reference_budget = QueryBudget(10_000_000)
    reference = crawl_partitioned(sources(reference_budget), plan)

    def crawl(lease_chunk):
        budget = QueryBudget(10_000_000)
        crawl_sources = sources(budget)
        executor = ProcessExecutor(max_workers=2, lease_chunk=lease_chunk)
        result, seconds = timed(
            lambda: executor.run(crawl_sources, plan, shared_limits=True)
        )
        return result, seconds, budget.used, crawl_sources[0].stats

    measurements = {}

    def run_both():
        measurements["per_query"] = crawl(1)
        measurements["leased"] = crawl(None)  # estimator-sized default

    benchmark.pedantic(run_both, rounds=1, iterations=1)

    expected_charge = reference_budget.used
    for mode, (result, _, charge, _) in measurements.items():
        assert result.rows == reference.rows, mode
        assert result.cost == reference.cost, mode
        assert result.progress == reference.progress, mode
        # The exact sequential charge (server-side admissions; the
        # crawler-side cost additionally counts locally-answered
        # contradictory queries, which never reach the budget).
        assert charge == expected_charge, mode

    per_query_trips = measurements["per_query"][3].round_trips
    leased_trips = measurements["leased"][3].round_trips
    per_query_seconds = measurements["per_query"][1]
    leased_seconds = measurements["leased"][1]
    reduction = round(per_query_trips / max(1, leased_trips), 2)
    report = {
        "workload": "limit-bearing (one fleet-wide budget)",
        "cpu_count": os.cpu_count(),
        "scale": bench_scale(),
        "n": dataset.n,
        "sessions": SESSIONS,
        "total_queries": reference.cost,
        "coordinator_round_trips": {
            "per_query": per_query_trips,
            "leased": leased_trips,
        },
        "round_trip_reduction": reduction,
        "seconds": {
            "per_query": round(per_query_seconds, 3),
            "leased": round(leased_seconds, 3),
        },
        "lease_speedup": round(
            per_query_seconds / max(leased_seconds, 1e-9), 2
        ),
    }
    path = write_report(report)
    benchmark.extra_info.update(report)
    benchmark.extra_info["report_path"] = path

    assert reduction >= 2.0, (
        f"expected >= 2x fewer coordinator round trips with lease "
        f"batching, got {per_query_trips} per-query vs {leased_trips} "
        f"leased ({reduction}x)"
    )
    # No wall-clock regression: fewer round trips must never cost time.
    # A generous noise allowance keeps single-core CI honest without
    # flaking; the real speedup is tracked in the JSON artifact.
    assert leased_seconds <= per_query_seconds * 1.25, (
        f"lease batching regressed the wall clock: "
        f"{leased_seconds:.2f}s leased vs {per_query_seconds:.2f}s "
        f"per-query"
    )
