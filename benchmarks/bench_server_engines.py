"""Micro-benchmarks of the simulated server's query engines.

Unlike the figure benchmarks (whose scientific metric is query count),
these measure genuine wall-clock throughput: how fast the substrate
answers queries.  The vector engine must beat the linear reference by a
wide margin at paper scale -- it is what makes full-scale experiment
runs (hundreds of thousands of simulated queries) practical.
"""

import pytest

from repro.datasets.nsf import nsf
from repro.datasets.yahoo import yahoo_autos
from repro.query.query import Query, slice_query
from repro.server.server import TopKServer


@pytest.fixture(scope="module")
def nsf_small():
    return nsf(n=8000, seed=23)


@pytest.fixture(scope="module")
def yahoo_small():
    return yahoo_autos(n=8000, seed=5, duplicates=0)


def run_queries(server, queries):
    for q in queries:
        server.run(q)


def test_vector_engine_slice_queries(benchmark, nsf_small):
    server = TopKServer(nsf_small, k=256, engine="vector")
    queries = [
        slice_query(nsf_small.space, i, v)
        for i in range(3)
        for v in range(1, nsf_small.space[i].domain_size + 1)
    ]
    benchmark(run_queries, server, queries)
    benchmark.extra_info["queries"] = len(queries)


def test_linear_engine_slice_queries(benchmark, nsf_small):
    server = TopKServer(nsf_small, k=256, engine="linear")
    queries = [slice_query(nsf_small.space, 0, v) for v in range(1, 6)]
    benchmark(run_queries, server, queries)
    benchmark.extra_info["queries"] = len(queries)


def test_vector_engine_range_queries(benchmark, yahoo_small):
    server = TopKServer(yahoo_small, k=256, engine="vector")
    space = yahoo_small.space
    price = space.index_of("Price")
    queries = [
        Query.full(space).with_range(price, lo, lo + 5000)
        for lo in range(0, 50000, 500)
    ]
    benchmark(run_queries, server, queries)
    benchmark.extra_info["queries"] = len(queries)


def test_vector_engine_mixed_queries(benchmark, yahoo_small):
    server = TopKServer(yahoo_small, k=256, engine="vector")
    space = yahoo_small.space
    queries = [
        Query.full(space)
        .with_value(0, 1 + (i % 2))
        .with_value(2, 1 + (i % 85))
        .with_range(4, 2000, 2012)
        for i in range(100)
    ]
    benchmark(run_queries, server, queries)
    benchmark.extra_info["queries"] = len(queries)


def test_indexed_engine_slice_queries(benchmark, nsf_small):
    server = TopKServer(nsf_small, k=256, engine="indexed")
    queries = [
        slice_query(nsf_small.space, i, v)
        for i in range(3)
        for v in range(1, nsf_small.space[i].domain_size + 1)
    ]
    benchmark(run_queries, server, queries)
    benchmark.extra_info["queries"] = len(queries)


def test_indexed_engine_selective_queries(benchmark, nsf_small):
    """The indexed engine's sweet spot: deep, rare-prefix queries."""
    space = nsf_small.space
    server = TopKServer(nsf_small, k=256, engine="indexed")
    pi_name = space.dimensionality - 1  # the huge-domain attribute
    queries = [Query.full(space).with_value(pi_name, v) for v in range(1, 401)]
    benchmark(run_queries, server, queries)
    benchmark.extra_info["queries"] = len(queries)


def test_vector_engine_selective_queries(benchmark, nsf_small):
    """Same workload as above on the vector engine, for comparison."""
    space = nsf_small.space
    server = TopKServer(nsf_small, k=256, engine="vector")
    pi_name = space.dimensionality - 1
    queries = [Query.full(space).with_value(pi_name, v) for v in range(1, 401)]
    benchmark(run_queries, server, queries)
    benchmark.extra_info["queries"] = len(queries)
