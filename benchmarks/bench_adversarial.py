"""Robustness benchmark: crawl cost under adversarial response choices.

Theorem 1's guarantees are independent of *which* ``k`` tuples an
overflowing query returns.  This benchmark measures the practical side
of that statement: rank-shrink's query cost when the server ranks
results like a real site ("cheapest first" / "newest first") or
actively clusters responses to force 3-way splits, compared with the
neutral random-priority behaviour the paper's experiments use.

Expected shape: costs move (skewed pivots make splits uneven), but
every variant stays under the same ``20 d n / k`` Lemma 2 envelope.
"""

import pytest

from benchmarks.conftest import bench_scale
from repro.crawl.rank_shrink import RankShrink
from repro.crawl.verify import assert_complete
from repro.datasets.adult import adult_numeric
from repro.server.server import TopKServer
from repro.theory.adversary import (
    AdversarialTopKServer,
    ModeClusterPolicy,
    RankByAttributePolicy,
)
from repro.theory.bounds import rank_shrink_upper_bound

K = 256


@pytest.fixture(scope="module")
def dataset():
    n = max(2000, int(45222 * bench_scale()))
    return adult_numeric(n=n, seed=2)


def crawl(server, bound):
    result = RankShrink(server, max_queries=bound).crawl()
    assert result.complete
    return result


@pytest.mark.parametrize(
    "policy_name",
    ["neutral", "rank-asc", "rank-desc", "mode-cluster"],
)
def test_rank_shrink_under_response_policies(benchmark, dataset, policy_name):
    d = dataset.space.dimensionality
    bound = rank_shrink_upper_bound(dataset.n, K, d)
    if policy_name == "neutral":
        server = TopKServer(dataset, k=K)
    else:
        policy = {
            "rank-asc": lambda: RankByAttributePolicy(0),
            "rank-desc": lambda: RankByAttributePolicy(0, descending=True),
            "mode-cluster": lambda: ModeClusterPolicy(0),
        }[policy_name]()
        server = AdversarialTopKServer(dataset, K, policy)
    result = benchmark.pedantic(
        crawl, args=(server, bound), rounds=1, iterations=1
    )
    assert_complete(result, dataset)
    assert result.cost <= bound
    benchmark.extra_info["policy"] = policy_name
    benchmark.extra_info["queries"] = result.cost
    benchmark.extra_info["lemma2_bound"] = bound
