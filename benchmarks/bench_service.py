"""The job service under contention: jobs/sec and time-to-first-row.

The service's pitch over the batch CLI is *multiplexing*: many
tenants' jobs share one worker fleet, the round-robin dispatcher keeps
every tenant progressing, and the SQLite store makes rows queryable the
moment their region commits.  This benchmark submits one job per
tenant -- more tenants than fleet workers, so the fleet is genuinely
contended -- against latency-wrapped sources (a fixed simulated round
trip per server query, so the wall-clock is dominated by the modelled
network, not the host machine) and measures:

* ``jobs_per_sec`` -- completed jobs over the makespan of the burst;
  the throughput the shared fleet sustains under contention,
* ``p99_time_to_first_row_s`` -- per job, submission to the first
  region commit (the moment ``rows`` starts answering); the fairness
  rotation is what keeps the tail short, since FIFO dispatch would
  leave the last tenant waiting for every earlier job's regions.

A second, CPU-bound burst (no latency wrapper: every query is pure
computation) runs identically under ``backend=thread`` and
``backend=process`` and records each backend's makespan and
``jobs_per_sec`` under ``backends``, plus their ratio as
``service_process_over_thread`` -- the multi-core win of shipping
region units to worker processes while the thread fleet is
GIL-serialized.  The ratio is asserted >= 1.5 only on multi-core
hosts, and the ``compare_bench`` gate for it requires >= 2 CPUs on
both sides, so a single-core runner records an honest baseline
instead of a vacuous pass.  The burst also re-checks the service
acceptance contract where it is cheapest to see: every tenant's rows
byte-identical to the standalone crawl, every tenant charged exactly
the standalone crawl's server queries.

All metrics land in ``BENCH_service.json`` (path overridable via
``REPRO_BENCH_SERVICE_OUT``; tests merge into the same report) and
are gated by ``tools/compare_bench.py`` against the committed
baseline.
"""

import json
import os
import threading
import time

import numpy as np

from benchmarks.conftest import bench_scale
from repro.crawl.partition import crawl_partitioned, partition_space
from repro.crawl.spec import CrawlSpec
from repro.dataspace.dataset import Dataset
from repro.dataspace.space import DataSpace
from repro.server.latency import LatencySource
from repro.server.limits import QueryBudget
from repro.server.server import TopKServer
from repro.service.api import CrawlService
from repro.service.jobs import JobState

K = 24
SESSIONS = 2
FLEET = 4
TENANTS = 8
#: Simulated per-query round trip.  Dominates the measured wall-clock
#: (a region costs ~10 queries), which is what makes the two gated
#: metrics properties of the scheduler rather than of the host.
RTT_SECONDS = 0.002


def crawl_dataset(n: int, seed: int = 31) -> Dataset:
    rng = np.random.default_rng(seed)
    space = DataSpace.mixed(
        [("make", 5), ("body", 3)],
        ["price"],
        numeric_bounds=[(0, 499)],
    )
    rows = np.column_stack(
        [
            rng.integers(1, 6, n),
            rng.integers(1, 4, n),
            rng.integers(0, 500, n),
        ]
    ).astype(np.int64)
    return Dataset(space, rows)


def write_report(update: dict) -> str:
    """Merge ``update`` into the report file (two tests, one report)."""
    path = os.environ.get("REPRO_BENCH_SERVICE_OUT", "BENCH_service.json")
    report = {}
    if os.path.exists(path):
        with open(path, encoding="utf-8") as handle:
            report = json.load(handle)
    report.update(update)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    return path


def test_contended_fleet_throughput_and_first_row(benchmark, tmp_path):
    """8 tenants, 4 workers: throughput up, first-row tail bounded."""
    n = max(300, int(1500 * bench_scale()))
    dataset = crawl_dataset(n)
    plan = partition_space(dataset.space, SESSIONS)
    reference = crawl_partitioned(
        [TopKServer(dataset, K, priority_seed=0) for _ in range(SESSIONS)],
        plan,
    )
    tenants = [f"tenant-{i}" for i in range(TENANTS)]
    measurements = {}

    def serve_burst():
        first_commit = {}
        submitted = {}
        lock = threading.Lock()

        def recorder(tenant):
            def on_region(key, result):
                with lock:
                    if tenant not in first_commit:
                        first_commit[tenant] = time.perf_counter()

            return on_region

        with CrawlService(
            tmp_path / "bench.db", workers=FLEET
        ) as service:
            for tenant in tenants:
                service.register_tenant(tenant)
            start = time.perf_counter()
            jobs = {}
            for tenant in tenants:
                submitted[tenant] = time.perf_counter()
                jobs[tenant] = service.submit(
                    tenant,
                    dataset,
                    K,
                    name="burst",
                    spec=CrawlSpec(on_region=recorder(tenant)),
                    sessions=SESSIONS,
                    wrap_source=lambda server: LatencySource(
                        server, RTT_SECONDS
                    ),
                )
            for tenant, job in jobs.items():
                status = service.wait(job, timeout=600)
                assert status.state is JobState.DONE, status
            makespan = time.perf_counter() - start
            # Every tenant's stored rows match the standalone crawl.
            for job in jobs.values():
                assert service.rows(job) == list(reference.rows)
        measurements["makespan"] = makespan
        measurements["first_row"] = {
            tenant: first_commit[tenant] - submitted[tenant]
            for tenant in tenants
        }

    benchmark.pedantic(serve_burst, rounds=1, iterations=1)

    makespan = measurements["makespan"]
    first_row = measurements["first_row"]
    times = sorted(first_row.values())
    p99 = float(np.percentile(times, 99))
    jobs_per_sec = TENANTS / makespan

    report = {
        "workload": (
            f"{TENANTS} tenants x 1 job over a {FLEET}-worker fleet, "
            f"{RTT_SECONDS * 1000:.1f}ms simulated RTT per query"
        ),
        "cpu_count": os.cpu_count(),
        "scale": bench_scale(),
        "n": dataset.n,
        "sessions": SESSIONS,
        "regions_per_job": len(plan.regions),
        "cost_per_job": reference.cost,
        "makespan_s": round(makespan, 3),
        "jobs_per_sec": round(jobs_per_sec, 3),
        "p99_time_to_first_row_s": round(p99, 4),
        "mean_time_to_first_row_s": round(float(np.mean(times)), 4),
    }
    path = write_report(report)
    benchmark.extra_info.update(report)
    benchmark.extra_info["report_path"] = path

    # The fairness bound: every tenant saw a first row well before the
    # whole burst finished.  A FIFO fleet would park the last tenant
    # behind every earlier job, pushing its first row toward the
    # makespan.
    assert p99 < makespan, (
        f"p99 first-row {p99:.3f}s is not below the makespan "
        f"{makespan:.3f}s; dispatch is starving late tenants"
    )


def test_process_backend_beats_threads_on_cpu_bound_burst(
    benchmark, tmp_path
):
    """Same 8-tenant burst, CPU-bound, thread fleet vs process fleet.

    No simulated RTT: every server query is pure numpy over the
    dataset, so the thread fleet is GIL-serialized while the process
    backend crawls region units on real cores.  The measured ratio is
    ``service_process_over_thread``; each backend's burst must also
    satisfy the service acceptance contract exactly (byte-identical
    rows, exact per-tenant charges), so the speedup is never bought
    with correctness.
    """
    n = max(1200, int(6000 * bench_scale()))
    dataset = crawl_dataset(n, seed=47)
    plan = partition_space(dataset.space, SESSIONS)
    meter = QueryBudget(1_000_000_000)
    reference = crawl_partitioned(
        [
            TopKServer(dataset, K, priority_seed=0, limits=[meter])
            for _ in range(SESSIONS)
        ],
        plan,
    )
    reference_queries = meter.used
    tenants = [f"tenant-{i}" for i in range(TENANTS)]

    def burst(backend):
        with CrawlService(
            tmp_path / f"bench-{backend}.db",
            workers=FLEET,
            backend=backend,
        ) as service:
            for tenant in tenants:
                service.register_tenant(tenant, budget=1_000_000_000)
            start = time.perf_counter()
            jobs = {
                tenant: service.submit(
                    tenant, dataset, K, name="burst", sessions=SESSIONS
                )
                for tenant in tenants
            }
            for job in jobs.values():
                status = service.wait(job, timeout=600)
                assert status.state is JobState.DONE, status
            makespan = time.perf_counter() - start
            if backend == "process":
                # What the dispatcher pickled per region unit: the
                # deduplicated per-session sources.  Gated
                # lower-is-better so rebuildable engine caches can
                # never creep back into worker payloads.
                measurements["payload_bytes"] = (
                    service.manager.last_payload_bytes
                )
            # The acceptance contract, per backend: byte-identical
            # rows and exact admission charges for every tenant.
            for job in jobs.values():
                assert service.rows(job) == list(reference.rows)
            for tenant in tenants:
                used = service.registry.budget(tenant).used
                assert used == reference_queries, (
                    backend,
                    tenant,
                    used,
                    reference_queries,
                )
        return makespan

    measurements = {}

    def run_both():
        measurements["thread"] = burst("thread")
        measurements["process"] = burst("process")

    benchmark.pedantic(run_both, rounds=1, iterations=1)

    thread_s = measurements["thread"]
    process_s = measurements["process"]
    ratio = thread_s / process_s
    report = {
        "cpu_bound_workload": (
            f"{TENANTS} tenants x 1 CPU-bound job over a "
            f"{FLEET}-worker fleet, thread vs process backend"
        ),
        "cpu_bound_n": dataset.n,
        "cpu_bound_cost_per_job": reference.cost,
        "backends": {
            "thread": {
                "makespan_s": round(thread_s, 3),
                "jobs_per_sec": round(TENANTS / thread_s, 3),
            },
            "process": {
                "makespan_s": round(process_s, 3),
                "jobs_per_sec": round(TENANTS / process_s, 3),
            },
        },
        "service_process_over_thread": round(ratio, 3),
        "payload_bytes": measurements["payload_bytes"],
    }
    path = write_report(report)
    benchmark.extra_info.update(report)
    benchmark.extra_info["report_path"] = path

    # The multi-core contract.  On a single-core host the process
    # backend is pure overhead; the committed baseline's cpu_count
    # makes the compare_bench gate skip there too -- loudly.
    if (os.cpu_count() or 1) >= 2:
        assert ratio >= 1.5, (
            f"process backend is only {ratio:.2f}x the thread fleet "
            f"on {os.cpu_count()} CPUs (thread {thread_s:.2f}s, "
            f"process {process_s:.2f}s); expected >= 1.5x"
        )
