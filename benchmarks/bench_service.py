"""The job service under contention: jobs/sec and time-to-first-row.

The service's pitch over the batch CLI is *multiplexing*: many
tenants' jobs share one worker fleet, the round-robin dispatcher keeps
every tenant progressing, and the SQLite store makes rows queryable the
moment their region commits.  This benchmark submits one job per
tenant -- more tenants than fleet workers, so the fleet is genuinely
contended -- against latency-wrapped sources (a fixed simulated round
trip per server query, so the wall-clock is dominated by the modelled
network, not the host machine) and measures:

* ``jobs_per_sec`` -- completed jobs over the makespan of the burst;
  the throughput the shared fleet sustains under contention,
* ``p99_time_to_first_row_s`` -- per job, submission to the first
  region commit (the moment ``rows`` starts answering); the fairness
  rotation is what keeps the tail short, since FIFO dispatch would
  leave the last tenant waiting for every earlier job's regions.

Both land in ``BENCH_service.json`` (path overridable via
``REPRO_BENCH_SERVICE_OUT``) and are gated by
``tools/compare_bench.py`` against the committed baseline.
"""

import json
import os
import threading
import time

import numpy as np

from benchmarks.conftest import bench_scale
from repro.crawl.partition import crawl_partitioned, partition_space
from repro.crawl.spec import CrawlSpec
from repro.dataspace.dataset import Dataset
from repro.dataspace.space import DataSpace
from repro.server.latency import LatencySource
from repro.server.server import TopKServer
from repro.service.api import CrawlService
from repro.service.jobs import JobState

K = 24
SESSIONS = 2
FLEET = 4
TENANTS = 8
#: Simulated per-query round trip.  Dominates the measured wall-clock
#: (a region costs ~10 queries), which is what makes the two gated
#: metrics properties of the scheduler rather than of the host.
RTT_SECONDS = 0.002


def crawl_dataset(n: int, seed: int = 31) -> Dataset:
    rng = np.random.default_rng(seed)
    space = DataSpace.mixed(
        [("make", 5), ("body", 3)],
        ["price"],
        numeric_bounds=[(0, 499)],
    )
    rows = np.column_stack(
        [
            rng.integers(1, 6, n),
            rng.integers(1, 4, n),
            rng.integers(0, 500, n),
        ]
    ).astype(np.int64)
    return Dataset(space, rows)


def write_report(report: dict) -> str:
    path = os.environ.get("REPRO_BENCH_SERVICE_OUT", "BENCH_service.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    return path


def test_contended_fleet_throughput_and_first_row(benchmark, tmp_path):
    """8 tenants, 4 workers: throughput up, first-row tail bounded."""
    n = max(300, int(1500 * bench_scale()))
    dataset = crawl_dataset(n)
    plan = partition_space(dataset.space, SESSIONS)
    reference = crawl_partitioned(
        [TopKServer(dataset, K, priority_seed=0) for _ in range(SESSIONS)],
        plan,
    )
    tenants = [f"tenant-{i}" for i in range(TENANTS)]
    measurements = {}

    def serve_burst():
        first_commit = {}
        submitted = {}
        lock = threading.Lock()

        def recorder(tenant):
            def on_region(key, result):
                with lock:
                    if tenant not in first_commit:
                        first_commit[tenant] = time.perf_counter()

            return on_region

        with CrawlService(
            tmp_path / "bench.db", workers=FLEET
        ) as service:
            for tenant in tenants:
                service.register_tenant(tenant)
            start = time.perf_counter()
            jobs = {}
            for tenant in tenants:
                submitted[tenant] = time.perf_counter()
                jobs[tenant] = service.submit(
                    tenant,
                    dataset,
                    K,
                    name="burst",
                    spec=CrawlSpec(on_region=recorder(tenant)),
                    sessions=SESSIONS,
                    wrap_source=lambda server: LatencySource(
                        server, RTT_SECONDS
                    ),
                )
            for tenant, job in jobs.items():
                status = service.wait(job, timeout=600)
                assert status.state is JobState.DONE, status
            makespan = time.perf_counter() - start
            # Every tenant's stored rows match the standalone crawl.
            for job in jobs.values():
                assert service.rows(job) == list(reference.rows)
        measurements["makespan"] = makespan
        measurements["first_row"] = {
            tenant: first_commit[tenant] - submitted[tenant]
            for tenant in tenants
        }

    benchmark.pedantic(serve_burst, rounds=1, iterations=1)

    makespan = measurements["makespan"]
    first_row = measurements["first_row"]
    times = sorted(first_row.values())
    p99 = float(np.percentile(times, 99))
    jobs_per_sec = TENANTS / makespan

    report = {
        "workload": (
            f"{TENANTS} tenants x 1 job over a {FLEET}-worker fleet, "
            f"{RTT_SECONDS * 1000:.1f}ms simulated RTT per query"
        ),
        "cpu_count": os.cpu_count(),
        "scale": bench_scale(),
        "n": dataset.n,
        "sessions": SESSIONS,
        "regions_per_job": len(plan.regions),
        "cost_per_job": reference.cost,
        "makespan_s": round(makespan, 3),
        "jobs_per_sec": round(jobs_per_sec, 3),
        "p99_time_to_first_row_s": round(p99, 4),
        "mean_time_to_first_row_s": round(float(np.mean(times)), 4),
    }
    path = write_report(report)
    benchmark.extra_info.update(report)
    benchmark.extra_info["report_path"] = path

    # The fairness bound: every tenant saw a first row well before the
    # whole burst finished.  A FIFO fleet would park the last tenant
    # behind every earlier job, pushing its first row toward the
    # makespan.
    assert p99 < makespan, (
        f"p99 first-row {p99:.3f}s is not below the makespan "
        f"{makespan:.3f}s; dispatch is starving late tenants"
    )
