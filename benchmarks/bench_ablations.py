"""Ablations: design choices the paper fixes without sweeping.

* Attribute ordering (the paper fixes the Figure 9 order for all
  algorithms): how much does lazy-slice-cover's cost move if the
  categorical attributes are ordered by domain size ascending vs
  descending?
* Rank-shrink's split threshold (the paper's ``k/4``): divisor sweep.

These have no paper counterpart to match; the assertions only pin
sanity (all variants crawl the same bag; costs are positive), and the
measured series land in ``extra_info`` for DESIGN.md's discussion.
"""

from benchmarks.conftest import record_figure, run_once
from repro.experiments.figures import (
    ablation_ordering,
    ablation_split_threshold,
)


def test_ordering_ablation(benchmark, scale):
    figure = run_once(benchmark, ablation_ordering, scale=scale, k=256)
    record_figure(benchmark, figure)
    series = figure.series_by_name("lazy-slice-cover")
    costs = dict(zip(series.xs(), series.ys()))
    assert all(cost >= 1 for cost in costs.values())
    # The paper's order starts with the smallest domains; it should not
    # be dramatically worse than the explicit ascending order.
    assert costs["paper (Figure 9)"] <= 2 * costs["domain asc"]


def test_split_threshold_ablation(benchmark, scale):
    figure = run_once(
        benchmark,
        ablation_split_threshold,
        scale=scale,
        k=256,
        divisors=(2, 3, 4, 8, 16),
    )
    record_figure(benchmark, figure)
    costs = figure.series_by_name("rank-shrink").ys()
    assert all(cost >= 1 for cost in costs)
    # The paper's divisor 4 should be within 2x of the best divisor.
    by_divisor = dict(zip(figure.series_by_name("rank-shrink").xs(), costs))
    assert by_divisor[4] <= 2 * min(costs)
