"""Figure 10: numeric algorithms (binary-shrink vs rank-shrink).

Reproduces the three panels of the paper's Figure 10 on Adult-numeric:
cost vs k, cost vs dimensionality, cost vs dataset size.  Shape claims
checked (Section 6, "Numeric algorithms"):

* rank-shrink outperforms binary-shrink at every measured point;
* rank-shrink's cost is inversely linear in k ("half as many queries
  each time k doubled");
* rank-shrink's cost stays nearly flat as d grows;
* rank-shrink's cost is linear in n.
"""

from benchmarks.conftest import record_figure, run_once
from repro.experiments.figures import figure_10a, figure_10b, figure_10c

KS = (64, 128, 256, 512, 1024)


def test_fig10a_cost_vs_k(benchmark, scale):
    figure = run_once(benchmark, figure_10a, scale=scale, ks=KS)
    record_figure(benchmark, figure)
    binary = figure.series_by_name("binary-shrink").ys()
    rank = figure.series_by_name("rank-shrink").ys()
    # Pointwise advantage with a 10% noise band (at large k the costs of
    # the two algorithms converge to within a few queries), plus a clear
    # aggregate win.
    assert all(r <= 1.1 * b for r, b in zip(rank, binary))
    assert sum(rank) < sum(binary)
    # Inverse linearity in k: quadrupling k cuts cost by at least ~2.5x.
    assert rank[0] > 2.5 * rank[2] or rank[2] <= 8


def test_fig10b_cost_vs_d(benchmark, scale):
    figure = run_once(
        benchmark, figure_10b, scale=scale, k=256, dims=(3, 4, 5, 6)
    )
    record_figure(benchmark, figure)
    rank = figure.series_by_name("rank-shrink").ys()
    binary = figure.series_by_name("binary-shrink").ys()
    if scale >= 1.0:
        assert all(r <= b for r, b in zip(rank, binary))
    else:
        # At reduced scale individual points are noisy (n/k is tiny);
        # require the aggregate advantage the paper reports.
        assert sum(rank) <= sum(binary)
    # Near-flat in d: the d=6 cost stays within 2.5x of the d=3 cost
    # (Lemma 2 would allow a 2x slope; practice is flatter).
    assert rank[-1] <= 2.5 * max(1, rank[0])


def test_fig10c_cost_vs_n(benchmark, scale):
    figure = run_once(
        benchmark,
        figure_10c,
        scale=scale,
        k=256,
        fractions=(0.2, 0.4, 0.6, 0.8, 1.0),
    )
    record_figure(benchmark, figure)
    rank = figure.series_by_name("rank-shrink").ys()
    assert rank == sorted(rank)  # cost grows with n
    binary = figure.series_by_name("binary-shrink").ys()
    if scale >= 1.0:
        assert all(r <= b for r, b in zip(rank, binary))
    else:
        assert sum(rank) <= sum(binary)
