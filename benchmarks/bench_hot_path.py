"""Single-core hot path: sequential queries/sec, gated per PR.

``BENCH_executors.json`` tracks how well the fleet scales *out*; this
benchmark tracks the thing the fleet multiplies: how fast **one**
worker's inner loop answers queries.  The workload is the same
CPU-bound linear-engine crawl the executor benchmark uses, run strictly
sequentially, so the measured ``queries_per_sec`` is pure inner-loop
cost -- predicate evaluation, engine top-k, response/cache hashing --
with no scheduling in the way.

Two engines crawl the identical plan:

* the **interpreted** reference -- a frozen copy of the pre-compiled-
  matcher ``LinearScanEngine.top`` (per-row predicate-method dispatch
  over numpy scalar reads), i.e. the pre-optimisation sequential path;
* the **compiled** engine -- today's :class:`LinearScanEngine`: one
  :func:`repro.query.compile_matcher` codegen pass per query over
  cached plain-int row tuples.

The crawl results must be byte-identical (rows, cost, progress) and the
query counts exactly equal -- the speedup may only come from doing the
same work faster.  ``hot_path_speedup`` (interpreted / compiled wall
clock) is asserted ``>= 1.5`` on any host, single-core included, and
both it and ``queries_per_sec`` are gated by ``tools/compare_bench.py``
against ``benchmarks/baselines/BENCH_hot_path.json``.

A second measurement times the batched top-k seam: answering a vector
of sibling slice queries through :meth:`QueryEngine.top_batch` (one
shared mask/candidate context) vs a per-query loop, on the vector and
indexed engines.  Recorded as ``batch_speedup`` for trend-watching; it
is not gated (sub-millisecond ratios are too noisy on shared CI).

A third measurement drives the seam end to end: one deterministic DFS
crawl over a dense categorical space on the vector engine, run with
batteries on (sibling queries under one
:meth:`~repro.server.client.CachingClient.batch` epoch, sharing the
engine's per-predicate masks) and off (the plain per-query loop).  The
two crawls must be byte-identical (rows, cost, progress, phase costs);
``battery_speedup`` is asserted ``>= 1.2`` and gated against the
baseline.  Profiled companion runs record ``admission_overhead_s`` per
mode -- wall clock inside ``client.server_wait`` but outside
``server.engine_top``, i.e. locks + admission + accounting -- which is
the share battery batching exists to shrink.

Finally ``payload_bytes`` records the pickled process payload of the
crawl's per-session sources (what :class:`ProcessExecutor` ships to
every pool worker).  Content-equal engine matrices ship once and
derived caches are trimmed, and the lower-is-better gate keeps it
that way.
"""

import json
import os
import time

import numpy as np

from benchmarks.conftest import bench_scale
from repro.crawl import profiling
from repro.crawl.dfs import DepthFirstSearch
from repro.crawl.executors import pickle_payload
from repro.crawl.partition import crawl_partitioned, partition_space
from repro.dataspace.dataset import Dataset
from repro.dataspace.space import DataSpace
from repro.query.query import Query
from repro.server.engines import (
    IndexedEngine,
    QueryEngine,
    VectorEngine,
)
from repro.server.response import Row
from repro.server.server import TopKServer

K = 16
SESSIONS = 4

#: Shape of the battery workload's dense categorical space.  Fan 3
#: keeps every equality's selectivity above the vector engine's
#: subset-index threshold (1/4), so each query takes the full-scan
#: path whose per-(attribute, predicate) masks the batch context
#: shares -- the seam under measurement.
BATTERY_DEPTH = 7
BATTERY_FAN = 3


class InterpretedLinearScanEngine(QueryEngine):
    """The pre-compiled-matcher linear scan, frozen for comparison.

    A faithful copy of ``LinearScanEngine.top`` before predicate
    compilation and row-tuple caching: one ``pred.matches`` dispatch
    per attribute per row, rows materialised per response.  This is
    the benchmark's "pre-PR sequential path".
    """

    def top(self, query: Query, k: int) -> tuple[list[Row], bool]:
        rows: list[Row] = []
        preds = query.predicates
        for i in range(self.n):
            raw = self._matrix[i]
            if all(pred.matches(int(v)) for pred, v in zip(preds, raw)):
                if len(rows) == k:
                    return rows, True
                rows.append(tuple(int(v) for v in raw))
        return rows, False


def cpu_bound_dataset(n: int, seed: int = 11) -> Dataset:
    """The executor benchmark's CPU-bound mixed-space dataset."""
    rng = np.random.default_rng(seed)
    space = DataSpace.mixed(
        [("make", 8), ("body", 4)],
        ["price"],
        numeric_bounds=[(0, 1999)],
    )
    rows = np.column_stack(
        [
            rng.integers(1, 9, n),
            rng.integers(1, 5, n),
            rng.integers(0, 2000, n),
        ]
    ).astype(np.int64)
    return Dataset(space, rows)


def timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def write_report(report: dict) -> str:
    path = os.environ.get("REPRO_BENCH_OUT", "BENCH_hot_path.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    return path


def interpreted_sources(dataset: Dataset, sessions: int) -> list[TopKServer]:
    """Servers whose engine is the frozen pre-optimisation scan."""
    sources = []
    for _ in range(sessions):
        server = TopKServer(dataset, K, engine="linear")
        # Swap in the frozen reference over the identical
        # priority-ordered matrix: same responses, old inner loop.
        server._engine = InterpretedLinearScanEngine(  # noqa: SLF001
            server._engine._matrix  # noqa: SLF001
        )
        sources.append(server)
    return sources


def measure_batch_seam(dataset: Dataset, reps: int = 20) -> dict:
    """Sibling slice queries: top_batch vs a per-query loop.

    The engine is warmed first (lazy indexes and row-tuple cache built
    outside the timed region) and the sibling set is answered ``reps``
    times, so the measured ratio is the seam itself -- shared mask /
    candidate reuse -- not index-build noise on a microsecond workload.
    Each ``top_batch`` call opens a fresh evaluation context, so no
    cache leaks between repetitions.
    """
    space = dataset.space
    report = {}
    base = Query.full(space)
    queries = [
        base.with_value(0, make).with_value(1, body)
        for make in range(1, 9)
        for body in range(1, 5)
    ]
    engine_classes = (("vector", VectorEngine), ("indexed", IndexedEngine))
    for name, engine_cls in engine_classes:
        engine = engine_cls(dataset.rows)
        expected = [engine.top(q, K) for q in queries]  # warm the engine
        looped, loop_seconds = timed(
            lambda e=engine: [
                [e.top(q, K) for q in queries] for _ in range(reps)
            ]
        )
        batched, batch_seconds = timed(
            lambda e=engine: [e.top_batch(queries, K) for _ in range(reps)]
        )
        assert all(rep == expected for rep in looped), name
        assert all(rep == expected for rep in batched), name
        report[name] = round(loop_seconds / max(batch_seconds, 1e-9), 2)
    return report


def battery_dataset(dups: int) -> Dataset:
    """Every point of the dense categorical space, ``dups`` times each.

    Fully deterministic: with ``k == dups`` every point query resolves
    exactly and every inner node overflows, so DFS walks the whole
    space tree and fires a leaf battery under every level-``d-1`` node
    -- identical work in battery and loop mode by construction.
    """
    grids = np.meshgrid(
        *[np.arange(1, BATTERY_FAN + 1)] * BATTERY_DEPTH, indexing="ij"
    )
    points = np.stack([g.ravel() for g in grids], axis=1)
    rows = np.repeat(points, dups, axis=0).astype(np.int64)
    space = DataSpace.categorical([BATTERY_FAN] * BATTERY_DEPTH)
    return Dataset(space, rows)


def battery_crawl(dataset: Dataset, k: int, batteries: bool):
    """One full DFS crawl on a fresh vector-engine server."""
    crawler = DepthFirstSearch(
        TopKServer(dataset, k, engine="vector"), batteries=batteries
    )
    return crawler.crawl()


def best_of(fn, reps: int = 2):
    """Result plus the minimum wall clock over ``reps`` runs."""
    result, seconds = None, float("inf")
    for _ in range(reps):
        result, elapsed = timed(fn)
        seconds = min(seconds, elapsed)
    return result, seconds


def measure_battery_crawl() -> dict:
    """Battery-batched vs looped DFS: speedup and admission overhead.

    The timed runs are unprofiled (the seam check is a global read
    either way); one profiled companion run per mode then splits the
    wall clock at the engine boundary: ``admission_overhead_s`` is
    ``client.server_wait`` seconds minus ``server.engine_top`` seconds
    -- everything the client waits on that is not the engine (locks,
    admission, response/stat bookkeeping).
    """
    dups = max(8, int(240 * bench_scale()))
    dataset = battery_dataset(dups)
    k = dups
    looped, loop_seconds = best_of(lambda: battery_crawl(dataset, k, False))
    batched, battery_seconds = best_of(
        lambda: battery_crawl(dataset, k, True)
    )

    # Byte-identical crawls: the speedup must come from sharing work,
    # never from doing different work.
    assert batched.rows == looped.rows
    assert batched.cost == looped.cost
    assert batched.progress == looped.progress
    assert batched.phase_costs == looped.phase_costs

    overhead = {}
    for label, batteries in (("loop", False), ("battery", True)):
        with profiling.profile() as prof:
            battery_crawl(dataset, k, batteries)
        phases = prof.phases()
        overhead[label] = round(
            phases["client.server_wait"].seconds
            - phases["server.engine_top"].seconds,
            4,
        )

    speedup = round(loop_seconds / max(battery_seconds, 1e-9), 2)
    report = {
        "battery_workload": (
            f"DFS over the dense {BATTERY_FAN}^{BATTERY_DEPTH} "
            f"categorical space x {dups} duplicates, vector engine"
        ),
        "battery_n": dataset.n,
        "battery_cost": batched.cost,
        "battery_seconds": {
            "loop": round(loop_seconds, 3),
            "battery": round(battery_seconds, 3),
        },
        "battery_queries_per_sec": round(
            batched.cost / max(battery_seconds, 1e-9), 1
        ),
        "battery_speedup": speedup,
        "admission_overhead_s": overhead,
    }

    assert speedup >= 1.2, (
        f"expected battery-batched DFS >= 1.2x over the per-query loop "
        f"on the vector engine, got {speedup}x ({loop_seconds:.2f}s "
        f"loop, {battery_seconds:.2f}s battery)"
    )
    return report


def test_single_core_queries_per_sec(benchmark):
    """Compiled vs interpreted inner loop on one sequential crawl."""
    n = max(4000, int(16000 * bench_scale()))
    dataset = cpu_bound_dataset(n)
    plan = partition_space(dataset.space, SESSIONS)

    interpreted, interp_seconds = timed(
        lambda: crawl_partitioned(
            interpreted_sources(dataset, plan.sessions), plan
        )
    )

    def compiled_sources():
        return [
            TopKServer(dataset, K, engine="linear")
            for _ in range(plan.sessions)
        ]

    compiled = benchmark.pedantic(
        lambda: crawl_partitioned(compiled_sources(), plan),
        rounds=1,
        iterations=1,
    )
    compiled_seconds = benchmark.stats.stats.mean

    # Byte-identical results, exact query counts: the speedup must come
    # from doing the same work faster, never from doing different work.
    assert compiled.rows == interpreted.rows
    assert compiled.cost == interpreted.cost
    assert compiled.progress == interpreted.progress

    queries_per_sec = round(compiled.cost / max(compiled_seconds, 1e-9), 1)
    speedup = round(interp_seconds / max(compiled_seconds, 1e-9), 2)
    report = {
        "workload": "cpu-bound sequential (linear engine)",
        "cpu_count": os.cpu_count(),
        "scale": bench_scale(),
        "n": dataset.n,
        "total_queries": compiled.cost,
        "seconds": {
            "interpreted": round(interp_seconds, 3),
            "compiled": round(compiled_seconds, 3),
        },
        "queries_per_sec": queries_per_sec,
        "hot_path_speedup": speedup,
        "batch_speedup": measure_batch_seam(dataset),
        # What ProcessExecutor would ship per pool worker for this
        # crawl's sources: one deduplicated matrix for all sessions,
        # derived caches trimmed.  Gated lower-is-better.
        "payload_bytes": len(
            pickle_payload(compiled_sources(), DepthFirstSearch)
        ),
    }
    report.update(measure_battery_crawl())
    path = write_report(report)
    benchmark.extra_info.update(report)
    benchmark.extra_info["report_path"] = path

    assert speedup >= 1.5, (
        f"expected the compiled hot path >= 1.5x over the interpreted "
        f"reference on the CPU-bound sequential crawl, got {speedup}x "
        f"({interp_seconds:.2f}s interpreted, {compiled_seconds:.2f}s "
        f"compiled)"
    )
