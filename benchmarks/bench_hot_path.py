"""Single-core hot path: sequential queries/sec, gated per PR.

``BENCH_executors.json`` tracks how well the fleet scales *out*; this
benchmark tracks the thing the fleet multiplies: how fast **one**
worker's inner loop answers queries.  The workload is the same
CPU-bound linear-engine crawl the executor benchmark uses, run strictly
sequentially, so the measured ``queries_per_sec`` is pure inner-loop
cost -- predicate evaluation, engine top-k, response/cache hashing --
with no scheduling in the way.

Two engines crawl the identical plan:

* the **interpreted** reference -- a frozen copy of the pre-compiled-
  matcher ``LinearScanEngine.top`` (per-row predicate-method dispatch
  over numpy scalar reads), i.e. the pre-optimisation sequential path;
* the **compiled** engine -- today's :class:`LinearScanEngine`: one
  :func:`repro.query.compile_matcher` codegen pass per query over
  cached plain-int row tuples.

The crawl results must be byte-identical (rows, cost, progress) and the
query counts exactly equal -- the speedup may only come from doing the
same work faster.  ``hot_path_speedup`` (interpreted / compiled wall
clock) is asserted ``>= 1.5`` on any host, single-core included, and
both it and ``queries_per_sec`` are gated by ``tools/compare_bench.py``
against ``benchmarks/baselines/BENCH_hot_path.json``.

A second measurement times the batched top-k seam: answering a vector
of sibling slice queries through :meth:`QueryEngine.top_batch` (one
shared mask/candidate context) vs a per-query loop, on the vector and
indexed engines.  Recorded as ``batch_speedup`` for trend-watching; it
is not gated (sub-millisecond ratios are too noisy on shared CI).
"""

import json
import os
import time

import numpy as np

from benchmarks.conftest import bench_scale
from repro.crawl.partition import crawl_partitioned, partition_space
from repro.dataspace.dataset import Dataset
from repro.dataspace.space import DataSpace
from repro.query.query import Query
from repro.server.engines import (
    IndexedEngine,
    QueryEngine,
    VectorEngine,
)
from repro.server.response import Row
from repro.server.server import TopKServer

K = 16
SESSIONS = 4


class InterpretedLinearScanEngine(QueryEngine):
    """The pre-compiled-matcher linear scan, frozen for comparison.

    A faithful copy of ``LinearScanEngine.top`` before predicate
    compilation and row-tuple caching: one ``pred.matches`` dispatch
    per attribute per row, rows materialised per response.  This is
    the benchmark's "pre-PR sequential path".
    """

    def top(self, query: Query, k: int) -> tuple[list[Row], bool]:
        rows: list[Row] = []
        preds = query.predicates
        for i in range(self.n):
            raw = self._matrix[i]
            if all(pred.matches(int(v)) for pred, v in zip(preds, raw)):
                if len(rows) == k:
                    return rows, True
                rows.append(tuple(int(v) for v in raw))
        return rows, False


def cpu_bound_dataset(n: int, seed: int = 11) -> Dataset:
    """The executor benchmark's CPU-bound mixed-space dataset."""
    rng = np.random.default_rng(seed)
    space = DataSpace.mixed(
        [("make", 8), ("body", 4)],
        ["price"],
        numeric_bounds=[(0, 1999)],
    )
    rows = np.column_stack(
        [
            rng.integers(1, 9, n),
            rng.integers(1, 5, n),
            rng.integers(0, 2000, n),
        ]
    ).astype(np.int64)
    return Dataset(space, rows)


def timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def write_report(report: dict) -> str:
    path = os.environ.get("REPRO_BENCH_OUT", "BENCH_hot_path.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    return path


def interpreted_sources(dataset: Dataset, sessions: int) -> list[TopKServer]:
    """Servers whose engine is the frozen pre-optimisation scan."""
    sources = []
    for _ in range(sessions):
        server = TopKServer(dataset, K, engine="linear")
        # Swap in the frozen reference over the identical
        # priority-ordered matrix: same responses, old inner loop.
        server._engine = InterpretedLinearScanEngine(  # noqa: SLF001
            server._engine._matrix  # noqa: SLF001
        )
        sources.append(server)
    return sources


def measure_batch_seam(dataset: Dataset, reps: int = 20) -> dict:
    """Sibling slice queries: top_batch vs a per-query loop.

    The engine is warmed first (lazy indexes and row-tuple cache built
    outside the timed region) and the sibling set is answered ``reps``
    times, so the measured ratio is the seam itself -- shared mask /
    candidate reuse -- not index-build noise on a microsecond workload.
    Each ``top_batch`` call opens a fresh evaluation context, so no
    cache leaks between repetitions.
    """
    space = dataset.space
    report = {}
    base = Query.full(space)
    queries = [
        base.with_value(0, make).with_value(1, body)
        for make in range(1, 9)
        for body in range(1, 5)
    ]
    engine_classes = (("vector", VectorEngine), ("indexed", IndexedEngine))
    for name, engine_cls in engine_classes:
        engine = engine_cls(dataset.rows)
        expected = [engine.top(q, K) for q in queries]  # warm the engine
        looped, loop_seconds = timed(
            lambda e=engine: [
                [e.top(q, K) for q in queries] for _ in range(reps)
            ]
        )
        batched, batch_seconds = timed(
            lambda e=engine: [e.top_batch(queries, K) for _ in range(reps)]
        )
        assert all(rep == expected for rep in looped), name
        assert all(rep == expected for rep in batched), name
        report[name] = round(loop_seconds / max(batch_seconds, 1e-9), 2)
    return report


def test_single_core_queries_per_sec(benchmark):
    """Compiled vs interpreted inner loop on one sequential crawl."""
    n = max(4000, int(16000 * bench_scale()))
    dataset = cpu_bound_dataset(n)
    plan = partition_space(dataset.space, SESSIONS)

    interpreted, interp_seconds = timed(
        lambda: crawl_partitioned(
            interpreted_sources(dataset, plan.sessions), plan
        )
    )

    def compiled_sources():
        return [
            TopKServer(dataset, K, engine="linear")
            for _ in range(plan.sessions)
        ]

    compiled = benchmark.pedantic(
        lambda: crawl_partitioned(compiled_sources(), plan),
        rounds=1,
        iterations=1,
    )
    compiled_seconds = benchmark.stats.stats.mean

    # Byte-identical results, exact query counts: the speedup must come
    # from doing the same work faster, never from doing different work.
    assert compiled.rows == interpreted.rows
    assert compiled.cost == interpreted.cost
    assert compiled.progress == interpreted.progress

    queries_per_sec = round(compiled.cost / max(compiled_seconds, 1e-9), 1)
    speedup = round(interp_seconds / max(compiled_seconds, 1e-9), 2)
    report = {
        "workload": "cpu-bound sequential (linear engine)",
        "cpu_count": os.cpu_count(),
        "scale": bench_scale(),
        "n": dataset.n,
        "total_queries": compiled.cost,
        "seconds": {
            "interpreted": round(interp_seconds, 3),
            "compiled": round(compiled_seconds, 3),
        },
        "queries_per_sec": queries_per_sec,
        "hot_path_speedup": speedup,
        "batch_speedup": measure_batch_seam(dataset),
    }
    path = write_report(report)
    benchmark.extra_info.update(report)
    benchmark.extra_info["report_path"] = path

    assert speedup >= 1.5, (
        f"expected the compiled hot path >= 1.5x over the interpreted "
        f"reference on the CPU-bound sequential crawl, got {speedup}x "
        f"({interp_seconds:.2f}s interpreted, {compiled_seconds:.2f}s "
        f"compiled)"
    )
