"""Tests for the domain-discovery extension."""

import pytest

from repro.datasets.synthetic import random_dataset
from repro.discovery.domains import discover_domains
from repro.dataspace.space import DataSpace
from repro.exceptions import SchemaError
from repro.server.client import CachingClient
from repro.server.server import TopKServer
from tests.conftest import make_dataset


class TestDiscovery:
    def test_discovers_all_present_values(self):
        space = DataSpace.categorical([4, 6])
        dataset = random_dataset(space, 200, seed=3)
        report = discover_domains(TopKServer(dataset, k=16))
        for i in range(2):
            present = set(int(v) for v in dataset.rows[:, i])
            assert report.values[i] == present
        assert report.saturated

    def test_absent_values_cannot_be_discovered(self):
        space = DataSpace.categorical([5])
        dataset = make_dataset(space, [[1], [3]])  # 2, 4, 5 unused
        report = discover_domains(TopKServer(dataset, k=10))
        assert report.values[0] == {1, 3}
        coverage = report.coverage(space)
        assert coverage[0] == pytest.approx(2 / 5)

    def test_mixed_space_discovers_categorical_prefix(self):
        space = DataSpace.mixed([("c", 3)], ["x"])
        dataset = random_dataset(space, 100, seed=1, numeric_range=(0, 9))
        report = discover_domains(TopKServer(dataset, k=8))
        assert set(report.values) == {0}
        assert report.counts[0] >= 1

    def test_budget_stops_cleanly(self):
        space = DataSpace.categorical([30, 30])
        dataset = random_dataset(space, 500, seed=2)
        report = discover_domains(TopKServer(dataset, k=4), max_queries=5)
        assert report.cost <= 5
        assert not report.saturated

    def test_numeric_space_rejected(self):
        dataset = random_dataset(DataSpace.numeric(2), 10, seed=0)
        with pytest.raises(SchemaError):
            discover_domains(TopKServer(dataset, k=4))

    def test_shared_client_costs_attributed(self):
        space = DataSpace.categorical([3])
        dataset = random_dataset(space, 40, seed=4)
        client = CachingClient(TopKServer(dataset, k=8))
        report = discover_domains(client)
        assert report.cost == client.cost
        # Re-discovery over the warmed cache costs nothing new.
        again = discover_domains(client)
        assert again.cost == 0
        assert again.values == report.values
