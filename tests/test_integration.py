"""Cross-package integration: the full stack, composed every which way.

Each test here wires at least three packages together (web + crawl +
theory, analytics + server + limits, ...) and asserts an end-to-end
invariant no unit test can see.
"""

import numpy as np
from hypothesis import given, settings

from repro.crawl.hybrid import Hybrid
from repro.crawl.verify import assert_complete
from repro.dataspace.dataset import Dataset
from repro.discovery.domains import discover_domains
from repro.server.client import CachingClient
from repro.server.server import TopKServer
from repro.web.adapter import WebSession
from repro.web.site import HiddenWebSite
from tests.conftest import small_instances


class TestWebParityProperty:
    """Crawling over HTML is information-identical to direct crawling."""

    @given(instance=small_instances(max_dim=3, max_domain=4))
    @settings(max_examples=25, deadline=None)
    def test_hybrid_parity_on_random_instances(self, instance):
        dataset, k = instance
        direct = Hybrid(TopKServer(dataset, k)).crawl()
        session = WebSession(HiddenWebSite(TopKServer(dataset, k)))
        via_web = Hybrid(CachingClient(session)).crawl()
        assert via_web.cost == direct.cost
        assert sorted(via_web.rows) == sorted(direct.rows)
        assert_complete(via_web, dataset)


class TestEngineCrawlEquivalence:
    """Every engine behind the server yields the same crawl, bit for bit."""

    def test_engines_agree_at_crawl_level(self):
        rng = np.random.default_rng(13)
        from repro.dataspace.space import DataSpace

        space = DataSpace.mixed([("c1", 5), ("c2", 3)], ["v"])
        rows = np.column_stack(
            [
                rng.integers(1, 6, 500),
                rng.integers(1, 4, 500),
                rng.integers(0, 3000, 500),
            ]
        ).astype(np.int64)
        dataset = Dataset(space, rows)
        results = {
            engine: Hybrid(TopKServer(dataset, k=16, engine=engine)).crawl()
            for engine in ("linear", "vector", "indexed")
        }
        reference = results["linear"]
        for engine, result in results.items():
            assert result.cost == reference.cost, engine
            assert result.rows == reference.rows, engine


class TestDiscoveryOverWeb:
    """Domain discovery runs against the HTML interface unchanged."""

    def test_discovered_domains_match_menus(self):
        rng = np.random.default_rng(3)
        from repro.dataspace.space import DataSpace

        space = DataSpace.categorical([4, 6])
        rows = np.column_stack(
            [rng.integers(1, 5, 300), rng.integers(1, 7, 300)]
        ).astype(np.int64)
        dataset = Dataset(space, rows)
        session = WebSession(HiddenWebSite(TopKServer(dataset, k=8)))
        report = discover_domains(CachingClient(session), max_queries=500)
        # Every value that occurs in the data must be discovered; the
        # search form's menus independently advertise the full domain.
        for i in range(2):
            occurring = set(int(v) for v in np.unique(dataset.rows[:, i]))
            assert report.values[i] >= occurring
            assert session.space[i].domain_size == space[i].domain_size


class TestAdversaryOverWeb:
    """An adversarial backend behind the website changes nothing."""

    def test_site_over_adversarial_server(self):
        from repro.theory.adversary import (
            AdversarialTopKServer,
            RankByAttributePolicy,
        )

        rng = np.random.default_rng(21)
        from repro.dataspace.space import DataSpace

        space = DataSpace.mixed([("c", 3)], ["v"])
        rows = np.column_stack(
            [rng.integers(1, 4, 200), rng.integers(0, 900, 200)]
        ).astype(np.int64)
        dataset = Dataset(space, rows)
        backend = AdversarialTopKServer(dataset, 8, RankByAttributePolicy(1))
        session = WebSession(HiddenWebSite(backend))
        result = Hybrid(CachingClient(session)).crawl()
        assert_complete(result, dataset)
