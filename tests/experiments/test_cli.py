"""Tests for the python -m repro.experiments CLI."""

from repro.experiments.__main__ import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["10a"])
        assert args.figures == ["10a"]
        assert args.scale == 1.0
        assert not args.markdown

    def test_multiple_figures_and_options(self):
        args = build_parser().parse_args(
            ["10a", "thm3", "--scale", "0.2", "--seed", "7", "--markdown"]
        )
        assert args.figures == ["10a", "thm3"]
        assert args.scale == 0.2
        assert args.seed == 7
        assert args.markdown


class TestMain:
    def test_unknown_figure_exits_2(self, capsys):
        assert main(["nope"]) == 2
        err = capsys.readouterr().err
        assert "unknown figure" in err

    def test_runs_theorem_check(self, capsys):
        # thm3 is fast and takes no scale parameter.
        assert main(["thm3"]) == 0
        out = capsys.readouterr().out
        assert "thm3" in out
        assert "lower bound d*m" in out

    def test_markdown_mode(self, capsys):
        assert main(["thm3", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert "| m (groups) |" in out

    def test_scaled_figure(self, capsys):
        assert main(["13", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "fig13" in out
