"""Tests for figure rendering (text and Markdown tables)."""

from repro.experiments.reporting import (
    figure_rows,
    format_figure,
    format_markdown,
)
from repro.experiments.runner import FigureResult


def sample_figure():
    figure = FigureResult("figX", "A test figure", "k", "queries")
    a = figure.new_series("alpha")
    a.add(64, 100)
    a.add(128, 50)
    b = figure.new_series("beta")
    b.add(128, 70)  # beta has no point at 64
    b.add(64, 120)
    figure.note("hello note")
    return figure


class TestFigureRows:
    def test_header_and_alignment(self):
        header, rows = figure_rows(sample_figure())
        assert header == ["k", "alpha", "beta"]
        assert rows == [["64", "100", "120"], ["128", "50", "70"]]

    def test_missing_cells_render_dash(self):
        figure = FigureResult("f", "t", "x", "y")
        figure.new_series("a").add(1, 10)
        figure.new_series("b").add(2, 20)
        _, rows = figure_rows(figure)
        assert rows == [["1", "10", "-"], ["2", "-", "20"]]

    def test_numeric_xs_sorted(self):
        figure = FigureResult("f", "t", "x", "y")
        s = figure.new_series("a")
        s.add(128, 1)
        s.add(64, 2)
        _, rows = figure_rows(figure)
        assert [r[0] for r in rows] == ["64", "128"]

    def test_string_xs_keep_insertion_order(self):
        figure = FigureResult("f", "t", "x", "y")
        s = figure.new_series("a")
        s.add("paper", 1)
        s.add("asc", 2)
        _, rows = figure_rows(figure)
        assert [r[0] for r in rows] == ["paper", "asc"]

    def test_float_formatting(self):
        figure = FigureResult("f", "t", "x", "y")
        s = figure.new_series("a")
        s.add(0.5, 0.12345)
        s.add(1.0, 3.0)
        _, rows = figure_rows(figure)
        assert rows[0][1] == "0.1235"
        assert rows[1][1] == "3"


class TestFormatters:
    def test_text_format(self):
        text = format_figure(sample_figure())
        assert "figX" in text
        assert "alpha" in text and "beta" in text
        assert "note: hello note" in text
        assert "(y-axis: queries)" in text

    def test_markdown_format(self):
        md = format_markdown(sample_figure())
        assert md.splitlines()[2].startswith("| k | alpha | beta |")
        assert "| 64 | 100 | 120 |" in md
        assert "- note: hello note" in md
