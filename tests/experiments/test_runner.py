"""Tests for the experiment plumbing (series, figures, measurement)."""

import pytest

from repro.crawl.hybrid import Hybrid
from repro.datasets.synthetic import random_dataset
from repro.dataspace.space import DataSpace
from repro.experiments.runner import (
    FigureResult,
    Series,
    measure_crawl,
    try_measure_crawl,
)
from tests.conftest import make_dataset


class TestSeries:
    def test_add_and_access(self):
        series = Series("algo")
        series.add(64, 100, note="x")
        series.add(128, 50)
        assert series.xs() == [64, 128]
        assert series.ys() == [100, 50]
        assert series.points[0].extra == {"note": "x"}


class TestFigureResult:
    def test_series_registry(self):
        figure = FigureResult("f", "t", "x", "y")
        s = figure.new_series("a")
        s.add(1, 2)
        assert figure.series_by_name("a") is s
        with pytest.raises(KeyError):
            figure.series_by_name("b")

    def test_notes(self):
        figure = FigureResult("f", "t", "x", "y")
        figure.note("hello")
        assert figure.notes == ["hello"]


class TestMeasureCrawl:
    @pytest.fixture
    def dataset(self):
        space = DataSpace.mixed([("c", 3)], ["x"])
        return random_dataset(space, 80, seed=1, numeric_range=(0, 20))

    def test_measures_and_verifies(self, dataset):
        result = measure_crawl(dataset, 8, Hybrid)
        assert result.complete
        assert result.tuples_extracted == dataset.n

    def test_verify_flag(self, dataset):
        result = measure_crawl(dataset, 8, Hybrid, verify=False)
        assert result.complete  # still a full crawl, just unchecked

    def test_priority_seed_changes_responses_not_result(self, dataset):
        a = measure_crawl(dataset, 8, Hybrid, priority_seed=1)
        b = measure_crawl(dataset, 8, Hybrid, priority_seed=2)
        assert sorted(a.rows) == sorted(b.rows)

    def test_try_measure_returns_none_on_infeasible(self):
        space = DataSpace.categorical([3])
        heavy = make_dataset(space, [[1]] * 10 + [[2]])
        assert try_measure_crawl(heavy, 4, Hybrid) is None

    def test_try_measure_passes_through(self, dataset):
        result = try_measure_crawl(dataset, 8, Hybrid)
        assert result is not None and result.complete
