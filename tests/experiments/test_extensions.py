"""Shape tests for the extension experiments at tiny scale."""

import pytest

from repro.experiments.extensions import (
    extension_adversarial,
    extension_partition,
    extension_sampling,
)
from repro.experiments.figures import FIGURES
from repro.experiments.reporting import format_figure

SCALE = 0.05


class TestAdversarial:
    @pytest.fixture(scope="class")
    def figure(self):
        return extension_adversarial(scale=SCALE, k=64, seed=1)

    def test_four_policies_measured(self, figure):
        series = figure.series_by_name("rank-shrink")
        assert len(series.points) == 4

    def test_all_costs_under_envelope(self, figure):
        # The envelope is stated in a note: "... = <bound> queries".
        bound = int(figure.notes[1].rsplit("=", 1)[1].split()[0])
        assert all(y <= bound for y in figure.series_by_name("rank-shrink").ys())

    def test_renders(self, figure):
        text = format_figure(figure)
        assert "mode cluster" in text


class TestSampling:
    @pytest.fixture(scope="class")
    def figure(self):
        return extension_sampling(scale=SCALE, k=64, seed=1)

    def test_three_series(self, figure):
        names = {s.name for s in figure.series}
        assert names == {
            "sampling size rel. error",
            "sampling sum rel. error",
            "crawled fraction",
        }

    def test_crawled_fraction_monotone_and_capped(self, figure):
        fractions = figure.series_by_name("crawled fraction").ys()
        assert fractions == sorted(fractions)
        assert fractions[-1] <= 1.0

    def test_errors_nonnegative(self, figure):
        for name in ("sampling size rel. error", "sampling sum rel. error"):
            assert all(y >= 0 for y in figure.series_by_name(name).ys())


class TestPartition:
    @pytest.fixture(scope="class")
    def figure(self):
        return extension_partition(scale=SCALE, k=64, seed=1)

    def test_session_sweep(self, figure):
        totals = figure.series_by_name("total queries")
        peaks = figure.series_by_name("max per-session queries")
        assert totals.xs() == [1, 2, 4, 8]
        assert peaks.xs() == [1, 2, 4, 8]

    def test_peak_no_worse_than_total(self, figure):
        totals = figure.series_by_name("total queries").ys()
        peaks = figure.series_by_name("max per-session queries").ys()
        assert all(p <= t for p, t in zip(peaks, totals))

    def test_peak_decreases_with_parallelism(self, figure):
        peaks = figure.series_by_name("max per-session queries").ys()
        assert peaks[-1] <= peaks[0]


class TestRegistry:
    def test_extensions_registered(self):
        for key in ("ext-adversary", "ext-sampling", "ext-partition"):
            assert key in FIGURES

    def test_cli_accepts_extension_id(self, capsys):
        from repro.experiments.__main__ import main

        code = main(["ext-adversary", "--scale", "0.03"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ext-adversary" in out
