"""Smoke + shape tests for the figure experiments at tiny scale.

Full-scale runs live in benchmarks/ and EXPERIMENTS.md; here each
experiment runs on a small Bernoulli sample so the suite stays fast,
and we assert the qualitative *shapes* the paper reports.
"""

import pytest

from repro.experiments import figures

SCALE = 0.03  # ~1.4k tuples of Adult/NSF; enough for shape checks
KS = (16, 64, 256)


@pytest.fixture(scope="module")
def fig10a():
    return figures.figure_10a(scale=SCALE, ks=KS)


@pytest.fixture(scope="module")
def fig11a():
    return figures.figure_11a(scale=SCALE, ks=KS)


class TestFigure10:
    def test_rank_beats_binary_everywhere(self, fig10a):
        binary = fig10a.series_by_name("binary-shrink").ys()
        rank = fig10a.series_by_name("rank-shrink").ys()
        assert all(r <= b for r, b in zip(rank, binary))

    def test_cost_decreases_in_k(self, fig10a):
        rank = fig10a.series_by_name("rank-shrink").ys()
        assert rank == sorted(rank, reverse=True)

    def test_10b_runs_and_is_flat_ish(self):
        fig = figures.figure_10b(scale=SCALE, k=64, dims=(3, 4))
        rank = fig.series_by_name("rank-shrink").ys()
        assert len(rank) == 2
        assert all(y >= 1 for y in rank)

    def test_10c_cost_grows_with_n(self):
        fig = figures.figure_10c(scale=SCALE, k=64, fractions=(0.3, 1.0))
        rank = fig.series_by_name("rank-shrink").ys()
        assert rank[0] <= rank[1]


class TestFigure11:
    def test_lazy_wins_slice_cover_loses(self, fig11a):
        dfs = fig11a.series_by_name("DFS").ys()
        eager = fig11a.series_by_name("slice-cover").ys()
        lazy = fig11a.series_by_name("lazy-slice-cover").ys()
        for d, e, l in zip(dfs, eager, lazy):
            assert l <= d
            assert l <= e
        # Eager pays the full slice table regardless of k: ~flat series.
        assert max(eager) - min(eager) < 0.1 * max(eager)

    def test_11b_runs(self):
        fig = figures.figure_11b(scale=SCALE, k=64, dims=(5, 6))
        assert len(fig.series) == 3

    def test_11c_lazy_grows_with_n(self):
        fig = figures.figure_11c(scale=SCALE, k=64, fractions=(0.3, 1.0))
        lazy = fig.series_by_name("lazy-slice-cover").ys()
        assert lazy[0] <= lazy[1]


class TestFigure12And13:
    def test_12_hybrid_decreasing_in_k(self):
        fig = figures.figure_12(scale=SCALE, ks=KS)
        for name in ("Yahoo", "Adult"):
            series = [s for s in fig.series if s.name.startswith(name)]
            assert len(series) == 1
            ys = series[0].ys()
            assert ys == sorted(ys, reverse=True)

    def test_13_progressiveness_monotone_to_one(self):
        fig = figures.figure_13(scale=SCALE, k=64, grid=(0.0, 0.5, 1.0))
        for series in fig.series:
            ys = series.ys()
            assert ys == sorted(ys)
            assert ys[-1] >= 0.99


class TestTheoremChecks:
    def test_thm3_envelope(self):
        fig = figures.theorem_3_check(k=8, d=3, ms=(4, 8))
        measured = fig.series_by_name("rank-shrink").ys()
        lower = fig.series_by_name("lower bound d*m").ys()
        upper = fig.series_by_name("Theorem 1 upper bound").ys()
        for m_cost, lo, hi in zip(measured, lower, upper):
            assert lo <= m_cost <= hi

    def test_thm4_envelope(self):
        fig = figures.theorem_4_check(k=20, us=(3,))
        eager = fig.series_by_name("slice-cover").ys()
        lower = fig.series_by_name("lower bound").ys()
        upper = fig.series_by_name("Lemma 4 upper bound").ys()
        assert lower[0] <= eager[0] <= upper[0]


class TestAblations:
    def test_ordering_runs_and_is_complete(self):
        fig = figures.ablation_ordering(scale=SCALE, k=64)
        series = fig.series_by_name("lazy-slice-cover")
        assert len(series.points) == 3

    def test_split_threshold_runs(self):
        fig = figures.ablation_split_threshold(
            scale=SCALE, k=64, divisors=(2, 4)
        )
        assert len(fig.series_by_name("rank-shrink").points) == 2
