"""Drill-down sampler tests: probabilities, determinism, edge cases."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.analytics.random_walk import DrillDownSampler
from repro.dataspace.dataset import Dataset
from repro.dataspace.space import DataSpace
from repro.exceptions import SchemaError, UnboundedDomainError
from repro.query.query import Query
from repro.server.client import CachingClient
from repro.server.server import TopKServer
from tests.conftest import small_instances


def categorical_dataset(seed=0, n=120):
    rng = np.random.default_rng(seed)
    space = DataSpace.categorical([3, 4, 5])
    rows = np.column_stack(
        [rng.integers(1, 4, n), rng.integers(1, 5, n), rng.integers(1, 6, n)]
    ).astype(np.int64)
    return Dataset(space, rows)


def exact_walk_distribution(dataset, k):
    """Brute-force the sampler's per-instance selection probabilities.

    Mirrors the walk semantics on a categorical space: descend the
    prefix hierarchy, splitting probability uniformly over each
    domain, and at the first resolved query share the node's mass
    uniformly over the returned bag.  Returns ``(per-instance
    probability list, failure mass)``.
    """
    server = TopKServer(dataset, k)
    space = dataset.space
    instance_probs = []
    failure_mass = 0.0

    def descend(query, level, mass):
        nonlocal failure_mass
        response = server.run(query)
        if not response.overflow:
            if response.rows:
                share = mass / len(response.rows)
                instance_probs.extend([share] * len(response.rows))
            else:
                failure_mass += mass
            return
        assert level < space.dimensionality, "point query overflowed"
        size = space[level].domain_size
        for value in range(1, size + 1):
            descend(query.with_value(level, value), level + 1, mass / size)

    descend(Query.full(space), 0, 1.0)
    return instance_probs, failure_mass


class TestWalkSemantics:
    def test_probability_mass_is_conserved(self):
        dataset = categorical_dataset()
        probs, failure = exact_walk_distribution(dataset, k=8)
        assert sum(probs) + failure == pytest.approx(1.0)

    def test_ht_expectation_is_exactly_n(self):
        """E[1/p] over the walk distribution equals n -- unbiasedness."""
        dataset = categorical_dataset()
        probs, _ = exact_walk_distribution(dataset, k=8)
        expectation = sum(p * (1.0 / p) for p in probs)
        assert expectation == pytest.approx(dataset.n)

    def test_sampled_probabilities_match_exact_distribution(self):
        """The sampler reports exactly the analytic p(t) for its samples."""
        dataset = categorical_dataset()
        # Build the analytic probability of each *distinct row* by
        # accumulating instance shares.
        server = TopKServer(dataset, k=8)
        sampler = DrillDownSampler(CachingClient(server), seed=5)
        probs, _ = exact_walk_distribution(dataset, k=8)
        distinct_probs = sorted(set(round(p, 12) for p in probs))
        for _ in range(50):
            outcome = sampler.walk()
            if outcome.success:
                assert round(outcome.probability, 12) in distinct_probs

    def test_walks_are_seed_deterministic(self):
        dataset = categorical_dataset()
        a = DrillDownSampler(TopKServer(dataset, k=8), seed=9)
        b = DrillDownSampler(TopKServer(dataset, k=8), seed=9)
        for _ in range(20):
            assert a.walk() == b.walk()

    def test_small_k_resolves_deeper(self):
        dataset = categorical_dataset()
        sampler = DrillDownSampler(TopKServer(dataset, k=2), seed=1)
        outcomes = sampler.walks(30)
        assert any(o.depth > 1 for o in outcomes)


class TestNumericWalks:
    def test_bounded_numeric_space_works(self):
        rng = np.random.default_rng(4)
        space = DataSpace.numeric(1, bounds=[(0, 63)])
        rows = rng.integers(0, 64, 80).reshape(-1, 1).astype(np.int64)
        dataset = Dataset(space, rows)
        sampler = DrillDownSampler(TopKServer(dataset, k=5), seed=2)
        outcomes = sampler.walks(40)
        assert any(o.success for o in outcomes)
        for o in outcomes:
            if o.success:
                assert 0.0 < o.probability <= 1.0

    def test_unbounded_numeric_rejected(self):
        space = DataSpace.numeric(1)
        dataset = Dataset(space, [(1,), (2,)])
        with pytest.raises(UnboundedDomainError):
            DrillDownSampler(TopKServer(dataset, k=1))

    def test_mixed_space_walks(self):
        rng = np.random.default_rng(6)
        space = DataSpace.mixed([("c", 3)], ["v"], numeric_bounds=[(0, 127)])
        rows = np.column_stack(
            [rng.integers(1, 4, 100), rng.integers(0, 128, 100)]
        ).astype(np.int64)
        dataset = Dataset(space, rows)
        sampler = DrillDownSampler(TopKServer(dataset, k=4), seed=0)
        outcomes = sampler.walks(60)
        assert sum(o.success for o in outcomes) > 0


class TestEdgeCases:
    def test_empty_database_all_walks_fail(self):
        space = DataSpace.categorical([3])
        dataset = Dataset(space, np.empty((0, 1), dtype=np.int64))
        sampler = DrillDownSampler(TopKServer(dataset, k=2), seed=0)
        outcomes = sampler.walks(10)
        assert all(not o.success for o in outcomes)

    def test_overloaded_point_fails_walk_without_crashing(self):
        space = DataSpace.categorical([2])
        dataset = Dataset(space, [(1,)] * 5 + [(2,)])
        # k=3 < multiplicity 5: the point query overflows.
        sampler = DrillDownSampler(TopKServer(dataset, k=3), seed=0)
        outcomes = sampler.walks(20)
        # Walks into value 2 succeed; walks into value 1 fail.
        assert any(o.success for o in outcomes)
        assert any(not o.success for o in outcomes)

    def test_zero_walk_count_rejected(self):
        space = DataSpace.categorical([2])
        dataset = Dataset(space, [(1,)])
        sampler = DrillDownSampler(TopKServer(dataset, k=2), seed=0)
        with pytest.raises(SchemaError):
            sampler.walks(0)

    def test_resolved_root_needs_one_query(self):
        space = DataSpace.categorical([4])
        dataset = Dataset(space, [(1,), (2,)])
        sampler = DrillDownSampler(TopKServer(dataset, k=10), seed=0)
        outcome = sampler.walk()
        assert outcome.success and outcome.depth == 1
        assert outcome.probability == pytest.approx(0.5)

    @given(instance=small_instances(max_dim=2, max_domain=4))
    @settings(max_examples=25, deadline=None)
    def test_random_instances_never_crash(self, instance):
        dataset, k = instance
        space = dataset.space
        if any(a.is_numeric for a in space):
            bounded = dataset.with_bounds_from_data()
        else:
            bounded = dataset
        if bounded.n == 0 and any(
            a.is_numeric and not a.is_bounded for a in bounded.space
        ):
            return  # empty numeric data cannot derive bounds
        sampler = DrillDownSampler(TopKServer(bounded, k), seed=1)
        for outcome in sampler.walks(10):
            if outcome.success:
                assert 0.0 < outcome.probability <= 1.0
