"""Estimator tests: unbiasedness in expectation, accuracy with seeds."""

import math

import numpy as np
import pytest

from repro.analytics.estimators import (
    estimate_mean,
    estimate_size,
    estimate_sum,
    horvitz_thompson,
)
from repro.analytics.random_walk import WalkOutcome
from repro.dataspace.dataset import Dataset
from repro.dataspace.space import DataSpace
from repro.exceptions import SchemaError
from repro.server.client import CachingClient
from repro.server.server import TopKServer


def make_dataset(seed=1, n=500):
    rng = np.random.default_rng(seed)
    space = DataSpace.mixed(
        [("c1", 4), ("c2", 6)], ["v"], numeric_bounds=[(0, 1023)]
    )
    rows = np.column_stack(
        [
            rng.integers(1, 5, n),
            rng.integers(1, 7, n),
            rng.integers(0, 1024, n),
        ]
    ).astype(np.int64)
    return Dataset(space, rows)


class TestHorvitzThompson:
    def test_empty_outcomes_rejected(self):
        with pytest.raises(SchemaError):
            horvitz_thompson([], lambda row: 1.0, cost=0)

    def test_single_success(self):
        outcome = WalkOutcome((1, 2), 0.25, 1)
        report = horvitz_thompson([outcome], lambda row: 1.0, cost=1)
        assert report.estimate == pytest.approx(4.0)
        assert math.isnan(report.stderr)

    def test_failures_contribute_zero(self):
        outcomes = [
            WalkOutcome((1,), 0.5, 1),
            WalkOutcome(None, 0.0, 1),
        ]
        report = horvitz_thompson(outcomes, lambda row: 1.0, cost=2)
        assert report.estimate == pytest.approx(1.0)  # (2 + 0) / 2
        assert report.successes == 1 and report.walks == 2

    def test_stderr_zero_for_identical_contributions(self):
        outcomes = [WalkOutcome((1,), 0.5, 1)] * 4
        report = horvitz_thompson(outcomes, lambda row: 1.0, cost=4)
        assert report.stderr == pytest.approx(0.0)

    def test_relative_error(self):
        outcome = WalkOutcome((1,), 0.5, 1)
        report = horvitz_thompson([outcome], lambda row: 1.0, cost=1)
        assert report.relative_error(4.0) == pytest.approx(0.5)
        with pytest.raises(SchemaError):
            report.relative_error(0.0)

    def test_str_is_informative(self):
        outcomes = [WalkOutcome((1,), 0.5, 1)] * 2
        text = str(horvitz_thompson(outcomes, lambda row: 1.0, cost=2))
        assert "walks" in text and "queries" in text


class TestAccuracy:
    """Seeded statistical checks with comfortable tolerances."""

    def test_size_estimate_close(self):
        dataset = make_dataset()
        report = estimate_size(TopKServer(dataset, k=20), walks=2000, seed=3)
        assert report.relative_error(dataset.n) < 0.10

    def test_sum_estimate_close(self):
        dataset = make_dataset()
        report = estimate_sum(TopKServer(dataset, k=20), 2, walks=2000, seed=3)
        truth = float(dataset.rows[:, 2].sum())
        assert report.relative_error(truth) < 0.15

    def test_mean_estimate_close(self):
        dataset = make_dataset()
        report = estimate_mean(
            TopKServer(dataset, k=20), 2, walks=2000, seed=3
        )
        truth = float(dataset.rows[:, 2].mean())
        assert report.relative_error(truth) < 0.10

    def test_estimates_on_skewed_data(self):
        rng = np.random.default_rng(9)
        space = DataSpace.categorical([4, 4, 4])
        # Heavy skew toward value 1 everywhere.
        rows = np.minimum(
            rng.geometric(0.6, size=(600, 3)), 4
        ).astype(np.int64)
        dataset = Dataset(space, rows)
        # k must exceed the worst point multiplicity: beyond-k duplicates
        # are invisible to *any* interface client (the Problem 1
        # feasibility condition), samplers included.
        k = dataset.max_multiplicity()
        report = estimate_size(TopKServer(dataset, k=k), walks=4000, seed=7)
        assert report.relative_error(dataset.n) < 0.20

    def test_overloaded_point_biases_size_down(self):
        """With multiplicity above k the HT estimate undercounts --
        measured confirmation that the feasibility condition binds
        sampling exactly like it binds crawling."""
        space = DataSpace.categorical([2])
        dataset = Dataset(space, [(1,)] * 50 + [(2,)] * 3)
        report = estimate_size(TopKServer(dataset, k=8), walks=800, seed=1)
        assert report.estimate < 30  # the 50-copy point is unreachable

    def test_shared_cache_reduces_cost(self):
        dataset = make_dataset()
        client = CachingClient(TopKServer(dataset, k=20))
        first = estimate_size(client, walks=500, seed=3)
        second = estimate_sum(client, 2, walks=500, seed=3)
        # Identical seed re-walks the same paths: fully cache-served.
        assert second.cost == 0
        assert first.cost > 0


class TestMeanEstimator:
    def test_all_failed_walks_rejected(self):
        space = DataSpace.categorical([3])
        dataset = Dataset(space, np.empty((0, 1), dtype=np.int64))
        with pytest.raises(SchemaError):
            estimate_mean(TopKServer(dataset, k=2), 0, walks=5, seed=0)

    def test_constant_attribute_is_exact(self):
        space = DataSpace.mixed([("c", 3)], ["v"])
        # 5 copies per point; k must be at least the multiplicity.
        rows = [(c, 42) for c in (1, 2, 3) for _ in range(5)]
        dataset = Dataset(space, rows).with_bounds_from_data()
        report = estimate_mean(TopKServer(dataset, k=6), 1, walks=200, seed=0)
        assert report.estimate == pytest.approx(42.0)
