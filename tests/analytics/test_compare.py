"""Comparison-harness tests: budget sweep semantics and the headline claim."""

import numpy as np
import pytest

from repro.analytics.compare import compare_at_budgets
from repro.dataspace.dataset import Dataset
from repro.dataspace.space import DataSpace
from repro.exceptions import SchemaError


@pytest.fixture(scope="module")
def dataset():
    rng = np.random.default_rng(2)
    space = DataSpace.mixed(
        [("c1", 3), ("c2", 4)], ["v"], numeric_bounds=[(0, 255)]
    )
    n = 400
    rows = np.column_stack(
        [
            rng.integers(1, 4, n),
            rng.integers(1, 5, n),
            rng.integers(0, 256, n),
        ]
    ).astype(np.int64)
    return Dataset(space, rows)


class TestSweep:
    def test_budgets_validated(self, dataset):
        with pytest.raises(SchemaError):
            compare_at_budgets(dataset, 16, [])
        with pytest.raises(SchemaError):
            compare_at_budgets(dataset, 16, [50, 20])

    def test_report_shape(self, dataset):
        report = compare_at_budgets(dataset, 16, [10, 40], seed=1)
        assert len(report.points) == 2
        assert report.n == dataset.n
        assert report.crawl_full_cost > 0
        assert len(report.rows()) == 2

    def test_crawl_fraction_monotone_in_budget(self, dataset):
        report = compare_at_budgets(dataset, 16, [5, 20, 80, 320], seed=1)
        fractions = [p.crawl_fraction for p in report.points]
        assert fractions == sorted(fractions)

    def test_crawl_exact_once_budget_suffices(self, dataset):
        report = compare_at_budgets(dataset, 16, [10], seed=1)
        full = report.crawl_full_cost
        report = compare_at_budgets(dataset, 16, [10, full], seed=1)
        last = report.points[-1]
        assert last.crawl_complete
        assert last.crawl_fraction == pytest.approx(1.0)

    def test_sampling_errors_are_finite(self, dataset):
        report = compare_at_budgets(dataset, 16, [30, 120], seed=1)
        for point in report.points:
            assert point.sample_size_error >= 0.0
            assert point.sample_sum_error >= 0.0
            assert point.sample_walks > 0

    def test_headline_claim(self, dataset):
        """At the crawler's own finishing budget, crawling is exact while
        sampling still carries error -- the paper's Section 1.4 contrast."""
        probe = compare_at_budgets(dataset, 16, [10], seed=1)
        full = probe.crawl_full_cost
        report = compare_at_budgets(dataset, 16, [full], seed=1)
        point = report.points[0]
        assert point.crawl_complete
        assert point.crawl_fraction == pytest.approx(1.0)
        # Sampling with the same budget is approximate (almost surely
        # nonzero error; the seed pins it).
        assert point.sample_size_error > 0.0
