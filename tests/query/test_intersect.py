"""Query intersection tests: semantics, algebra, emptiness detection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataspace.space import DataSpace
from repro.exceptions import SchemaError
from repro.query.query import Query
from tests.conftest import small_spaces


@pytest.fixture
def space():
    return DataSpace.mixed([("c", 5)], ["v"])


class TestSemantics:
    def test_full_query_is_identity(self, space):
        q = Query.full(space).with_value(0, 2).with_range(1, 0, 10)
        assert q.intersect(Query.full(space)) == q
        assert Query.full(space).intersect(q) == q

    def test_equalities_agree(self, space):
        a = Query.full(space).with_value(0, 3)
        assert a.intersect(a) == a

    def test_equalities_conflict(self, space):
        a = Query.full(space).with_value(0, 3)
        b = Query.full(space).with_value(0, 4)
        assert a.intersect(b) is None

    def test_ranges_overlap(self, space):
        a = Query.full(space).with_range(1, 0, 10)
        b = Query.full(space).with_range(1, 5, 20)
        merged = a.intersect(b)
        assert merged is not None
        assert merged.extent(1) == (5, 10)

    def test_ranges_disjoint(self, space):
        a = Query.full(space).with_range(1, 0, 4)
        b = Query.full(space).with_range(1, 5, 9)
        assert a.intersect(b) is None

    def test_half_open_ranges(self, space):
        a = Query.full(space).with_range(1, None, 10)
        b = Query.full(space).with_range(1, 5, None)
        merged = a.intersect(b)
        assert merged is not None and merged.extent(1) == (5, 10)

    def test_touching_ranges_keep_single_point(self, space):
        a = Query.full(space).with_range(1, 0, 5)
        b = Query.full(space).with_range(1, 5, 9)
        merged = a.intersect(b)
        assert merged is not None and merged.extent(1) == (5, 5)

    def test_different_spaces_rejected(self, space):
        other = DataSpace.mixed([("c", 5)], ["w"])
        with pytest.raises(SchemaError):
            Query.full(space).intersect(Query.full(other))


class TestAlgebra:
    @given(space=small_spaces(), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_intersection_matches_conjunction(self, space, data):
        """p in (a ^ b) iff p in a and p in b, checked pointwise."""

        def random_query(label):
            q = Query.full(space)
            for i, attr in enumerate(space):
                if attr.is_categorical:
                    v = data.draw(
                        st.one_of(st.none(), st.integers(1, attr.domain_size)),
                        label=f"{label}-v{i}",
                    )
                    if v is not None:
                        q = q.with_value(i, v)
                else:
                    lo = data.draw(
                        st.one_of(st.none(), st.integers(-6, 6)),
                        label=f"{label}-lo{i}",
                    )
                    hi = data.draw(
                        st.one_of(st.none(), st.integers(-6, 6)),
                        label=f"{label}-hi{i}",
                    )
                    if lo is not None and hi is not None and lo > hi:
                        lo, hi = hi, lo
                    if lo is not None or hi is not None:
                        q = q.with_range(i, lo, hi)
            return q

        a, b = random_query("a"), random_query("b")
        merged = a.intersect(b)
        # Sample the lattice of small points.
        points = []
        for i, attr in enumerate(space):
            if attr.is_categorical:
                points.append(range(1, attr.domain_size + 1))
            else:
                points.append(range(-7, 8))
        import itertools

        some_points = itertools.islice(itertools.product(*points), 400)
        for p in some_points:
            both = a.matches(p) and b.matches(p)
            if merged is None:
                assert not both
            else:
                assert merged.matches(p) == both

    @given(space=small_spaces())
    @settings(max_examples=20, deadline=None)
    def test_commutative_on_full_and_self(self, space):
        q = Query.full(space)
        assert q.intersect(q) == q
