"""Tests for the 2-way and 3-way splits (paper Section 2.1, Figure 2).

The key invariant: a split's products partition the parent's extent, so
every integer value lands in exactly one product.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dataspace.space import DataSpace
from repro.exceptions import SchemaError
from repro.query.query import Query


@pytest.fixture
def space():
    return DataSpace.numeric(2)


def q_with_extent(space, lo, hi):
    return Query.full(space).with_range(0, lo, hi)


class TestSplit2Way:
    def test_extents(self, space):
        left, right = q_with_extent(space, 0, 10).split_2way(0, 4)
        assert left.extent(0) == (0, 3)
        assert right.extent(0) == (4, 10)

    def test_preserves_other_attributes(self, space):
        base = q_with_extent(space, 0, 10).with_range(1, -5, 5)
        left, right = base.split_2way(0, 4)
        assert left.extent(1) == (-5, 5)
        assert right.extent(1) == (-5, 5)

    def test_unbounded_parent(self, space):
        left, right = Query.full(space).split_2way(0, 7)
        assert left.extent(0) == (None, 6)
        assert right.extent(0) == (7, None)

    def test_rejects_split_at_lower_end(self, space):
        with pytest.raises(SchemaError):
            q_with_extent(space, 3, 9).split_2way(0, 3)

    def test_rejects_split_outside(self, space):
        with pytest.raises(SchemaError):
            q_with_extent(space, 3, 9).split_2way(0, 10)

    @given(
        lo=st.integers(-20, 20),
        width=st.integers(1, 30),
        data=st.data(),
    )
    def test_partition_property(self, lo, width, data):
        space = DataSpace.numeric(1)
        hi = lo + width
        x = data.draw(st.integers(lo + 1, hi))
        left, right = Query.full(space).with_range(0, lo, hi).split_2way(0, x)
        for v in range(lo, hi + 1):
            assert left.matches((v,)) + right.matches((v,)) == 1


class TestSplit3Way:
    def test_interior(self, space):
        left, mid, right = q_with_extent(space, 0, 10).split_3way(0, 4)
        assert left.extent(0) == (0, 3)
        assert mid.extent(0) == (4, 4)
        assert right.extent(0) == (5, 10)
        assert mid.is_exhausted(0)

    def test_discards_left_at_lower_end(self, space):
        left, mid, right = q_with_extent(space, 3, 9).split_3way(0, 3)
        assert left is None
        assert mid.extent(0) == (3, 3)
        assert right.extent(0) == (4, 9)

    def test_discards_right_at_upper_end(self, space):
        left, mid, right = q_with_extent(space, 3, 9).split_3way(0, 9)
        assert right is None
        assert left.extent(0) == (3, 8)

    def test_unbounded_keeps_both(self, space):
        left, mid, right = Query.full(space).split_3way(0, 0)
        assert left is not None and right is not None
        assert left.extent(0) == (None, -1)
        assert right.extent(0) == (1, None)

    def test_rejects_outside(self, space):
        with pytest.raises(SchemaError):
            q_with_extent(space, 3, 9).split_3way(0, 2)

    @given(
        lo=st.integers(-20, 20),
        width=st.integers(0, 30),
        data=st.data(),
    )
    def test_partition_property(self, lo, width, data):
        space = DataSpace.numeric(1)
        hi = lo + width
        x = data.draw(st.integers(lo, hi))
        parts = Query.full(space).with_range(0, lo, hi).split_3way(0, x)
        for v in range(lo, hi + 1):
            hits = sum(1 for p in parts if p is not None and p.matches((v,)))
            assert hits == 1
