"""Unit tests for Query: construction, refinement, matching, slices."""

import pytest

from repro.dataspace.space import DataSpace
from repro.exceptions import SchemaError
from repro.query.query import Query, full_query, point_query, slice_query


class TestConstruction:
    def test_full_query_matches_everything(self, mixed_space):
        q = Query.full(mixed_space)
        assert q.matches((1, 1, -99, 2050))
        assert q.matches((3, 4, 0, 0))
        assert str(q) == "Query(*)"

    def test_kind_mismatch_rejected(self, mixed_space):
        q = Query.full(mixed_space)
        with pytest.raises(SchemaError):
            q.with_range(0, 1, 2)  # attribute 0 is categorical
        with pytest.raises(SchemaError):
            q.with_value(2, 1)  # attribute 2 is numeric

    def test_out_of_domain_value_rejected(self, mixed_space):
        with pytest.raises(SchemaError):
            Query.full(mixed_space).with_value(0, 4)  # domain size 3

    def test_wrong_arity_rejected(self, mixed_space):
        with pytest.raises(SchemaError):
            Query(Query.full(mixed_space).predicates[:-1], mixed_space)


class TestRefinement:
    def test_with_value_and_wildcard(self, mixed_space):
        q = Query.full(mixed_space).with_value(0, 2)
        assert q.matches((2, 1, 0, 0))
        assert not q.matches((1, 1, 0, 0))
        assert q.with_value(0, None).matches((1, 1, 0, 0))

    def test_with_range(self, mixed_space):
        q = Query.full(mixed_space).with_range(2, 0, 10)
        assert q.matches((1, 1, 10, 5))
        assert not q.matches((1, 1, 11, 5))
        assert q.extent(2) == (0, 10)

    def test_extent_on_categorical_rejected(self, mixed_space):
        with pytest.raises(SchemaError):
            Query.full(mixed_space).extent(0)


class TestIdentity:
    def test_equality_is_structural(self, mixed_space):
        a = Query.full(mixed_space).with_value(0, 1).with_range(2, 0, 5)
        b = Query.full(mixed_space).with_range(2, 0, 5).with_value(0, 1)
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_inequality(self, mixed_space):
        a = Query.full(mixed_space).with_value(0, 1)
        b = Query.full(mixed_space).with_value(0, 2)
        assert a != b


class TestStateChecks:
    def test_is_exhausted(self, mixed_space):
        q = Query.full(mixed_space)
        assert not q.is_exhausted(0)
        assert q.with_value(0, 1).is_exhausted(0)
        assert not q.is_exhausted(2)
        assert q.with_range(2, 7, 7).is_exhausted(2)

    def test_is_point(self, mixed_space):
        q = (
            Query.full(mixed_space)
            .with_value(0, 1)
            .with_value(1, 2)
            .with_range(2, 5, 5)
            .with_range(3, 9, 9)
        )
        assert q.is_point()
        assert not q.with_range(3, 0, 9).is_point()

    def test_fixed_level(self, mixed_space):
        q = Query.full(mixed_space)
        assert q.fixed_level() == 0
        assert q.with_value(0, 1).fixed_level() == 1
        assert q.with_value(0, 1).with_value(1, 2).fixed_level() == 2
        # A gap in the prefix stops the level count.
        assert q.with_value(1, 2).fixed_level() == 0


class TestSliceQueries:
    def test_slice_query_shape(self, mixed_space):
        q = slice_query(mixed_space, 1, 3)
        assert q.is_slice() == (1, 3)
        assert q.matches((1, 3, 0, 0))
        assert not q.matches((1, 2, 0, 0))

    def test_slice_on_numeric_rejected(self, mixed_space):
        with pytest.raises(SchemaError):
            slice_query(mixed_space, 2, 5)

    def test_full_query_is_not_slice(self, mixed_space):
        assert full_query(mixed_space).is_slice() is None

    def test_two_pins_is_not_slice(self, mixed_space):
        q = Query.full(mixed_space).with_value(0, 1).with_value(1, 1)
        assert q.is_slice() is None

    def test_numeric_constraint_disqualifies_slice(self, mixed_space):
        q = slice_query(mixed_space, 0, 1).with_range(2, 0, 5)
        assert q.is_slice() is None


class TestPointQuery:
    def test_point_query(self, mixed_space):
        q = point_query(mixed_space, (2, 3, -5, 2020))
        assert q.is_point()
        assert q.matches((2, 3, -5, 2020))
        assert not q.matches((2, 3, -5, 2021))

    def test_point_query_validates(self, mixed_space):
        with pytest.raises(SchemaError):
            point_query(mixed_space, (0, 3, -5, 2020))


class TestStr:
    def test_str_shows_constraints(self, mixed_space):
        q = Query.full(mixed_space).with_value(0, 2).with_range(2, 0, 10)
        text = str(q)
        assert "make=2" in text
        assert "price in [0, 10]" in text
        assert "body" not in text


class TestNumericSpaceQueries:
    def test_unbounded_extent(self):
        space = DataSpace.numeric(1)
        q = Query.full(space)
        assert q.extent(0) == (None, None)
        assert not q.is_exhausted(0)
