"""Unit tests for range and equality predicates."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import SchemaError
from repro.query.predicates import EqualityPredicate, RangePredicate


class TestRangePredicate:
    def test_unconstrained(self):
        pred = RangePredicate()
        assert pred.is_unconstrained
        assert not pred.is_point
        assert pred.width is None
        assert pred.matches(-(10**12)) and pred.matches(10**12)

    def test_point(self):
        pred = RangePredicate(5, 5)
        assert pred.is_point
        assert pred.width == 1
        assert pred.matches(5)
        assert not pred.matches(4)

    def test_half_open(self):
        left = RangePredicate(None, 9)
        right = RangePredicate(10, None)
        assert left.matches(9) and not left.matches(10)
        assert right.matches(10) and not right.matches(9)
        assert left.width is None

    def test_empty_range_rejected(self):
        with pytest.raises(SchemaError):
            RangePredicate(3, 2)

    def test_clamp(self):
        pred = RangePredicate(None, None).clamp(0, 10)
        assert (pred.lo, pred.hi) == (0, 10)
        tighter = RangePredicate(2, 20).clamp(0, 10)
        assert (tighter.lo, tighter.hi) == (2, 10)
        keep = RangePredicate(2, 8).clamp(None, None)
        assert (keep.lo, keep.hi) == (2, 8)

    @given(
        lo=st.integers(-50, 50),
        width=st.integers(0, 20),
        v=st.integers(-100, 100),
    )
    def test_matches_consistent_with_interval(self, lo, width, v):
        pred = RangePredicate(lo, lo + width)
        assert pred.matches(v) == (lo <= v <= lo + width)

    def test_str(self):
        assert str(RangePredicate(None, 5)) == "[-inf, 5]"
        assert str(RangePredicate(1, None)) == "[1, +inf]"


class TestEqualityPredicate:
    def test_wildcard(self):
        pred = EqualityPredicate(None)
        assert pred.is_wildcard
        assert not pred.is_point
        assert pred.matches(1) and pred.matches(99)

    def test_constant(self):
        pred = EqualityPredicate(3)
        assert pred.is_point
        assert pred.matches(3)
        assert not pred.matches(2)

    def test_str(self):
        assert str(EqualityPredicate(None)) == "*"
        assert str(EqualityPredicate(7)) == "=7"

    def test_hashable_value_objects(self):
        assert EqualityPredicate(3) == EqualityPredicate(3)
        assert len({EqualityPredicate(3), EqualityPredicate(3)}) == 1
        assert RangePredicate(1, 2) == RangePredicate(1, 2)
        assert len({RangePredicate(1, 2), RangePredicate(1, 2)}) == 1
