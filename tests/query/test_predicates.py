"""Unit tests for range and equality predicates."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import SchemaError
from repro.query.predicates import EqualityPredicate, RangePredicate


class TestRangePredicate:
    def test_unconstrained(self):
        pred = RangePredicate()
        assert pred.is_unconstrained
        assert not pred.is_point
        assert pred.width is None
        assert pred.matches(-(10**12)) and pred.matches(10**12)

    def test_point(self):
        pred = RangePredicate(5, 5)
        assert pred.is_point
        assert pred.width == 1
        assert pred.matches(5)
        assert not pred.matches(4)

    def test_half_open(self):
        left = RangePredicate(None, 9)
        right = RangePredicate(10, None)
        assert left.matches(9) and not left.matches(10)
        assert right.matches(10) and not right.matches(9)
        assert left.width is None

    def test_empty_range_rejected(self):
        with pytest.raises(SchemaError):
            RangePredicate(3, 2)

    def test_clamp(self):
        pred = RangePredicate(None, None).clamp(0, 10)
        assert (pred.lo, pred.hi) == (0, 10)
        tighter = RangePredicate(2, 20).clamp(0, 10)
        assert (tighter.lo, tighter.hi) == (2, 10)
        keep = RangePredicate(2, 8).clamp(None, None)
        assert (keep.lo, keep.hi) == (2, 8)

    @given(
        lo=st.integers(-50, 50),
        width=st.integers(0, 20),
        v=st.integers(-100, 100),
    )
    def test_matches_consistent_with_interval(self, lo, width, v):
        pred = RangePredicate(lo, lo + width)
        assert pred.matches(v) == (lo <= v <= lo + width)

    def test_str(self):
        assert str(RangePredicate(None, 5)) == "[-inf, 5]"
        assert str(RangePredicate(1, None)) == "[1, +inf]"


class TestEqualityPredicate:
    def test_wildcard(self):
        pred = EqualityPredicate(None)
        assert pred.is_wildcard
        assert not pred.is_point
        assert pred.matches(1) and pred.matches(99)

    def test_constant(self):
        pred = EqualityPredicate(3)
        assert pred.is_point
        assert pred.matches(3)
        assert not pred.matches(2)

    def test_str(self):
        assert str(EqualityPredicate(None)) == "*"
        assert str(EqualityPredicate(7)) == "=7"

    def test_hashable_value_objects(self):
        assert EqualityPredicate(3) == EqualityPredicate(3)
        assert len({EqualityPredicate(3), EqualityPredicate(3)}) == 1
        assert RangePredicate(1, 2) == RangePredicate(1, 2)
        assert len({RangePredicate(1, 2), RangePredicate(1, 2)}) == 1


def interpreted(predicates, row):
    return all(pred.matches(v) for pred, v in zip(predicates, row))


predicate_strategy = st.one_of(
    st.builds(
        lambda v: EqualityPredicate(v),
        st.one_of(st.none(), st.integers(-20, 20)),
    ),
    st.builds(
        lambda lo, width: RangePredicate(
            lo, None if width is None else (lo or 0) + width
        ),
        st.one_of(st.none(), st.integers(-20, 20)),
        st.one_of(st.none(), st.integers(0, 15)),
    ),
)


class TestCompiledPredicates:
    """The codegen path answers exactly like predicate-method dispatch."""

    def test_unconstrained_compiles_to_none(self):
        from repro.query.predicates import compile_matcher, compile_predicate

        assert compile_predicate(RangePredicate()) is None
        assert compile_predicate(EqualityPredicate(None)) is None
        preds = [RangePredicate(), EqualityPredicate(None)]
        assert compile_matcher(preds) is None

    def test_point_and_half_open_shapes(self):
        from repro.query.predicates import compile_predicate

        assert compile_predicate(RangePredicate(2, 2))(2)
        assert not compile_predicate(RangePredicate(2, 2))(3)
        assert compile_predicate(RangePredicate(None, 9))(9)
        assert not compile_predicate(RangePredicate(10, None))(9)
        assert compile_predicate(EqualityPredicate(4))(4)

    def test_skip_drops_one_attribute(self):
        from repro.query.predicates import compile_matcher

        preds = [EqualityPredicate(1), EqualityPredicate(2)]
        match = compile_matcher(preds, skip=0)
        assert match((99, 2)) and not match((1, 3))
        # Skipping the only constrained attribute: unconstrained.
        assert compile_matcher([EqualityPredicate(1)], skip=0) is None

    @given(pred=predicate_strategy, v=st.integers(-60, 60))
    def test_compile_predicate_agrees_with_matches(self, pred, v):
        from repro.query.predicates import compile_predicate

        compiled = compile_predicate(pred)
        if compiled is None:
            assert pred.matches(v)
        else:
            assert compiled(v) == pred.matches(v)

    @given(
        preds=st.lists(predicate_strategy, min_size=1, max_size=4),
        data=st.data(),
    )
    def test_compile_matcher_agrees_with_interpreted(self, preds, data):
        from repro.query.predicates import compile_matcher

        row = tuple(
            data.draw(st.integers(-60, 60)) for _ in range(len(preds))
        )
        match = compile_matcher(preds)
        if match is None:
            assert interpreted(preds, row)
        else:
            assert match(row) == interpreted(preds, row)

    @given(
        preds=st.lists(predicate_strategy, min_size=1, max_size=4),
        data=st.data(),
    )
    def test_skip_equals_interpreting_without_that_attribute(
        self, preds, data
    ):
        from repro.query.predicates import compile_matcher

        skip = data.draw(st.integers(0, len(preds) - 1))
        row = tuple(
            data.draw(st.integers(-60, 60)) for _ in range(len(preds))
        )
        expected = all(
            pred.matches(v)
            for i, (pred, v) in enumerate(zip(preds, row))
            if i != skip
        )
        match = compile_matcher(preds, skip=skip)
        if match is None:
            assert expected
        else:
            assert match(row) == expected
