"""Unit tests for the attribute model."""

import pytest

from repro.dataspace.attribute import (
    Attribute,
    AttributeKind,
    categorical,
    numeric,
)
from repro.exceptions import SchemaError


class TestConstruction:
    def test_numeric_defaults(self):
        attr = numeric("price")
        assert attr.is_numeric
        assert not attr.is_categorical
        assert attr.domain_size is None
        assert not attr.is_bounded

    def test_numeric_with_bounds(self):
        attr = numeric("price", 0, 100)
        assert attr.is_bounded
        assert (attr.lo, attr.hi) == (0, 100)

    def test_categorical(self):
        attr = categorical("make", 85)
        assert attr.is_categorical
        assert attr.domain_size == 85
        assert attr.is_bounded

    def test_categorical_requires_domain_size(self):
        with pytest.raises(SchemaError):
            Attribute("make", AttributeKind.CATEGORICAL)

    def test_categorical_rejects_nonpositive_domain(self):
        with pytest.raises(SchemaError):
            categorical("make", 0)

    def test_categorical_rejects_bounds(self):
        with pytest.raises(SchemaError):
            Attribute("make", AttributeKind.CATEGORICAL, 3, lo=1, hi=3)

    def test_numeric_rejects_domain_size(self):
        with pytest.raises(SchemaError):
            Attribute("price", AttributeKind.NUMERIC, 10)

    def test_numeric_rejects_inverted_bounds(self):
        with pytest.raises(SchemaError):
            numeric("price", 10, 5)


class TestContains:
    def test_numeric_contains_everything(self):
        attr = numeric("price", 0, 10)
        # Bounds are advisory; numeric domains are all integers.
        assert attr.contains(-1000)
        assert attr.contains(10**9)

    def test_categorical_contains_domain_only(self):
        attr = categorical("make", 3)
        assert attr.contains(1)
        assert attr.contains(3)
        assert not attr.contains(0)
        assert not attr.contains(4)


class TestDomainValues:
    def test_categorical_domain_values(self):
        assert list(categorical("x", 3).domain_values()) == [1, 2, 3]

    def test_bounded_numeric_domain_values(self):
        assert list(numeric("x", 5, 7).domain_values()) == [5, 6, 7]

    def test_unbounded_numeric_raises(self):
        with pytest.raises(SchemaError):
            numeric("x").domain_values()


class TestWithBounds:
    def test_attaches_bounds(self):
        attr = numeric("x").with_bounds(1, 9)
        assert attr.is_bounded
        assert (attr.lo, attr.hi) == (1, 9)

    def test_rejected_for_categorical(self):
        with pytest.raises(SchemaError):
            categorical("x", 3).with_bounds(1, 3)


class TestDunder:
    def test_equality_and_hash(self):
        assert numeric("x", 0, 5) == numeric("x", 0, 5)
        assert numeric("x") != numeric("y")
        assert hash(categorical("x", 3)) == hash(categorical("x", 3))

    def test_str_forms(self):
        assert str(categorical("make", 7)) == "make:cat[7]"
        assert str(numeric("p", 0, 9)) == "p:num[0,9]"
        assert str(numeric("p")) == "p:num"
