"""Unit tests for the Dataset container: bag semantics and transforms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataspace.dataset import Dataset
from repro.dataspace.space import DataSpace
from repro.exceptions import SchemaError
from tests.conftest import make_dataset


@pytest.fixture
def small(categorical_space_2d):
    return make_dataset(categorical_space_2d, [[1, 1], [1, 2], [1, 2], [4, 4]])


class TestConstruction:
    def test_basic_properties(self, small):
        assert small.n == 4
        assert small.dimensionality == 2
        assert len(small) == 4
        assert small.row(0) == (1, 1)

    def test_empty_dataset(self, categorical_space_2d):
        ds = Dataset(categorical_space_2d, [])
        assert ds.n == 0
        assert ds.max_multiplicity() == 0
        assert ds.distinct_counts() == (0, 0)

    def test_rows_are_read_only(self, small):
        with pytest.raises(ValueError):
            small.rows[0, 0] = 9

    def test_validates_categorical_domain(self, categorical_space_2d):
        with pytest.raises(SchemaError):
            make_dataset(categorical_space_2d, [[0, 1]])
        with pytest.raises(SchemaError):
            make_dataset(categorical_space_2d, [[1, 5]])

    def test_rejects_wrong_shape(self, categorical_space_2d):
        with pytest.raises(SchemaError):
            make_dataset(categorical_space_2d, [[1, 1, 1]])


class TestBagSemantics:
    def test_multiset_counts_duplicates(self, small):
        bag = small.multiset()
        assert bag[(1, 2)] == 2
        assert bag[(1, 1)] == 1
        assert sum(bag.values()) == 4

    def test_max_multiplicity(self, small):
        assert small.max_multiplicity() == 2
        assert small.min_feasible_k() == 2

    def test_bag_equality_ignores_order(self, categorical_space_2d):
        a = make_dataset(categorical_space_2d, [[1, 1], [2, 2], [2, 2]])
        b = make_dataset(categorical_space_2d, [[2, 2], [1, 1], [2, 2]])
        assert a == b

    def test_bag_inequality_on_multiplicity(self, categorical_space_2d):
        a = make_dataset(categorical_space_2d, [[1, 1], [2, 2]])
        b = make_dataset(categorical_space_2d, [[1, 1], [2, 2], [2, 2]])
        assert a != b

    def test_concat(self, categorical_space_2d):
        a = make_dataset(categorical_space_2d, [[1, 1]])
        b = make_dataset(categorical_space_2d, [[2, 2]])
        both = a.concat(b)
        assert both.n == 2
        with pytest.raises(SchemaError):
            a.concat(make_dataset(DataSpace.categorical([4]), [[1]]))


class TestStatistics:
    def test_distinct_counts(self, small):
        assert small.distinct_counts() == (2, 3)

    def test_top_distinct_projection_selects_and_preserves_order(self):
        space = DataSpace.numeric(3, names=["a", "b", "c"])
        ds = make_dataset(space, [[1, 1, 1], [1, 2, 2], [1, 3, 2]])
        # distinct counts: a=1, b=3, c=2 -> top-2 = {b, c} in original order
        sub = ds.top_distinct_projection(2)
        assert sub.space.names == ("b", "c")

    def test_top_distinct_projection_validates(self, small):
        with pytest.raises(SchemaError):
            small.top_distinct_projection(0)
        with pytest.raises(SchemaError):
            small.top_distinct_projection(3)


class TestTransforms:
    def test_project(self, small):
        sub = small.project([1])
        assert sub.dimensionality == 1
        assert sub.n == small.n
        assert sub.row(1) == (2,)

    def test_sample_fraction_bounds(self, small):
        assert small.sample_fraction(1.0) is small
        empty = small.sample_fraction(0.0, seed=1)
        assert empty.n == 0
        with pytest.raises(SchemaError):
            small.sample_fraction(1.5)

    @given(fraction=st.floats(0.1, 0.9), seed=st.integers(0, 5))
    @settings(max_examples=20, deadline=None)
    def test_sample_fraction_is_subbag(self, fraction, seed):
        space = DataSpace.categorical([3])
        ds = Dataset(space, [[v % 3 + 1] for v in range(60)])
        sample = ds.sample_fraction(fraction, seed=seed)
        assert sample.n <= ds.n
        assert not sample.multiset() - ds.multiset()

    def test_sample_fraction_deterministic(self, small):
        a = small.sample_fraction(0.5, seed=3)
        b = small.sample_fraction(0.5, seed=3)
        assert a == b

    def test_with_bounds_from_data(self):
        space = DataSpace.mixed([("m", 2)], ["p"])
        ds = make_dataset(space, [[1, 10], [2, -5], [1, 3]])
        bounded = ds.with_bounds_from_data()
        assert bounded.space[1].lo == -5
        assert bounded.space[1].hi == 10
        # Categorical attribute untouched.
        assert bounded.space[0].domain_size == 2

    def test_iter_rows_returns_python_tuples(self, small):
        rows = list(small.iter_rows())
        assert rows[0] == (1, 1)
        assert all(isinstance(v, int) for row in rows for v in row)
        assert not isinstance(rows[0][0], np.integer)
