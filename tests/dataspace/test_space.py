"""Unit tests for DataSpace: kinds, validation, projection."""

import pytest

from repro.dataspace.attribute import categorical, numeric
from repro.dataspace.space import DataSpace, SpaceKind
from repro.exceptions import SchemaError


class TestConstruction:
    def test_numeric_factory(self):
        space = DataSpace.numeric(3)
        assert space.kind is SpaceKind.NUMERIC
        assert space.dimensionality == 3
        assert space.cat == 0
        assert space.num == 3
        assert space.names == ("A1", "A2", "A3")

    def test_numeric_with_bounds_and_names(self):
        space = DataSpace.numeric(2, bounds=[(0, 9), (1, 5)], names=["x", "y"])
        assert space[0].lo == 0 and space[1].hi == 5
        assert space.names == ("x", "y")

    def test_categorical_factory(self):
        space = DataSpace.categorical([2, 5, 7])
        assert space.kind is SpaceKind.CATEGORICAL
        assert space.cat == 3
        assert space.categorical_domain_sizes == (2, 5, 7)

    def test_mixed_factory(self):
        space = DataSpace.mixed([("m", 3)], ["p", "q"])
        assert space.kind is SpaceKind.MIXED
        assert space.cat == 1
        assert space.num == 2

    def test_empty_space_rejected(self):
        with pytest.raises(SchemaError):
            DataSpace([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            DataSpace([numeric("x"), numeric("x")])

    def test_categorical_must_precede_numeric(self):
        with pytest.raises(SchemaError):
            DataSpace([numeric("p"), categorical("m", 3)])

    def test_numeric_factory_validates(self):
        with pytest.raises(SchemaError):
            DataSpace.numeric(0)
        with pytest.raises(SchemaError):
            DataSpace.numeric(2, names=["only-one"])
        with pytest.raises(SchemaError):
            DataSpace.categorical([2, 3], names=["a"])


class TestIntrospection:
    def test_iteration_and_indexing(self):
        space = DataSpace.categorical([2, 3])
        assert len(space) == 2
        assert [a.domain_size for a in space] == [2, 3]
        assert space[1].domain_size == 3

    def test_index_of(self):
        space = DataSpace.mixed([("m", 3)], ["p"])
        assert space.index_of("m") == 0
        assert space.index_of("p") == 1
        with pytest.raises(SchemaError):
            space.index_of("nope")

    def test_equality_and_hash(self):
        a = DataSpace.categorical([2, 3])
        b = DataSpace.categorical([2, 3])
        assert a == b
        assert hash(a) == hash(b)
        assert a != DataSpace.categorical([3, 2])


class TestValidatePoint:
    def test_accepts_valid_point(self, mixed_space):
        assert mixed_space.validate_point([1, 4, -10, 2020]) == (
            1,
            4,
            -10,
            2020,
        )

    def test_rejects_wrong_arity(self, mixed_space):
        with pytest.raises(SchemaError):
            mixed_space.validate_point([1, 2])

    def test_rejects_out_of_domain(self, mixed_space):
        with pytest.raises(SchemaError):
            mixed_space.validate_point([0, 1, 5, 5])  # make=0 invalid


class TestProjection:
    def test_keeps_relative_order(self):
        space = DataSpace.mixed([("a", 2), ("b", 3)], ["x", "y"])
        sub = space.project([0, 2])
        assert sub.names == ("a", "x")
        assert sub.kind is SpaceKind.MIXED

    def test_rejects_unordered_indices(self):
        space = DataSpace.numeric(3)
        with pytest.raises(SchemaError):
            space.project([2, 0])

    def test_rejects_empty(self):
        with pytest.raises(SchemaError):
            DataSpace.numeric(2).project([])
