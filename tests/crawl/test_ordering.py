"""Tests for attribute-ordering strategies."""

import pytest

from repro.crawl.hybrid import Hybrid
from repro.crawl.ordering import (
    order_by_distinct_count,
    order_by_domain_size,
    reorder_dataset,
)
from repro.crawl.verify import assert_complete
from repro.datasets.synthetic import random_dataset
from repro.dataspace.space import DataSpace
from repro.exceptions import SchemaError
from repro.server.server import TopKServer
from tests.conftest import make_dataset


@pytest.fixture
def dataset():
    space = DataSpace.mixed([("big", 9), ("small", 2)], ["x"])
    return random_dataset(space, 120, seed=3, numeric_range=(0, 30))


class TestReorder:
    def test_columns_move_with_attributes(self, dataset):
        permuted = reorder_dataset(dataset, [1, 0, 2])
        assert permuted.space.names == ("small", "big", "x")
        assert permuted.rows[:, 0].tolist() == dataset.rows[:, 1].tolist()

    def test_rejects_non_permutation(self, dataset):
        with pytest.raises(SchemaError):
            reorder_dataset(dataset, [0, 0, 2])

    def test_rejects_cat_after_num(self, dataset):
        with pytest.raises(SchemaError):
            reorder_dataset(dataset, [0, 2, 1])

    def test_bag_is_preserved(self, dataset):
        permuted = reorder_dataset(dataset, [1, 0, 2])
        back = reorder_dataset(permuted, [1, 0, 2])
        assert back == dataset


class TestStrategies:
    def test_order_by_domain_size(self, dataset):
        asc = order_by_domain_size(dataset, ascending=True)
        assert asc.space.names[0] == "small"
        desc = order_by_domain_size(dataset, ascending=False)
        assert desc.space.names[0] == "big"
        # Numeric block stays behind the categorical block.
        assert asc.space.names[-1] == "x"

    def test_order_by_distinct_count(self):
        space = DataSpace.categorical([5, 5], names=["many", "few"])
        rows = [[1 + i % 5, 1 + i % 2] for i in range(20)]
        ds = make_dataset(space, rows)
        asc = order_by_distinct_count(ds, ascending=True)
        assert asc.space.names == ("few", "many")

    def test_ordering_does_not_change_the_crawled_bag(self, dataset):
        for variant in (
            order_by_domain_size(dataset, ascending=True),
            order_by_domain_size(dataset, ascending=False),
        ):
            result = Hybrid(TopKServer(variant, k=8)).crawl()
            assert_complete(result, variant)
            assert result.tuples_extracted == dataset.n
