"""Tests for rank-shrink, including the paper's exact worked examples."""

import pytest

from repro.crawl.rank_shrink import RankShrink
from repro.crawl.verify import assert_complete
from repro.datasets.paper_examples import (
    figure3_dataset,
    figure3_server,
    figure4_dataset,
    figure4_server,
)
from repro.dataspace.dataset import Dataset
from repro.dataspace.space import DataSpace
from repro.exceptions import SchemaError
from repro.query.query import Query
from repro.server.server import TopKServer
from repro.theory.bounds import rank_shrink_upper_bound
from tests.conftest import make_dataset


class TestFigure3Example:
    """Section 2.2's 1-d walkthrough, reproduced query by query."""

    def test_exact_cost(self):
        crawler = RankShrink(figure3_server())
        result = crawler.crawl()
        assert result.cost == 6  # q1 .. q6 of Figure 3b

    def test_exact_query_set(self):
        space = figure3_dataset().space
        crawler = RankShrink(figure3_server())
        crawler.crawl()
        full = Query.full(space)
        expected = {
            full,  # q1
            full.with_range(0, None, 54),  # q2
            full.with_range(0, 55, 55),  # q3
            full.with_range(0, 56, None),  # q4
            full.with_range(0, None, 19),  # q5
            full.with_range(0, 20, 54),  # q6
        }
        assert set(crawler.client.history) == expected

    def test_first_split_is_3way_at_55(self):
        crawler = RankShrink(figure3_server())
        crawler.crawl()
        history = crawler.client.history
        assert history[0] == Query.full(figure3_dataset().space)
        # The second processed query is the middle band [55, 55].
        assert history[1].extent(0) == (55, 55)

    def test_completeness(self):
        result = RankShrink(figure3_server()).crawl()
        assert_complete(result, figure3_dataset())
        # The triple at 55 is extracted with multiplicity.
        assert sorted(result.rows).count((55,)) == 3


class TestFigure4Example:
    """Section 2.3's 2-d walkthrough."""

    def test_exact_cost(self):
        result = RankShrink(figure4_server()).crawl()
        # q1 .. q6 of the 2-d recursion plus the two extra queries of the
        # 1-d sub-problem on the line A1 = 80 (its root q3 is shared).
        assert result.cost == 8

    def test_subproblem_costs_three_queries(self):
        crawler = RankShrink(figure4_server())
        crawler.crawl()
        on_line = [
            q for q in crawler.client.history if q.extent(0) == (80, 80)
        ]
        assert len(on_line) == 3  # the paper: "requires 3 queries"

    def test_first_split_on_a1_at_80(self):
        crawler = RankShrink(figure4_server())
        crawler.crawl()
        mid = crawler.client.history[1]
        assert mid.extent(0) == (80, 80)
        assert mid.extent(1) == (None, None)

    def test_completeness(self):
        result = RankShrink(figure4_server()).crawl()
        assert_complete(result, figure4_dataset())


class TestGeneral:
    def test_rejects_non_numeric_space(self):
        dataset = make_dataset(DataSpace.categorical([3]), [[1]])
        with pytest.raises(SchemaError):
            RankShrink(TopKServer(dataset, k=2))

    def test_rejects_bad_divisor(self):
        dataset = make_dataset(DataSpace.numeric(1), [[1]])
        crawler = RankShrink(TopKServer(dataset, k=2), threshold_divisor=1)
        with pytest.raises(SchemaError):
            crawler.crawl()

    def test_empty_dataset_costs_one_query(self):
        dataset = Dataset(DataSpace.numeric(2), [])
        result = RankShrink(TopKServer(dataset, k=4)).crawl()
        assert result.cost == 1
        assert result.rows == []

    def test_tiny_k_still_correct(self):
        """k < 4 forces every split to be 3-way; must stay correct."""
        dataset = make_dataset(DataSpace.numeric(1), [[v] for v in range(10)])
        for k in (1, 2, 3):
            server = TopKServer(dataset, k=k)
            result = RankShrink(server).crawl()
            assert_complete(result, dataset)

    def test_negative_coordinates(self):
        dataset = make_dataset(
            DataSpace.numeric(2),
            [[-5, -7], [-5, 3], [0, 0], [8, -2], [-5, -7]],
        )
        result = RankShrink(TopKServer(dataset, k=2)).crawl()
        assert_complete(result, dataset)

    def test_heavy_duplicates_at_many_points(self):
        rows = [[v // 7] for v in range(70)]  # 7 copies of each of 0..9
        dataset = make_dataset(DataSpace.numeric(1), rows)
        result = RankShrink(TopKServer(dataset, k=8)).crawl()
        assert_complete(result, dataset)

    def test_cost_within_theorem1_bound(self):
        rows = [[i * 3 % 101, i * 7 % 97] for i in range(400)]
        dataset = make_dataset(DataSpace.numeric(2), rows)
        for k in (4, 16, 64):
            bound = rank_shrink_upper_bound(dataset.n, k, 2)
            crawler = RankShrink(TopKServer(dataset, k=k), max_queries=bound)
            result = crawler.crawl()  # max_queries enforces the bound
            assert result.cost <= bound
            assert_complete(result, dataset)

    def test_single_use(self):
        from repro.exceptions import AlgorithmInvariantError

        crawler = RankShrink(figure3_server())
        crawler.crawl()
        with pytest.raises(AlgorithmInvariantError):
            crawler.crawl()
