"""Partitioned-crawl tests: plans, views, merged exactness."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.crawl.partition import (
    SubspaceView,
    crawl_partitioned,
    partition_space,
)
from repro.crawl.rank_shrink import RankShrink
from repro.dataspace.dataset import Dataset
from repro.dataspace.space import DataSpace
from repro.exceptions import (
    QueryBudgetExhausted,
    SchemaError,
    UnboundedDomainError,
)
from repro.query.query import Query
from repro.server.limits import QueryBudget
from repro.server.server import TopKServer
from tests.conftest import small_instances


def mixed_dataset(seed=3, n=400):
    rng = np.random.default_rng(seed)
    space = DataSpace.mixed(
        [("make", 7), ("body", 3)],
        ["price"],
        numeric_bounds=[(0, 999)],
    )
    rows = np.column_stack(
        [
            rng.integers(1, 8, n),
            rng.integers(1, 4, n),
            rng.integers(0, 1000, n),
        ]
    ).astype(np.int64)
    return Dataset(space, rows)


class TestPartitionPlan:
    def test_categorical_round_robin(self):
        space = DataSpace.categorical([7, 3])
        plan = partition_space(space, 3, attribute=0)
        assert plan.sessions == 3
        assert [len(b) for b in plan.bundles] == [3, 2, 2]
        assert len(plan.regions) == 7

    def test_default_picks_largest_categorical(self):
        space = DataSpace.mixed([("a", 3), ("b", 9)], ["v"])
        plan = partition_space(space, 2)
        assert plan.attribute == 1

    def test_default_numeric_fallback(self):
        space = DataSpace.numeric(2, bounds=[(0, 99), (0, 9)])
        plan = partition_space(space, 4)
        assert plan.attribute == 0

    def test_default_skips_huge_domains_for_bounded_numeric(self):
        # The NSF-like shape: one enormous categorical domain.  The
        # cost-aware planner prefers a bounded numeric attribute over
        # exploding into one region per categorical value.
        space = DataSpace.mixed(
            [("pi_name", 30_000), ("state", 50)],
            ["amount"],
            numeric_bounds=[(0, 10**6)],
        )
        plan = partition_space(space, 4)
        assert plan.attribute == 1  # 50 fits the cap, 30000 does not
        assert len(plan.regions) == 50
        capped = partition_space(space, 4, max_regions=10)
        assert capped.attribute == 2  # numeric: exactly 4 regions
        assert len(capped.regions) == 4

    def test_default_falls_back_to_smallest_oversized_domain(self):
        space = DataSpace.categorical([30_000, 600])
        plan = partition_space(space, 4, max_regions=512)
        assert plan.attribute == 1  # least oversized choice available
        assert len(plan.regions) == 600

    def test_explicit_attribute_bypasses_the_cap(self):
        space = DataSpace.categorical([700, 3])
        plan = partition_space(space, 2, attribute=0, max_regions=16)
        assert len(plan.regions) == 700

    def test_max_regions_below_sessions_rejected(self):
        space = DataSpace.categorical([8])
        with pytest.raises(SchemaError):
            partition_space(space, 4, max_regions=3)

    def test_default_requires_domain_to_hold_sessions(self):
        # Only a 3-value domain: 4 sessions cannot be packed, and with
        # no numeric alternative the planner says so.
        space = DataSpace.categorical([3])
        with pytest.raises(SchemaError):
            partition_space(space, 4)

    def test_numeric_intervals_cover_everything(self):
        space = DataSpace.numeric(1, bounds=[(0, 99)])
        plan = partition_space(space, 4)
        # Outermost intervals stretch to infinity: points outside the
        # advisory bounds are still covered exactly once.
        for value in (-1000, 0, 17, 50, 99, 10**6):
            assert plan.covers((value,)) == 1

    def test_every_point_covered_exactly_once(self):
        space = DataSpace.mixed([("c", 5)], ["v"])
        plan = partition_space(space, 2, attribute=0)
        for c in range(1, 6):
            for v in (-3, 0, 42):
                assert plan.covers((c, v)) == 1

    def test_too_many_sessions_rejected(self):
        space = DataSpace.categorical([3])
        with pytest.raises(SchemaError):
            partition_space(space, 4, attribute=0)

    def test_zero_sessions_rejected(self):
        with pytest.raises(SchemaError):
            partition_space(DataSpace.categorical([3]), 0)

    def test_unbounded_numeric_rejected(self):
        space = DataSpace.numeric(1)
        with pytest.raises(UnboundedDomainError):
            partition_space(space, 2, attribute=0)

    def test_unpartitionable_space_rejected(self):
        space = DataSpace.categorical([1])
        with pytest.raises(SchemaError):
            partition_space(space, 1)

    def test_single_session_plan(self):
        space = DataSpace.categorical([4])
        plan = partition_space(space, 1, attribute=0)
        assert plan.sessions == 1 and len(plan.regions) == 4


class TestSubspaceView:
    def test_view_restricts_results(self):
        dataset = mixed_dataset()
        server = TopKServer(dataset, k=1000)
        region = Query.full(dataset.space).with_value(0, 2)
        view = SubspaceView(server, region)
        response = view.run(Query.full(dataset.space))
        assert all(row[0] == 2 for row in response.rows)

    def test_contradiction_answered_locally(self):
        dataset = mixed_dataset()
        server = TopKServer(dataset, k=10)
        region = Query.full(dataset.space).with_value(0, 2)
        view = SubspaceView(server, region)
        before = server.stats.queries
        response = view.run(Query.full(dataset.space).with_value(0, 5))
        assert response.resolved and response.rows == ()
        assert server.stats.queries == before  # zero cost

    def test_numeric_region_clamps_ranges(self):
        dataset = mixed_dataset()
        server = TopKServer(dataset, k=1000)
        region = Query.full(dataset.space).with_range(2, 100, 199)
        view = SubspaceView(server, region)
        response = view.run(Query.full(dataset.space).with_range(2, 150, 500))
        assert all(150 <= row[2] <= 199 for row in response.rows)

    def test_wrong_space_rejected(self):
        dataset = mixed_dataset()
        server = TopKServer(dataset, k=10)
        other = DataSpace.numeric(1)
        with pytest.raises(SchemaError):
            SubspaceView(server, Query.full(other))

    def test_view_is_transparent_about_space_and_k(self):
        dataset = mixed_dataset()
        server = TopKServer(dataset, k=17)
        view = SubspaceView(server, Query.full(dataset.space))
        assert view.space == dataset.space and view.k == 17


class TestCrawlPartitioned:
    def test_merged_bag_is_exact(self):
        dataset = mixed_dataset()
        plan = partition_space(dataset.space, 3)
        sources = [TopKServer(dataset, k=32) for _ in range(3)]
        merged = crawl_partitioned(sources, plan)
        assert merged.complete
        assert sorted(merged.rows) == sorted(dataset.iter_rows())

    def test_source_count_must_match_plan(self):
        dataset = mixed_dataset()
        plan = partition_space(dataset.space, 3)
        with pytest.raises(SchemaError):
            crawl_partitioned([TopKServer(dataset, k=32)], plan)

    def test_cost_is_sum_of_sessions(self):
        dataset = mixed_dataset()
        plan = partition_space(dataset.space, 2)
        sources = [TopKServer(dataset, k=32) for _ in range(2)]
        merged = crawl_partitioned(sources, plan)
        assert merged.cost == sum(merged.session_costs())

    def test_numeric_partition_with_rank_shrink(self):
        rng = np.random.default_rng(8)
        space = DataSpace.numeric(2, bounds=[(0, 999), (0, 99)])
        rows = np.column_stack(
            [rng.integers(0, 1000, 300), rng.integers(0, 100, 300)]
        ).astype(np.int64)
        dataset = Dataset(space, rows)
        plan = partition_space(space, 4, attribute=0)
        sources = [TopKServer(dataset, k=16) for _ in range(4)]
        merged = crawl_partitioned(sources, plan, crawler_factory=RankShrink)
        assert merged.complete
        assert sorted(merged.rows) == sorted(dataset.iter_rows())

    def test_partial_on_budget_exhaustion(self):
        dataset = mixed_dataset()
        plan = partition_space(dataset.space, 2)
        sources = [
            TopKServer(dataset, k=32, limits=[QueryBudget(3)]),
            TopKServer(dataset, k=32),
        ]
        merged = crawl_partitioned(sources, plan, allow_partial=True)
        assert not merged.complete
        assert 0 < len(merged.rows) < dataset.n

    def test_budget_exhaustion_propagates_without_allow_partial(self):
        dataset = mixed_dataset()
        plan = partition_space(dataset.space, 2)
        sources = [
            TopKServer(dataset, k=32, limits=[QueryBudget(1)]),
            TopKServer(dataset, k=32),
        ]
        with pytest.raises(QueryBudgetExhausted):
            crawl_partitioned(sources, plan)

    @given(instance=small_instances(max_dim=3, max_domain=5))
    @settings(max_examples=25, deadline=None)
    def test_random_instances_merge_exactly(self, instance):
        dataset, k = instance
        # Skip spaces with nothing to partition on (tiny domains,
        # unbounded numerics).
        try:
            plan = partition_space(dataset.space, 2)
        except (SchemaError, UnboundedDomainError):
            return
        sources = [TopKServer(dataset, k) for _ in range(plan.sessions)]
        merged = crawl_partitioned(sources, plan)
        assert merged.complete
        assert sorted(merged.rows) == sorted(dataset.iter_rows())
