"""Tests for the categorical DFS baseline (Figure 5 walkthrough)."""

import pytest

from repro.crawl.dfs import DepthFirstSearch
from repro.crawl.verify import assert_complete
from repro.datasets.paper_examples import figure5_dataset, figure5_server
from repro.dataspace.space import DataSpace
from repro.exceptions import SchemaError
from repro.server.server import TopKServer
from tests.conftest import make_dataset


class TestFigure5Example:
    def test_visits_exactly_u1_to_u13(self):
        """The paper: "DFS eventually visits all of u1, ..., u13"."""
        crawler = DepthFirstSearch(figure5_server())
        result = crawler.crawl()
        assert result.cost == 13

    def test_prunes_resolved_subtrees(self):
        """query(u3) = (A1=2) resolves, so its children are never queried."""
        crawler = DepthFirstSearch(figure5_server())
        crawler.crawl()
        for query in crawler.client.history:
            # No query pins A1=2 together with a value of A2.
            if query.predicates[0].value == 2:
                assert query.predicates[1].value is None

    def test_traversal_order_is_depth_first(self):
        crawler = DepthFirstSearch(figure5_server())
        crawler.crawl()
        history = crawler.client.history
        # Root first, then A1=1 and its four children before A1=2.
        assert history[0].fixed_level() == 0
        assert history[1].predicates[0].value == 1
        for i in (2, 3, 4, 5):
            assert history[i].predicates[0].value == 1
            assert history[i].predicates[1].value == i - 1
        assert history[6].predicates[0].value == 2

    def test_completeness_including_duplicates(self):
        result = DepthFirstSearch(figure5_server()).crawl()
        assert_complete(result, figure5_dataset())
        assert sorted(result.rows).count((3, 3)) == 2  # t8 and t9


class TestGeneral:
    def test_rejects_non_categorical(self):
        dataset = make_dataset(DataSpace.numeric(1), [[1]])
        with pytest.raises(SchemaError):
            DepthFirstSearch(TopKServer(dataset, k=2))

    def test_single_attribute(self):
        dataset = make_dataset(DataSpace.categorical([5]), [[1], [1], [3]])
        result = DepthFirstSearch(TopKServer(dataset, k=2)).crawl()
        assert_complete(result, dataset)

    def test_resolved_root_costs_one(self):
        dataset = make_dataset(DataSpace.categorical([9, 9]), [[1, 1], [2, 2]])
        result = DepthFirstSearch(TopKServer(dataset, k=5)).crawl()
        assert result.cost == 1

    def test_deep_space(self):
        # The pattern has period 6, so each populated point holds 5 copies.
        rows = [
            [1 + i % 2, 1 + i % 3, 1 + i % 2, 1 + i % 3] for i in range(30)
        ]
        dataset = make_dataset(DataSpace.categorical([2, 3, 2, 3]), rows)
        assert dataset.max_multiplicity() == 5
        result = DepthFirstSearch(TopKServer(dataset, k=5)).crawl()
        assert_complete(result, dataset)
