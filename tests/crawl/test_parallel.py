"""Parallel executor tests: the determinism contract against sequential.

``crawl_partitioned_parallel`` must produce *exactly* what
``crawl_partitioned`` produces -- same merged rows in the same order,
same total and per-session costs, same merged progress curve -- for any
engine, any worker count, and through the ``allow_partial``
budget-interruption path.  Wall-clock scheduling may differ between
runs; nothing in the result may.
"""

import numpy as np
import pytest

from repro.crawl.base import (
    ProgressAggregator,
    concat_progress,
    merge_progress,
)
from repro.crawl.base import ProgressPoint as P
from repro.crawl.hybrid import Hybrid
from repro.crawl.parallel import crawl_partitioned_parallel, default_workers
from repro.crawl.partition import crawl_partitioned, partition_space
from repro.crawl.rank_shrink import RankShrink
from repro.datasets.adult import adult_numeric
from repro.datasets.nsf import nsf
from repro.dataspace.dataset import Dataset
from repro.dataspace.space import DataSpace
from repro.exceptions import QueryBudgetExhausted, SchemaError
from repro.server.limits import QueryBudget
from repro.server.server import TopKServer

SESSIONS = 4


def mixed_dataset(seed=3, n=400):
    rng = np.random.default_rng(seed)
    space = DataSpace.mixed(
        [("make", 7), ("body", 3)],
        ["price"],
        numeric_bounds=[(0, 999)],
    )
    rows = np.column_stack(
        [
            rng.integers(1, 8, n),
            rng.integers(1, 4, n),
            rng.integers(0, 1000, n),
        ]
    ).astype(np.int64)
    return Dataset(space, rows)


def assert_identical(parallel, sequential):
    """The full determinism contract, field by field."""
    assert parallel.rows == sequential.rows  # byte-identical order
    assert parallel.cost == sequential.cost
    assert parallel.complete == sequential.complete
    assert parallel.session_costs() == sequential.session_costs()
    assert parallel.progress == sequential.progress
    for i in range(parallel.plan.sessions):
        for a, b in zip(parallel.results[i], sequential.results[i]):
            assert a.rows == b.rows and a.cost == b.cost


class TestMatchesSequential:
    @pytest.mark.parametrize("engine", ["linear", "vector", "indexed"])
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_all_engines_and_worker_counts(self, engine, workers):
        dataset = mixed_dataset()
        plan = partition_space(dataset.space, SESSIONS)

        def sources():
            return [
                TopKServer(dataset, k=32, engine=engine)
                for _ in range(SESSIONS)
            ]

        sequential = crawl_partitioned(sources(), plan)
        parallel = crawl_partitioned_parallel(
            sources(), plan, max_workers=workers
        )
        assert_identical(parallel, sequential)
        assert parallel.complete
        assert sorted(parallel.rows) == sorted(dataset.iter_rows())

    def test_figure10_numeric_workload(self):
        """Adult-numeric (the Figure 10 workload), RankShrink sessions."""
        dataset = adult_numeric(n=400).with_bounds_from_data()
        plan = partition_space(dataset.space, SESSIONS)

        def sources():
            return [TopKServer(dataset, k=64) for _ in range(SESSIONS)]

        sequential = crawl_partitioned(
            sources(), plan, crawler_factory=RankShrink
        )
        parallel = crawl_partitioned_parallel(
            sources(), plan, max_workers=SESSIONS, crawler_factory=RankShrink
        )
        assert_identical(parallel, sequential)
        assert sorted(parallel.rows) == sorted(dataset.iter_rows())

    def test_figure11_categorical_workload(self):
        """NSF (the Figure 11 workload), Hybrid sessions."""
        dataset = nsf(n=500)
        plan = partition_space(dataset.space, SESSIONS)

        def sources():
            return [TopKServer(dataset, k=64) for _ in range(SESSIONS)]

        sequential = crawl_partitioned(sources(), plan, crawler_factory=Hybrid)
        parallel = crawl_partitioned_parallel(
            sources(), plan, max_workers=SESSIONS, crawler_factory=Hybrid
        )
        assert_identical(parallel, sequential)
        assert sorted(parallel.rows) == sorted(dataset.iter_rows())

    def test_allow_partial_budget_interruption(self):
        """Interrupted sessions merge identically to the sequential run."""
        dataset = mixed_dataset()
        plan = partition_space(dataset.space, 2)

        def sources():
            return [
                TopKServer(dataset, k=32, limits=[QueryBudget(3)]),
                TopKServer(dataset, k=32),
            ]

        sequential = crawl_partitioned(sources(), plan, allow_partial=True)
        parallel = crawl_partitioned_parallel(
            sources(), plan, max_workers=2, allow_partial=True
        )
        assert not parallel.complete
        assert 0 < len(parallel.rows) < dataset.n
        assert_identical(parallel, sequential)

    def test_budget_exhaustion_propagates_without_allow_partial(self):
        dataset = mixed_dataset()
        plan = partition_space(dataset.space, 2)
        sources = [
            TopKServer(dataset, k=32, limits=[QueryBudget(1)]),
            TopKServer(dataset, k=32),
        ]
        with pytest.raises(QueryBudgetExhausted):
            crawl_partitioned_parallel(sources, plan, max_workers=2)


class TestValidation:
    def test_source_count_must_match_plan(self):
        dataset = mixed_dataset()
        plan = partition_space(dataset.space, 3)
        with pytest.raises(SchemaError):
            crawl_partitioned_parallel([TopKServer(dataset, k=32)], plan)

    def test_rejects_nonpositive_workers(self):
        dataset = mixed_dataset()
        plan = partition_space(dataset.space, 2)
        sources = [TopKServer(dataset, k=32) for _ in range(2)]
        with pytest.raises(ValueError):
            crawl_partitioned_parallel(sources, plan, max_workers=0)

    def test_rejects_mismatched_aggregator(self):
        dataset = mixed_dataset()
        plan = partition_space(dataset.space, 2)
        sources = [TopKServer(dataset, k=32) for _ in range(2)]
        with pytest.raises(ValueError):
            crawl_partitioned_parallel(
                sources, plan, aggregator=ProgressAggregator(5)
            )

    def test_default_workers_bounds(self):
        assert default_workers(1) == 1
        assert 1 <= default_workers(10_000) <= 10_000


class TestProgress:
    def test_aggregator_converges_to_merged_totals(self):
        dataset = mixed_dataset()
        plan = partition_space(dataset.space, SESSIONS)
        sources = [TopKServer(dataset, k=32) for _ in range(SESSIONS)]
        aggregator = ProgressAggregator(SESSIONS)
        merged = crawl_partitioned_parallel(
            sources, plan, max_workers=SESSIONS, aggregator=aggregator
        )
        totals = aggregator.totals()
        assert totals.queries == merged.cost
        assert totals.tuples == merged.tuples_extracted
        history = aggregator.history()
        assert history[0] == P(0, 0) and history[-1] == totals
        # The live feed is monotone in both coordinates.
        assert all(
            a.queries <= b.queries and a.tuples <= b.tuples
            for a, b in zip(history, history[1:])
        )

    def test_merged_progress_is_monotone_and_ends_at_totals(self):
        dataset = mixed_dataset()
        plan = partition_space(dataset.space, SESSIONS)
        sources = [TopKServer(dataset, k=32) for _ in range(SESSIONS)]
        merged = crawl_partitioned_parallel(sources, plan)
        curve = merged.progress
        assert curve[-1] == P(merged.cost, merged.tuples_extracted)
        assert all(
            a.queries <= b.queries and a.tuples <= b.tuples
            for a, b in zip(curve, curve[1:])
        )
        # Per-session curves are exposed too.
        assert sum(
            merged.session_progress(i)[-1].queries
            for i in range(plan.sessions)
        ) == merged.cost

    def test_as_crawl_result_flattens_the_merge(self):
        dataset = mixed_dataset()
        plan = partition_space(dataset.space, 2)
        sources = [TopKServer(dataset, k=32) for _ in range(2)]
        merged = crawl_partitioned_parallel(sources, plan)
        flat = merged.as_crawl_result("partitioned-hybrid")
        assert flat.algorithm == "partitioned-hybrid"
        assert flat.rows == merged.rows
        assert flat.cost == merged.cost
        assert flat.progress == merged.progress
        assert flat.complete


class TestMergeHelpers:
    def test_concat_offsets_curves(self):
        merged = concat_progress([[P(0, 0), P(2, 5)], [P(0, 0), P(3, 1)]])
        assert merged == [P(0, 0), P(2, 5), P(5, 6)]

    def test_merge_interleaves_by_query_count(self):
        merged = merge_progress(
            [[P(0, 0), P(1, 2), P(4, 3)], [P(0, 0), P(2, 1)]]
        )
        assert merged == [P(0, 0), P(1, 2), P(3, 3), P(6, 4)]

    def test_merge_is_independent_of_session_order_totals(self):
        a = [[P(0, 0), P(1, 1)], [P(0, 0), P(5, 9)]]
        b = [a[1], a[0]]
        assert merge_progress(a)[-1] == merge_progress(b)[-1] == P(6, 10)

    def test_merge_of_empty_curves(self):
        assert merge_progress([[], []]) == [P(0, 0)]
        assert concat_progress([]) == []
