"""Tests for the random-probing baseline."""

import pytest

from repro.crawl.hybrid import Hybrid
from repro.crawl.sampling import RandomProber
from repro.datasets.synthetic import random_dataset
from repro.dataspace.space import DataSpace
from repro.exceptions import SchemaError
from repro.server.server import TopKServer


@pytest.fixture
def dataset():
    space = DataSpace.mixed([("c", 6)], ["x", "y"])
    return random_dataset(space, 800, seed=3, numeric_range=(0, 500))


class TestRandomProber:
    def test_respects_probe_budget(self, dataset):
        prober = RandomProber(TopKServer(dataset, k=16), probes=50, seed=1)
        result = prober.crawl()
        assert result.cost <= 50

    def test_coverage_is_monotone_and_sound(self, dataset):
        prober = RandomProber(TopKServer(dataset, k=16), probes=80, seed=1)
        prober.crawl()
        curve = prober.coverage_curve
        seen = [c for _, c in curve]
        assert seen == sorted(seen)
        truth = set(dataset.iter_rows())
        assert prober.distinct_seen() <= len(truth)

    def test_rows_are_real_tuples(self, dataset):
        prober = RandomProber(TopKServer(dataset, k=16), probes=40, seed=2)
        result = prober.crawl()
        truth = set(dataset.iter_rows())
        assert all(row in truth for row in result.rows)

    def test_cannot_finish_what_crawlers_finish(self, dataset):
        """The headline contrast: same budget, sampling stays partial."""
        full = Hybrid(TopKServer(dataset, k=16)).crawl()
        prober = RandomProber(
            TopKServer(dataset, k=16), probes=full.cost, seed=3
        )
        prober.crawl()
        distinct_truth = len(set(dataset.iter_rows()))
        assert full.tuples_extracted == dataset.n
        assert prober.distinct_seen() < distinct_truth

    def test_diminishing_returns(self, dataset):
        """Per-probe yield decays: the second half adds fewer tuples."""
        prober = RandomProber(TopKServer(dataset, k=16), probes=200, seed=4)
        prober.crawl()
        curve = prober.coverage_curve
        half = len(curve) // 2
        first_half_gain = curve[half][1] - curve[0][1]
        second_half_gain = curve[-1][1] - curve[half][1]
        assert second_half_gain < first_half_gain

    def test_validates_probes(self, dataset):
        with pytest.raises(SchemaError):
            RandomProber(TopKServer(dataset, k=16), probes=0)
