"""Boundary-condition crawls: extreme k, degenerate spaces, tiny bags.

Each test pins one boundary of the problem definition:

* ``k = 1`` -- the stingiest legal interface;
* ``n = 0`` and ``n <= k`` -- crawls that finish at the root;
* multiplicity exactly ``k`` -- the feasibility boundary (solvable);
* domain size 1 -- categorical attributes with nothing to choose;
* one-dimensional spaces of either kind.
"""

import numpy as np
import pytest

from repro.crawl.binary_shrink import BinaryShrink
from repro.crawl.dfs import DepthFirstSearch
from repro.crawl.hybrid import Hybrid
from repro.crawl.rank_shrink import RankShrink
from repro.crawl.slice_cover import LazySliceCover, SliceCover
from repro.crawl.verify import assert_complete
from repro.dataspace.dataset import Dataset
from repro.dataspace.space import DataSpace
from repro.server.server import TopKServer

ALL_KINDS = [RankShrink, LazySliceCover, SliceCover, DepthFirstSearch, Hybrid]


def crawler_for(space, crawler_cls):
    """Whether the algorithm applies to this space kind."""
    if crawler_cls in (LazySliceCover, SliceCover, DepthFirstSearch):
        return space.kind.value == "categorical"
    if crawler_cls in (RankShrink, BinaryShrink):
        return space.kind.value == "numeric"
    return True


class TestKEqualsOne:
    def test_rank_shrink_k1_distinct_values(self):
        space = DataSpace.numeric(1)
        dataset = Dataset(space, [(v,) for v in range(9)])
        result = RankShrink(TopKServer(dataset, k=1)).crawl()
        assert_complete(result, dataset)

    def test_hybrid_k1_mixed(self):
        space = DataSpace.mixed([("c", 3)], ["v"])
        dataset = Dataset(space, [(1, 5), (2, 5), (3, 7), (1, 9)])
        result = Hybrid(TopKServer(dataset, k=1)).crawl()
        assert_complete(result, dataset)

    def test_lazy_slice_cover_k1(self):
        space = DataSpace.categorical([3, 3])
        dataset = Dataset(space, [(1, 1), (2, 3), (3, 2)])
        result = LazySliceCover(TopKServer(dataset, k=1)).crawl()
        assert_complete(result, dataset)


class TestEmptyDatabase:
    @pytest.mark.parametrize("crawler_cls", ALL_KINDS)
    def test_empty_bag_everywhere(self, crawler_cls):
        for space in (
            DataSpace.numeric(2, bounds=[(0, 7), (0, 7)]),
            DataSpace.categorical([3, 2]),
            DataSpace.mixed([("c", 3)], ["v"], numeric_bounds=[(0, 7)]),
        ):
            if not crawler_for(space, crawler_cls):
                continue
            dataset = Dataset(
                space, np.empty((0, space.dimensionality), dtype=np.int64)
            )
            result = crawler_cls(TopKServer(dataset, k=4)).crawl()
            assert result.rows == []
            assert result.complete
            # The root query resolves immediately; eager slice-cover
            # additionally pays its whole slice table upfront.
            if crawler_cls is not SliceCover:
                assert result.cost == 1


class TestRootResolves:
    @pytest.mark.parametrize("crawler_cls", [RankShrink, Hybrid, LazySliceCover])
    def test_n_at_most_k_costs_one_query(self, crawler_cls):
        if crawler_cls is LazySliceCover:
            space = DataSpace.categorical([4, 4])
        elif crawler_cls is RankShrink:
            space = DataSpace.numeric(2)
        else:
            space = DataSpace.mixed([("c", 4)], ["v"])
        rows = [
            tuple(
                1 + (i % 4) if a.is_categorical else i * 3
                for a in space
            )
            for i in range(5)
        ]
        dataset = Dataset(space, rows)
        result = crawler_cls(TopKServer(dataset, k=5)).crawl()
        assert result.cost == 1
        assert_complete(result, dataset)


class TestFeasibilityBoundary:
    def test_multiplicity_exactly_k_is_solvable(self):
        """k identical tuples at one point: legal, and fully extracted."""
        space = DataSpace.mixed([("c", 2)], ["v"])
        dataset = Dataset(space, [(1, 7)] * 4 + [(2, 1), (2, 2)])
        result = Hybrid(TopKServer(dataset, k=4)).crawl()
        assert_complete(result, dataset)
        assert sum(1 for r in result.rows if r == (1, 7)) == 4

    def test_numeric_duplicates_exactly_k(self):
        space = DataSpace.numeric(1)
        dataset = Dataset(space, [(5,)] * 6 + [(9,), (1,)])
        result = RankShrink(TopKServer(dataset, k=6)).crawl()
        assert_complete(result, dataset)


class TestDegenerateDomains:
    def test_domain_size_one_categorical(self):
        space = DataSpace.categorical([1, 1, 3])
        dataset = Dataset(space, [(1, 1, c) for c in (1, 2, 3, 3)])
        result = LazySliceCover(TopKServer(dataset, k=2)).crawl()
        assert_complete(result, dataset)

    def test_single_categorical_attribute(self):
        # cat == 1: the paper's special case costing only U1.  Value 6
        # holds 3 duplicates, so k must be at least 3.
        space = DataSpace.categorical([6])
        dataset = Dataset(space, [(v,) for v in (1, 1, 2, 5, 6, 6, 6)])
        result = SliceCover(TopKServer(dataset, k=3)).crawl()
        assert_complete(result, dataset)
        assert result.cost <= 6 + 1

    def test_single_numeric_attribute_wide_values(self):
        space = DataSpace.numeric(1)
        values = [(-(10**12),), (0,), (10**12,)]
        dataset = Dataset(space, values * 2)
        result = RankShrink(TopKServer(dataset, k=2)).crawl()
        assert_complete(result, dataset)

    def test_all_tuples_on_one_point_categorical(self):
        space = DataSpace.categorical([2, 2])
        dataset = Dataset(space, [(2, 2)] * 3)
        result = LazySliceCover(TopKServer(dataset, k=3)).crawl()
        assert_complete(result, dataset)


class TestNegativeAndHugeValues:
    def test_rank_shrink_negative_coordinates(self):
        rng = np.random.default_rng(0)
        space = DataSpace.numeric(2)
        rows = rng.integers(-(10**9), 10**9, size=(60, 2)).astype(np.int64)
        dataset = Dataset(space, rows)
        result = RankShrink(TopKServer(dataset, k=4)).crawl()
        assert_complete(result, dataset)

    def test_hybrid_negative_numeric_suffix(self):
        space = DataSpace.mixed([("c", 2)], ["v"])
        dataset = Dataset(space, [(1, -5), (1, -5), (2, -9), (2, 3)])
        result = Hybrid(TopKServer(dataset, k=2)).crawl()
        assert_complete(result, dataset)
