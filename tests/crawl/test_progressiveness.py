"""Progressiveness tests (the property behind Figure 13).

"It should gradually churn out new tuples as it runs, instead of
outputting most tuples only at the end."  We check the structural
properties on mid-sized crawls: tuples appear throughout the run, and a
crawl interrupted at x% of its budget still holds a usable fraction of
the bag.
"""

import pytest

from repro.crawl.hybrid import Hybrid
from repro.datasets.yahoo import yahoo_autos
from repro.server.client import CachingClient
from repro.server.limits import QueryBudget
from repro.server.server import TopKServer


@pytest.fixture(scope="module")
def crawl_result():
    dataset = yahoo_autos(n=6000, seed=5, duplicates=0)
    return Hybrid(TopKServer(dataset, k=64)).crawl(), dataset


class TestProgressCurve:
    def test_tuples_arrive_before_the_end(self, crawl_result):
        result, dataset = crawl_result
        curve = result.progress_fractions()
        halfway = max(t for q, t in curve if q <= 0.5)
        assert halfway > 0.1  # not everything arrives at the end

    def test_no_giant_stalls(self, crawl_result):
        """Between 20% and 90% of queries, output keeps moving."""
        result, _ = crawl_result
        curve = result.progress_fractions()
        for lo, hi in [(0.2, 0.5), (0.5, 0.7), (0.7, 0.9)]:
            at_lo = max(t for q, t in curve if q <= lo)
            at_hi = max(t for q, t in curve if q <= hi)
            assert at_hi > at_lo

    def test_partial_crawl_yields_proportional_output(self):
        dataset = yahoo_autos(n=6000, seed=5, duplicates=0)
        full = Hybrid(TopKServer(dataset, k=64)).crawl()
        budget = max(5, full.cost // 2)
        server = TopKServer(dataset, k=64, limits=[QueryBudget(budget)])
        partial = Hybrid(server).crawl(allow_partial=True)
        assert not partial.complete
        # At half the queries we expect a non-trivial chunk of the bag.
        assert partial.tuples_extracted > 0.15 * dataset.n


class TestAnytimeResume:
    def test_interrupt_then_finish_matches_one_shot(self):
        dataset = yahoo_autos(n=3000, seed=7, duplicates=0)
        budget = QueryBudget(20)
        server = TopKServer(dataset, k=64, limits=[budget])
        client = CachingClient(server)
        partial = Hybrid(client).crawl(allow_partial=True)
        assert not partial.complete
        budget.refill(10**6)
        finished = Hybrid(client).crawl()
        assert finished.complete
        one_shot = Hybrid(TopKServer(dataset, k=64)).crawl()
        assert sorted(finished.rows) == sorted(one_shot.rows)
        # Resume did not repeat any server work.
        assert server.stats.queries == one_shot.cost
