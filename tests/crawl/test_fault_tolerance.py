"""Fault-tolerance suite: elastic fleets, requeued units, exact books.

The tentpole contract under test: a crawl fleet survives losing
workers.  A departing worker (anything that raises
:class:`~repro.exceptions.WorkerDeparted`) hands its in-flight region
or shard back to the scheduler via ``requeue()``, its lease/stats flush
runs in the drive loop's ``finally``, and the executors submit
replacements -- so the crawl completes with the *exact* bytes and the
*exact* budget charge of an undisturbed run.  A fleet that keeps
departing past the replacement cap fails loudly instead of hanging.

Three layers, mirroring where the machinery lives:

* scheduler unit tests -- the ``requeue()`` contract on
  :class:`~repro.crawl.rebalance.WorkStealingScheduler` and
  :class:`~repro.crawl.rebalance.SubtreeScheduler`;
* drive-loop tests -- :func:`~repro.crawl.runtime.drive_stealing`
  departing at every unit position and a second loop resuming to full
  parity;
* executor tests -- kill-at-every-region-boundary sweeps and mid-crawl
  query-level deaths across the thread, process (per-copy and
  shared-limit) and async backends.
"""

import threading
from dataclasses import dataclass

import numpy as np
import pytest

from repro.crawl.spec import CrawlSpec
from repro.crawl.executors import (
    AsyncExecutor,
    ProcessExecutor,
    ThreadExecutor,
)
from repro.crawl.base import ProgressAggregator
from repro.crawl.hybrid import Hybrid
from repro.crawl.partition import crawl_partitioned, partition_space
from repro.crawl.rebalance import (
    RegionTask,
    ShardTask,
    SubtreeScheduler,
    WorkStealingScheduler,
)
from repro.crawl.runtime import (
    AggregatorFeed,
    GridSink,
    LocalUnitRunner,
    ShardPolicy,
    UnitRunner,
    drive_stealing,
    steal_setup,
)
from repro.dataspace.dataset import Dataset
from repro.dataspace.space import DataSpace
from repro.exceptions import AlgorithmInvariantError, WorkerDeparted
from repro.server.limits import QueryBudget
from repro.server.server import TopKServer

SESSIONS = 3


# ----------------------------------------------------------------------
# Fault injectors (module level: the process backend pickles them)
# ----------------------------------------------------------------------
class DepartAt:
    """Crawler factory: the fleet loses a worker at one region attempt.

    Raises :class:`WorkerDeparted` on exactly the ``nth`` crawler
    construction -- i.e. at a region boundary, before the doomed
    attempt issues a single query -- and builds plain ``Hybrid``
    crawlers on every other attempt.  Picklable for the process
    backend, where each pool worker's unpickled copy counts its own
    attempts (so ``nth=2`` lets every worker finish one region before
    departing once).
    """

    def __init__(self, nth: int, marker=None):
        self.nth = int(nth)
        self.count = 0
        #: Optional file appended to on every departure, so tests can
        #: verify the fault really fired inside a pool worker process.
        self.marker = str(marker) if marker is not None else None
        self._lock = threading.Lock()

    def __getstate__(self):
        return {"nth": self.nth, "count": self.count, "marker": self.marker}

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def __call__(self, view):
        with self._lock:
            self.count += 1
            departed = self.count == self.nth
        if departed:
            if self.marker is not None:
                with open(self.marker, "a") as handle:
                    handle.write("departed\n")
            raise WorkerDeparted(
                f"injected departure at region attempt #{self.nth}"
            )
        return Hybrid(view)


class AlwaysDepart:
    """Crawler factory for the hopeless fleet: every attempt departs."""

    def __call__(self, view):
        raise WorkerDeparted("injected: every worker departs")


class DepartingSource:
    """Source wrapper departing at chosen query ordinals (1-based).

    The fatal query is swallowed, never forwarded, so the server's
    books show only queries that really ran; the interrupted unit is
    re-crawled from scratch by whoever picks it up.  ``_source`` is
    exposed because it is the rewiring seam the shared-limit
    coordinator walks.
    """

    def __init__(self, source, die_at):
        self._source = source
        self._die_at = frozenset(die_at)
        self._calls = 0
        self._lock = threading.Lock()

    @property
    def space(self):
        return self._source.space

    @property
    def k(self):
        return self._source.k

    def run(self, query):
        with self._lock:
            self._calls += 1
            departed = self._calls in self._die_at
        if departed:
            raise WorkerDeparted(
                f"injected departure at query #{self._calls}"
            )
        return self._source.run(query)


class DepartingRunner(UnitRunner):
    """UnitRunner wrapper: the worker departs before its nth unit."""

    def __init__(self, inner: UnitRunner, die_at: int):
        self._inner = inner
        self._die_at = die_at
        self.calls = 0
        self.drains = 0

    def _tick(self):
        self.calls += 1
        if self.calls == self._die_at:
            raise WorkerDeparted(
                f"injected departure at unit #{self.calls}"
            )

    def region(self, task):
        self._tick()
        return self._inner.region(task)

    def presplit(self, task, max_shards):
        self._tick()
        return self._inner.presplit(task, max_shards)

    def shard(self, task):
        self._tick()
        return self._inner.shard(task)

    def region_boundary(self):
        self._inner.region_boundary()

    def drained(self):
        self.drains += 1
        self._inner.drained()


@dataclass(frozen=True)
class FakeShard:
    order: int


@dataclass(frozen=True)
class FakeShardPlan:
    shards: tuple


@dataclass(frozen=True)
class FakeResult:
    cost: int


# ----------------------------------------------------------------------
# Shared fixtures
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def dataset():
    rng = np.random.default_rng(11)
    space = DataSpace.mixed(
        [("make", 6), ("body", 2)],
        ["price"],
        numeric_bounds=[(0, 299)],
    )
    n = 240
    rows = np.column_stack(
        [
            rng.integers(1, 7, n),
            rng.integers(1, 3, n),
            rng.integers(0, 300, n),
        ]
    ).astype(np.int64)
    return Dataset(space, rows)


@pytest.fixture(scope="module")
def plan(dataset):
    return partition_space(dataset.space, SESSIONS)


def make_sources(dataset):
    return [TopKServer(dataset, k=32) for _ in range(SESSIONS)]


@pytest.fixture(scope="module")
def reference(dataset, plan):
    return crawl_partitioned(make_sources(dataset), plan)


@pytest.fixture(scope="module")
def baseline_queries(dataset, plan):
    """Per-session *server-side* query counts of an undisturbed crawl.

    The budget-exactness bar: a limit charges only queries that really
    reach the server (``CrawlResult.cost`` also counts queries a
    region crawl resolves locally), so after a zero-waste departure the
    budgets must land exactly here.
    """
    sources = make_sources(dataset)
    crawl_partitioned(sources, plan)
    return [source.stats.queries for source in sources]


def assert_identical(result, reference):
    """The byte-identity bar: field-by-field parity with sequential."""
    assert result.rows == reference.rows
    assert result.cost == reference.cost
    assert result.complete == reference.complete
    assert result.session_costs() == reference.session_costs()
    assert result.progress == reference.progress


def assert_grid_matches(sink, reference):
    """Every grid cell equals the sequential run's region result."""
    for session, session_results in enumerate(reference.results):
        for index, expected in enumerate(session_results):
            filed = sink.grid[session][index]
            assert filed is not None
            assert filed.rows == expected.rows
            assert filed.cost == expected.cost


# ----------------------------------------------------------------------
# Scheduler layer: the requeue() contract
# ----------------------------------------------------------------------
class TestRequeue:
    def test_requeued_region_returns_to_front_of_home_queue(self):
        scheduler = WorkStealingScheduler([["a0", "a1"], ["b0"]])
        first = scheduler.acquire(0)
        assert first.key == (0, 0)
        assert scheduler.requeue(first) is True
        # The departed worker's unit is the next thing its session runs.
        again = scheduler.acquire(0)
        assert again == first
        scheduler.complete(again, 3)
        for _ in range(2):
            scheduler.complete(scheduler.acquire(0), 1)
        assert scheduler.acquire(0) is None
        assert scheduler.done()
        assert not scheduler.failed_keys()
        # Exactly-once accounting is untouched by the round trip.
        assert scheduler.total_observed_cost() == 5
        assert scheduler.completed_costs()[(0, 0)] == 3

    def test_only_an_acquirer_may_requeue(self):
        scheduler = WorkStealingScheduler([["a0"]])
        with pytest.raises(AlgorithmInvariantError, match="not in flight"):
            scheduler.requeue(RegionTask(0, 0, "a0"))

    def test_double_requeue_raises(self):
        scheduler = WorkStealingScheduler([["a0"]])
        task = scheduler.acquire(0)
        assert scheduler.requeue(task) is True
        with pytest.raises(AlgorithmInvariantError, match="not in flight"):
            scheduler.requeue(task)

    def test_requeue_after_abort_drains_silently(self):
        scheduler = WorkStealingScheduler([["a0", "a1"]])
        task = scheduler.acquire(0)
        scheduler.abort()
        assert scheduler.requeue(task) is False
        assert scheduler.acquire(0) is None

    def test_subtree_shard_requeue_resumes_in_order(self):
        scheduler = SubtreeScheduler([["r0"]])
        region = scheduler.acquire(0)
        plan = FakeShardPlan((FakeShard(0), FakeShard(1)))
        assert scheduler.publish(region, plan) is None
        shard0 = scheduler.acquire(0)
        shard1 = scheduler.acquire(0)
        assert isinstance(shard0, ShardTask) and shard0.shard.order == 0
        # The departed worker's shard goes back to the region's front.
        assert scheduler.requeue(shard0) is True
        resumed = scheduler.acquire(0)
        assert resumed.shard.order == 0
        assert scheduler.complete_shard(resumed, FakeResult(2)) is None
        completion = scheduler.complete_shard(shard1, FakeResult(3))
        assert completion is not None and completion.task.key == (0, 0)
        scheduler.complete_region((0, 0), 5)
        assert scheduler.done()
        assert scheduler.total_observed_cost() == 5

    def test_shard_requeue_after_sibling_failure_is_dropped(self):
        scheduler = SubtreeScheduler([["r0"]])
        region = scheduler.acquire(0)
        scheduler.publish(region, FakeShardPlan((FakeShard(0), FakeShard(1))))
        shard0 = scheduler.acquire(0)
        shard1 = scheduler.acquire(0)
        scheduler.fail(shard0)
        # The region is already written off; the returned shard drains.
        assert scheduler.requeue(shard1) is False
        assert scheduler.acquire(0) is None
        assert scheduler.done()
        assert scheduler.failed_keys() == {(0, 0)}

    def test_shard_never_in_flight_raises(self):
        scheduler = SubtreeScheduler([["r0"]])
        with pytest.raises(AlgorithmInvariantError, match="not in flight"):
            scheduler.requeue(ShardTask(0, 0, "r0", FakeShard(0)))


# ----------------------------------------------------------------------
# Drive-loop layer: departure at every unit position, then resume
# ----------------------------------------------------------------------
class TestDriveLoopDeparture:
    def test_departure_at_every_region_resumes_to_parity(
        self, dataset, plan, reference
    ):
        """Kill the (sole) worker before each region in turn; a second
        loop -- the replacement worker -- finishes the crawl with the
        exact sequential bytes and costs."""
        total = len(plan.regions)
        for die_at in range(1, total + 1):
            runner = DepartingRunner(
                LocalUnitRunner(make_sources(dataset), Hybrid, False),
                die_at,
            )
            scheduler = WorkStealingScheduler(plan.bundles)
            sink = GridSink(plan, AggregatorFeed(None, plan))
            assert drive_stealing(scheduler, 0, runner, sink) is False
            # The finally-clause contract: the departed loop still ran
            # its drain hook, so leases/stats can never leak.
            assert runner.drains == 1
            assert drive_stealing(scheduler, 0, runner, sink) is True
            assert runner.drains == 2
            assert scheduler.done()
            assert not scheduler.failed_keys()
            assert not sink.failures
            assert scheduler.total_observed_cost() == reference.cost
            assert_grid_matches(sink, reference)

    def test_departure_at_every_sharded_unit_resumes_to_parity(
        self, dataset, plan, reference
    ):
        """The two-level sweep: kill the worker before every presplit
        and every subtree shard in turn (mid-shard departures included)
        and resume; the merged grid never wavers."""
        policy = ShardPolicy.uniform(plan, 3)
        die_at = 1
        while True:
            assert die_at < 100, "sweep failed to terminate"
            runner = DepartingRunner(
                LocalUnitRunner(make_sources(dataset), Hybrid, False),
                die_at,
            )
            scheduler, _ = steal_setup(plan, None, policy)
            sink = GridSink(plan, AggregatorFeed(None, plan))
            drained = drive_stealing(scheduler, 0, runner, sink, policy)
            if not drained:
                assert (
                    drive_stealing(scheduler, 0, runner, sink, policy)
                    is True
                )
            assert scheduler.done()
            assert not sink.failures
            assert_grid_matches(sink, reference)
            if drained and runner.calls < die_at:
                break  # past the last unit: the whole space was swept
            die_at += 1


# ----------------------------------------------------------------------
# Executor layer: elastic fleets on every backend
# ----------------------------------------------------------------------
class TestElasticThread:
    def test_departure_at_every_boundary_matches_sequential(
        self, dataset, plan, reference
    ):
        total = len(plan.regions)
        for nth in range(1, total + 2):
            result = ThreadExecutor(max_workers=SESSIONS).run(
                make_sources(dataset),
                plan, CrawlSpec(rebalance=True, crawler_factory=DepartAt(nth)))
            assert_identical(result, reference)

    def test_budget_charge_is_exact_after_a_departure(
        self, dataset, plan, reference, baseline_queries
    ):
        """A boundary departure wastes zero queries: every budget ends
        charged exactly what an undisturbed crawl issues."""
        budgets = [QueryBudget(10**6) for _ in range(SESSIONS)]
        sources = [
            TopKServer(dataset, k=32, limits=[budgets[i]])
            for i in range(SESSIONS)
        ]
        result = ThreadExecutor(max_workers=SESSIONS).run(
            sources,
            plan,
            CrawlSpec(rebalance=True, crawler_factory=DepartAt(2)),
        )
        assert_identical(result, reference)
        assert [b.used for b in budgets] == baseline_queries
        # ...and never out of step with the servers' own books.
        assert [s.stats.queries for s in sources] == baseline_queries

    def test_mid_crawl_query_level_departures_match(
        self, dataset, plan, reference
    ):
        """Workers dying *inside* a unit (a query raises) under subtree
        sharding: the unit is requeued, re-crawled from scratch, and
        the merged bytes still match sequential."""
        sources = [
            DepartingSource(TopKServer(dataset, k=32), die_at={7})
            for _ in range(SESSIONS)
        ]
        result = ThreadExecutor(max_workers=SESSIONS).run(
            sources,
            plan, CrawlSpec(rebalance=True, shard_subtrees=3))
        assert_identical(result, reference)

    def test_fleet_that_never_survives_fails_loudly(self, dataset, plan):
        aggregator = ProgressAggregator(SESSIONS)
        with pytest.raises(WorkerDeparted, match="giving up"):
            ThreadExecutor(max_workers=SESSIONS).run(
                make_sources(dataset),
                plan,
                CrawlSpec(
                    rebalance=True,
                    aggregator=aggregator,
                    crawler_factory=AlwaysDepart(),
                ),
            )
        # No session is left reading as in-flight after the give-up.
        assert aggregator.all_terminal()


class TestElasticProcess:
    def test_futures_dispatch_redispatches_departed_units(
        self, dataset, plan, reference, tmp_path
    ):
        """Per-copy rebalanced mode: each pool worker departs once (at
        its second region attempt) and the parent dispatcher re-submits
        the unit to a surviving slot."""
        marker = tmp_path / "departures"
        result = ProcessExecutor(max_workers=2).run(
            make_sources(dataset),
            plan,
            CrawlSpec(
                rebalance=True, crawler_factory=DepartAt(2, marker=marker)
            ),
        )
        assert_identical(result, reference)
        # The fault really fired inside a pool worker.
        assert marker.exists() and marker.read_text().count("departed") >= 1

    def test_shared_limits_departure_keeps_budget_exact(
        self, dataset, plan, reference, baseline_queries, tmp_path
    ):
        """Cross-process pull loops under the shared-limit plane: each
        worker departs once, replacements pull the requeued units, and
        the written-back budgets carry the exact fleet-wide charge --
        the lease flush in the drive loop's finally at work."""
        budgets = [QueryBudget(10**6) for _ in range(SESSIONS)]
        sources = [
            TopKServer(dataset, k=32, limits=[budgets[i]])
            for i in range(SESSIONS)
        ]
        marker = tmp_path / "departures"
        result = ProcessExecutor(max_workers=2).run(
            sources,
            plan,
            CrawlSpec(
                rebalance=True,
                shared_limits=True,
                crawler_factory=DepartAt(2, marker=marker),
            ),
        )
        assert_identical(result, reference)
        assert [b.used for b in budgets] == baseline_queries
        assert marker.exists() and marker.read_text().count("departed") >= 1


class TestElasticAsync:
    def test_rejoin_after_departure_matches(self, dataset, plan, reference):
        result = AsyncExecutor(max_workers=SESSIONS).run(
            make_sources(dataset),
            plan, CrawlSpec(rebalance=True, crawler_factory=DepartAt(3)))
        assert_identical(result, reference)
