"""CrawlSpec: one config object, same bytes as the legacy kwargs.

The spec redesign promises three things: a spec-driven run is
byte-identical to the equivalent legacy-kwargs run on every backend;
the legacy keyword path still works but warns; and the flag->spec
mapping (`spec_from_args`) is the single source of truth both CLIs
share.  These tests pin all three.
"""

import functools
import warnings
from types import SimpleNamespace

import numpy as np
import pytest

from repro.crawl.dfs import DepthFirstSearch
from repro.crawl.executors import (
    EXECUTORS,
    ProcessExecutor,
    ThreadExecutor,
    make_executor,
)
from repro.crawl.hybrid import Hybrid
from repro.crawl.parallel import crawl_partitioned_parallel
from repro.crawl.partition import crawl_partitioned, partition_space
from repro.crawl.rank_shrink import RankShrink
from repro.crawl.spec import ALGORITHMS, CrawlSpec, spec_from_args
from repro.dataspace.dataset import Dataset
from repro.dataspace.space import DataSpace
from repro.server.server import TopKServer

SESSIONS = 2


def small_dataset(seed=11, n=160):
    rng = np.random.default_rng(seed)
    space = DataSpace.mixed(
        [("make", 5), ("body", 3)],
        ["price"],
        numeric_bounds=[(0, 299)],
    )
    rows = np.column_stack(
        [
            rng.integers(1, 6, n),
            rng.integers(1, 4, n),
            rng.integers(0, 300, n),
        ]
    ).astype(np.int64)
    return Dataset(space, rows)


@pytest.fixture(scope="module")
def dataset():
    return small_dataset()


@pytest.fixture(scope="module")
def plan(dataset):
    return partition_space(dataset.space, SESSIONS)


def make_sources(dataset):
    return [TopKServer(dataset, k=32) for _ in range(SESSIONS)]


def assert_identical(result, reference):
    assert result.rows == reference.rows
    assert result.cost == reference.cost
    assert result.session_costs() == reference.session_costs()


class TestValidation:
    def test_defaults_are_valid(self):
        spec = CrawlSpec()
        assert spec.crawler_factory is Hybrid
        assert spec.executor is None

    def test_unknown_executor(self):
        with pytest.raises(ValueError, match="unknown executor"):
            CrawlSpec(executor="quantum")

    def test_known_executors_accepted(self):
        for name in EXECUTORS:
            assert CrawlSpec(executor=name).executor == name

    def test_bad_max_workers(self):
        with pytest.raises(ValueError, match="max_workers"):
            CrawlSpec(max_workers=0)

    def test_bad_lease_chunk(self):
        with pytest.raises(ValueError, match="lease_chunk"):
            CrawlSpec(lease_chunk=-1)

    @pytest.mark.parametrize("bad", [0, -2, True, 1.5, "many"])
    def test_bad_shard_subtrees(self, bad):
        with pytest.raises(ValueError, match="shard_subtrees"):
            CrawlSpec(shard_subtrees=bad)

    def test_auto_shards_accepted(self):
        assert CrawlSpec(shard_subtrees="auto").shard_subtrees == "auto"

    def test_non_callable_factory(self):
        with pytest.raises(ValueError, match="crawler_factory"):
            CrawlSpec(crawler_factory="hybrid")

    def test_frozen(self):
        with pytest.raises(AttributeError):
            CrawlSpec().rebalance = True

    def test_replace_revalidates(self):
        spec = CrawlSpec(rebalance=True)
        assert spec.replace(max_workers=3).max_workers == 3
        assert spec.replace(max_workers=3).rebalance is True
        with pytest.raises(ValueError):
            spec.replace(executor="bogus")

    def test_run_fields_match_dataclass(self):
        """RUN_FIELDS is exactly the non-backend half of the spec."""
        import dataclasses

        names = {field.name for field in dataclasses.fields(CrawlSpec)}
        backend = {"executor", "max_workers", "lease_chunk"}
        assert CrawlSpec.RUN_FIELDS == names - backend


class TestParity:
    """spec= and legacy kwargs produce byte-identical results."""

    @pytest.mark.parametrize(
        "name", ["sequential", "thread", "process", "async"]
    )
    def test_spec_matches_legacy_kwargs(self, name, dataset, plan):
        executor = make_executor(name, max_workers=SESSIONS)
        with pytest.warns(DeprecationWarning):
            legacy = executor.run(
                make_sources(dataset), plan, rebalance=True
            )
        via_spec = executor.run(
            make_sources(dataset), plan, CrawlSpec(rebalance=True)
        )
        assert_identical(via_spec, legacy)
        assert via_spec.complete

    def test_spec_matches_sequential_reference(self, dataset, plan):
        reference = crawl_partitioned(make_sources(dataset), plan)
        spec = CrawlSpec(executor="thread", max_workers=SESSIONS)
        result = make_executor(spec=spec).run(
            make_sources(dataset), plan, spec
        )
        assert_identical(result, reference)

    def test_factory_rides_the_spec(self):
        rng = np.random.default_rng(5)
        space = DataSpace.numeric(2, [(0, 99), (0, 99)])
        rows = rng.integers(0, 100, (120, 2)).astype(np.int64)
        numeric = Dataset(space, rows)
        numeric_plan = partition_space(space, SESSIONS)

        def sources():
            return [TopKServer(numeric, k=32) for _ in range(SESSIONS)]

        spec = CrawlSpec(crawler_factory=RankShrink)
        result = ThreadExecutor(max_workers=SESSIONS).run(
            sources(), numeric_plan, spec
        )
        reference = crawl_partitioned(
            sources(), numeric_plan, crawler_factory=RankShrink
        )
        assert_identical(result, reference)

    def test_parallel_front_door_takes_spec(self, dataset, plan):
        reference = crawl_partitioned(make_sources(dataset), plan)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            result = crawl_partitioned_parallel(
                make_sources(dataset),
                plan,
                spec=CrawlSpec(executor="thread", rebalance=True),
            )
        assert_identical(result, reference)

    def test_parallel_front_door_kwargs_do_not_warn(self, dataset, plan):
        """The front door builds the spec itself -- no deprecation."""
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            result = crawl_partitioned_parallel(
                make_sources(dataset), plan, executor="thread"
            )
        assert result.complete

    def test_parallel_rejects_spec_plus_kwargs(self, dataset, plan):
        with pytest.raises(ValueError, match="not both"):
            crawl_partitioned_parallel(
                make_sources(dataset),
                plan,
                spec=CrawlSpec(),
                rebalance=True,
            )


class TestDeprecationShim:
    def test_legacy_kwargs_warn(self, dataset, plan):
        executor = ThreadExecutor(max_workers=SESSIONS)
        with pytest.warns(DeprecationWarning, match="CrawlSpec"):
            executor.run(make_sources(dataset), plan, allow_partial=True)

    def test_spec_plus_legacy_is_an_error(self, dataset, plan):
        executor = ThreadExecutor(max_workers=SESSIONS)
        with pytest.raises(TypeError, match="not both"):
            executor.run(
                make_sources(dataset),
                plan,
                CrawlSpec(),
                rebalance=True,
            )

    def test_unknown_kwarg_is_an_error(self, dataset, plan):
        executor = ThreadExecutor(max_workers=SESSIONS)
        with pytest.raises(TypeError, match="unexpected keyword"):
            executor.run(make_sources(dataset), plan, rebalanec=True)

    def test_spec_executor_must_match_backend(self, dataset, plan):
        executor = ThreadExecutor(max_workers=SESSIONS)
        with pytest.raises(ValueError, match="process"):
            executor.run(
                make_sources(dataset),
                plan,
                CrawlSpec(executor="process"),
            )


class TestMakeExecutor:
    def test_spec_picks_backend_and_workers(self):
        spec = CrawlSpec(executor="process", max_workers=3)
        executor = make_executor(spec=spec)
        assert isinstance(executor, ProcessExecutor)
        assert executor._max_workers == 3

    def test_spec_defaults_to_thread(self):
        assert isinstance(
            make_executor(spec=CrawlSpec()), ThreadExecutor
        )

    def test_lease_chunk_reaches_process_backend(self):
        spec = CrawlSpec(executor="process", lease_chunk=16)
        executor = make_executor(spec=spec)
        assert executor._lease_chunk == 16

    def test_lease_chunk_ignored_elsewhere(self):
        spec = CrawlSpec(executor="thread", lease_chunk=16)
        assert isinstance(make_executor(spec=spec), ThreadExecutor)

    def test_name_overrides_spec_backend(self):
        spec = CrawlSpec(executor="process")
        executor = make_executor("thread", spec=spec)
        assert isinstance(executor, ThreadExecutor)

    def test_neither_name_nor_spec(self):
        with pytest.raises(TypeError):
            make_executor()


class TestSpecFromArgs:
    def test_defaults(self):
        spec = spec_from_args(SimpleNamespace())
        factory = spec.crawler_factory
        assert isinstance(factory, functools.partial)
        assert factory.func is Hybrid
        assert factory.keywords == {"max_queries": None}
        assert spec.executor is None
        assert spec.max_workers is None
        assert spec.rebalance is False

    def test_full_mapping(self):
        args = SimpleNamespace(
            algorithm="dfs",
            max_queries=500,
            executor="process",
            workers=4,
            rebalance=True,
            shard_subtrees="auto",
            shared_limits=True,
            lease_chunk=8,
            allow_partial=True,
        )
        spec = spec_from_args(args)
        assert spec.crawler_factory.func is DepthFirstSearch
        assert spec.crawler_factory.keywords == {"max_queries": 500}
        assert spec.executor == "process"
        assert spec.max_workers == 4
        assert spec.rebalance is True
        assert spec.shard_subtrees == "auto"
        assert spec.shared_limits is True
        assert spec.lease_chunk == 8
        assert spec.allow_partial is True

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            spec_from_args(SimpleNamespace(algorithm="magic"))

    def test_algorithms_cover_the_paper(self):
        assert set(ALGORITHMS) == {
            "hybrid",
            "rank-shrink",
            "binary-shrink",
            "dfs",
            "slice-cover",
            "lazy-slice-cover",
        }
        for cls in ALGORITHMS.values():
            assert callable(cls)
