"""Infeasibility detection: more than k duplicates at one point.

Problem 1 has no solution when a point holds more than ``k`` tuples
(Section 1.1); every crawler must detect this and raise, reproducing the
paper's Yahoo-at-k=64 phenomenon rather than looping or silently losing
tuples.
"""

import pytest

from repro.crawl.binary_shrink import BinaryShrink
from repro.crawl.dfs import DepthFirstSearch
from repro.crawl.hybrid import Hybrid
from repro.crawl.rank_shrink import RankShrink
from repro.crawl.slice_cover import LazySliceCover, SliceCover
from repro.dataspace.space import DataSpace
from repro.exceptions import InfeasibleCrawlError
from repro.server.server import TopKServer
from tests.conftest import make_dataset


def numeric_dataset_with_heavy_point(copies):
    space = DataSpace.numeric(2, bounds=[(0, 10), (0, 10)])
    rows = [[3, 4]] * copies + [[0, 0], [10, 10]]
    return make_dataset(space, rows)


def categorical_dataset_with_heavy_point(copies):
    space = DataSpace.categorical([4, 4])
    rows = [[2, 3]] * copies + [[1, 1], [4, 4]]
    return make_dataset(space, rows)


def mixed_dataset_with_heavy_point(copies):
    space = DataSpace.mixed([("c", 3)], ["x"])
    rows = [[2, 7]] * copies + [[1, 0], [3, 9]]
    return make_dataset(space, rows)


K = 3
COPIES = K + 2


class TestDetection:
    def test_rank_shrink(self):
        dataset = numeric_dataset_with_heavy_point(COPIES)
        with pytest.raises(InfeasibleCrawlError):
            RankShrink(TopKServer(dataset, k=K)).crawl()

    def test_binary_shrink(self):
        dataset = numeric_dataset_with_heavy_point(COPIES)
        with pytest.raises(InfeasibleCrawlError):
            BinaryShrink(TopKServer(dataset, k=K)).crawl()

    def test_dfs(self):
        dataset = categorical_dataset_with_heavy_point(COPIES)
        with pytest.raises(InfeasibleCrawlError):
            DepthFirstSearch(TopKServer(dataset, k=K)).crawl()

    @pytest.mark.parametrize("cls", [SliceCover, LazySliceCover])
    def test_slice_cover(self, cls):
        dataset = categorical_dataset_with_heavy_point(COPIES)
        with pytest.raises(InfeasibleCrawlError):
            cls(TopKServer(dataset, k=K)).crawl()

    @pytest.mark.parametrize("lazy", [True, False])
    def test_hybrid(self, lazy):
        dataset = mixed_dataset_with_heavy_point(COPIES)
        with pytest.raises(InfeasibleCrawlError):
            Hybrid(TopKServer(dataset, k=K), lazy=lazy).crawl()


class TestThreshold:
    """Exactly k duplicates is feasible; k + 1 is not."""

    @pytest.mark.parametrize("copies,ok", [(K, True), (K + 1, False)])
    def test_numeric_boundary(self, copies, ok):
        dataset = numeric_dataset_with_heavy_point(copies)
        crawler = RankShrink(TopKServer(dataset, k=K))
        if ok:
            result = crawler.crawl()
            assert result.tuples_extracted == dataset.n
        else:
            with pytest.raises(InfeasibleCrawlError):
                crawler.crawl()

    @pytest.mark.parametrize("copies,ok", [(K, True), (K + 1, False)])
    def test_categorical_boundary(self, copies, ok):
        dataset = categorical_dataset_with_heavy_point(copies)
        crawler = LazySliceCover(TopKServer(dataset, k=K))
        if ok:
            result = crawler.crawl()
            assert result.tuples_extracted == dataset.n
        else:
            with pytest.raises(InfeasibleCrawlError):
                crawler.crawl()


class TestYahooPhenomenon:
    """The paper's Figure 12 note, on a scaled-down Yahoo lookalike."""

    def test_infeasible_below_plant_feasible_above(self):
        from repro.datasets.yahoo import yahoo_autos

        dataset = yahoo_autos(n=3000, seed=5, duplicates=40)
        assert dataset.min_feasible_k() == 40
        with pytest.raises(InfeasibleCrawlError):
            Hybrid(TopKServer(dataset, k=32)).crawl()
        result = Hybrid(TopKServer(dataset, k=64)).crawl()
        assert result.tuples_extracted == dataset.n
