"""The profiling seam: deterministic shape, inert by default, zero drift.

The contract under test is the one ``docs/performance.md`` documents:

* nothing is recorded unless a :func:`repro.crawl.profiling.profile`
  context is active -- the disabled path is a ``None`` check;
* with profiling active, a crawl issues exactly the same queries and
  returns byte-identical results -- the profiler observes, never
  steers;
* the report/format output has a deterministic shape (phase names and
  counts; only the seconds vary between runs);
* the CLI ``--profile`` flag leaves stdout byte-identical and puts the
  phase table on stderr.
"""

import pickle

from repro.crawl import profiling
from repro.crawl.__main__ import main
from repro.crawl.partition import crawl_partitioned, partition_space
from repro.datasets.io import save_csv
from repro.datasets.synthetic import random_dataset
from repro.dataspace.space import DataSpace
from repro.server.client import CachingClient
from repro.server.server import TopKServer
from tests.conftest import make_dataset


def small_dataset(seed=3, n=80):
    space = DataSpace.mixed([("c", 3), ("d", 2)], ["x"])
    return random_dataset(space, n, seed=seed, numeric_range=(0, 40))


class TestProfilerObject:
    def test_inactive_by_default(self):
        assert profiling.active() is None

    def test_profile_context_installs_and_restores(self):
        with profiling.profile() as prof:
            assert profiling.active() is prof
        assert profiling.active() is None

    def test_profile_context_is_reentrant(self):
        with profiling.profile() as outer:
            with profiling.profile() as inner:
                assert profiling.active() is inner
            assert profiling.active() is outer
        assert profiling.active() is None

    def test_record_and_count_accumulate(self):
        prof = profiling.Profiler()
        prof.record("a", 0.5)
        prof.record("a", 0.25, calls=2)
        prof.count("b", 3)
        phases = prof.phases()
        assert phases["a"].calls == 3
        assert phases["a"].seconds == 0.75
        assert phases["b"].calls == 3
        assert phases["b"].seconds == 0.0

    def test_phases_sorted_and_copied(self):
        prof = profiling.Profiler()
        prof.count("z")
        prof.count("a")
        assert list(prof.phases()) == ["a", "z"]
        prof.phases()["a"].calls = 99
        assert prof.phases()["a"].calls == 1

    def test_merge(self):
        left, right = profiling.Profiler(), profiling.Profiler()
        left.record("x", 1.0)
        right.record("x", 2.0, calls=2)
        right.count("y")
        left.merge(right)
        assert left.phases()["x"].calls == 3
        assert left.phases()["x"].seconds == 3.0
        assert left.phases()["y"].calls == 1

    def test_report_shape(self):
        prof = profiling.Profiler()
        prof.record("server.engine_top", 0.1)
        report = prof.report()
        assert set(report) == {"phases"}
        assert report["phases"]["server.engine_top"] == {
            "calls": 1,
            "seconds": 0.1,
        }

    def test_report_with_query_stats(self):
        dataset = small_dataset()
        client = CachingClient(TopKServer(dataset, k=8))
        from repro.crawl.hybrid import Hybrid

        Hybrid(client).crawl()
        report = profiling.Profiler().report(client.stats)
        assert set(report) == {"phases", "queries", "query_phases"}
        assert report["queries"] == client.cost

    def test_format_is_a_table(self):
        prof = profiling.Profiler()
        prof.record("client.server_wait", 0.5, calls=4)
        text = prof.format()
        lines = text.splitlines()
        assert lines[0].split() == ["phase", "calls", "seconds"]
        assert lines[1].split() == ["client.server_wait", "4", "0.500000"]

    def test_format_rows_follow_seam_order(self):
        # Recording order is first-hit order -- deliberately scrambled
        # here.  The table must print pipeline seams (client, server,
        # runtime) in order, with unknown prefixes after them, so two
        # runs of one workload always render the same table shape.
        prof = profiling.Profiler()
        prof.count("runtime.region")
        prof.count("other.phase")
        prof.count("server.engine_top")
        prof.count("client.server_wait")
        prof.count("client.cache_hit")
        names = [line.split()[0] for line in prof.format().splitlines()[1:]]
        assert names == [
            "client.cache_hit",
            "client.server_wait",
            "server.engine_top",
            "runtime.region",
            "other.phase",
        ]


class TestCrawlUnderProfiling:
    def test_results_and_cost_identical(self):
        from repro.crawl.hybrid import Hybrid

        dataset = small_dataset()
        plain = CachingClient(TopKServer(dataset, k=8))
        baseline = Hybrid(plain).crawl()

        profiled = CachingClient(TopKServer(dataset, k=8))
        with profiling.profile() as prof:
            observed = Hybrid(profiled).crawl()

        assert observed.rows == baseline.rows
        assert observed.cost == baseline.cost
        assert observed.progress == baseline.progress
        assert profiled.history == plain.history
        # The profiler saw every miss, and hits cost no queries.
        phases = prof.phases()
        assert phases["client.cache_miss"].calls == baseline.cost
        assert phases["client.server_wait"].calls == baseline.cost

    def test_partitioned_crawl_records_runtime_phases(self):
        dataset = small_dataset()
        plan = partition_space(dataset.space, 2)
        sources = [TopKServer(dataset, k=8) for _ in range(2)]
        with profiling.profile() as prof:
            merged = crawl_partitioned(sources, plan)
        baseline = crawl_partitioned(
            [TopKServer(dataset, k=8) for _ in range(2)], plan
        )
        assert merged.rows == baseline.rows
        assert merged.cost == baseline.cost
        phases = prof.phases()
        assert "runtime.region" in phases
        assert "server.engine_top" in phases
        assert phases["runtime.region"].calls == len(plan.regions)

    def test_nothing_recorded_when_inactive(self):
        dataset = small_dataset()
        prof = profiling.Profiler()
        # Not installed: the seam's None-check keeps it untouched.
        crawl_partitioned(
            [TopKServer(dataset, k=8) for _ in range(2)],
            partition_space(dataset.space, 2),
        )
        assert prof.phases() == {}
        assert profiling.active() is None

    def test_server_pickles_inside_batch_epoch(self):
        # threading.local state must not leak into pickles.
        server = TopKServer(small_dataset(), k=8)
        with server.batch_context():
            clone = pickle.loads(pickle.dumps(server))
        space = server.space
        from repro.query.query import Query

        query = Query.full(space).with_value(0, 1)
        assert clone.run(query).rows == server.run(query).rows


class TestCliProfileFlag:
    def csv(self, tmp_path):
        dataset = small_dataset()
        path = tmp_path / "data.csv"
        save_csv(dataset, path)
        return str(path)

    def test_stdout_byte_identical(self, tmp_path, capsys):
        path = self.csv(tmp_path)
        assert main([path, "--k", "8"]) == 0
        plain = capsys.readouterr()
        assert main([path, "--k", "8", "--profile"]) == 0
        profiled = capsys.readouterr()
        assert profiled.out == plain.out
        assert "profile (wall-clock phases):" in profiled.err
        assert "client.cache_miss" in profiled.err

    def test_profile_table_in_seam_order(self, tmp_path, capsys):
        # The stderr table is deterministic: client seams print before
        # server seams no matter which phase recorded first.
        path = self.csv(tmp_path)
        assert main([path, "--k", "8", "--profile"]) == 0
        err = capsys.readouterr().err
        rows = [
            line.split()[0]
            for line in err.splitlines()
            if line.split() and "." in line.split()[0]
        ]
        seam_rows = [
            name
            for name in rows
            if name.startswith(("client.", "server.", "runtime."))
        ]
        assert seam_rows == [
            "client.cache_hit",
            "client.cache_miss",
            "client.server_wait",
            "server.engine_top",
        ]

    def test_profile_restores_inactive(self, tmp_path, capsys):
        path = self.csv(tmp_path)
        assert main([path, "--k", "8", "--profile"]) == 0
        capsys.readouterr()
        assert profiling.active() is None

    def test_infeasible_dataset_still_inactive_after(self, tmp_path, capsys):
        # Error paths must tear the seam down too.
        dataset = make_dataset(
            DataSpace.categorical([3]), [[1]] * 9 + [[2]]
        )
        path = tmp_path / "dup.csv"
        save_csv(dataset, path)
        assert main([str(path), "--k", "4", "--profile"]) == 3
        capsys.readouterr()
        assert profiling.active() is None
