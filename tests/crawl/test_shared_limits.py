"""Shared-limit control plane: exact accounting across processes.

The process backend's ``shared_limits=True`` mode must keep every
interface limit *globally* exact -- one authoritative
``QueryBudget``/``DailyRateLimit``/``SimulatedClock``/``QueryStats``
admits and accounts for the whole pool -- while the merged result stays
byte-identical to the sequential executor on limit-bearing plans.
These tests pin:

* the coordinator primitives (exactly-once admission, identity-memoised
  sharing, write-back, source rewiring);
* byte-parity of the process backend under ``shared_limits`` across
  static / rebalanced / subtree-sharded dispatch, with the charged cost
  equal to the sequential count exactly;
* limit-exhaustion behaviour: a budget that runs out mid-crawl raises
  (or, with ``allow_partial``, truncates) identically across
  sequential, thread and shared-limit process execution, never
  over-admitting by even one query;
* a hypothesis property: no interleaving of racing admitters can
  double-admit -- exactly ``min(budget, attempts)`` admissions succeed.
"""

import pickle
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crawl.base import ProgressAggregator, SessionState
from repro.crawl.coordinator import (
    LimitCoordinator,
    SharedBudget,
    SharedClock,
    SharedDailyLimit,
    SharedStats,
)
from repro.crawl.executors import ProcessExecutor, make_executor
from repro.crawl.partition import crawl_partitioned, partition_space
from repro.crawl.rebalance import CostEstimator
from repro.crawl.spec import CrawlSpec
from repro.dataspace.dataset import Dataset
from repro.dataspace.space import DataSpace
from repro.exceptions import QueryBudgetExhausted
from repro.server.client import CachingClient, PatientClient
from repro.server.latency import LatencySource
from repro.server.limits import DailyRateLimit, QueryBudget, SimulatedClock
from repro.server.response import QueryResponse
from repro.server.server import TopKServer
from repro.server.stats import QueryStats

SESSIONS = 3

#: Shared-limit dispatch shapes the parity contract covers.
SHARED_MATRIX = [
    pytest.param({}, id="static"),
    pytest.param({"rebalance": True}, id="rebalance"),
    pytest.param(
        {"rebalance": True, "shard_subtrees": 4}, id="rebalance-sharded"
    ),
]


def limited_dataset(seed=3, n=300):
    rng = np.random.default_rng(seed)
    space = DataSpace.mixed(
        [("make", 6), ("body", 3)],
        ["price"],
        numeric_bounds=[(0, 499)],
    )
    rows = np.column_stack(
        [
            rng.integers(1, 7, n),
            rng.integers(1, 4, n),
            rng.integers(0, 500, n),
        ]
    ).astype(np.int64)
    return Dataset(space, rows)


@pytest.fixture(scope="module")
def dataset():
    return limited_dataset()


@pytest.fixture(scope="module")
def plan(dataset):
    return partition_space(dataset.space, SESSIONS)


def budgeted_sources(dataset, budget):
    """One server per session, all admitting against one budget."""
    return [
        TopKServer(dataset, k=32, limits=[budget]) for _ in range(SESSIONS)
    ]


@pytest.fixture(scope="module")
def reference(dataset, plan):
    """Sequential crawl of the limit-bearing plan + its exact charge."""
    budget = QueryBudget(100_000)
    result = crawl_partitioned(budgeted_sources(dataset, budget), plan)
    return result, budget.used


@pytest.fixture(scope="module")
def coordinator():
    with LimitCoordinator() as running:
        yield running


def assert_identical(result, reference):
    assert result.rows == reference.rows
    assert result.cost == reference.cost
    assert result.complete == reference.complete
    assert result.session_costs() == reference.session_costs()
    assert result.progress == reference.progress


class TestCoordinatorPrimitives:
    def test_share_is_identity_memoised(self, coordinator):
        budget = QueryBudget(5)
        stub = coordinator.share(budget)
        assert isinstance(stub, SharedBudget)
        assert coordinator.share(budget) is stub
        # A different object of the same shape gets its own handle.
        assert coordinator.share(QueryBudget(5)) is not stub

    def test_budget_admits_exactly_once_and_writes_back(self, coordinator):
        budget = QueryBudget(4)
        stub = coordinator.share(budget)
        for _ in range(4):
            stub.admit()
        with pytest.raises(QueryBudgetExhausted) as excinfo:
            stub.admit()
        assert excinfo.value.issued == 4
        assert stub.used == 4
        assert stub.remaining == 0
        # The caller's object is untouched until write-back...
        assert budget.used == 0
        coordinator.writeback()
        # ...then reads the authoritative counters exactly.
        assert budget.used == 4
        assert budget.remaining == 0

    def test_stub_pickles_and_still_charges_the_one_budget(self, coordinator):
        budget = QueryBudget(2)
        stub = coordinator.share(budget)
        clone = pickle.loads(pickle.dumps(stub))
        stub.admit()
        clone.admit()
        with pytest.raises(QueryBudgetExhausted):
            clone.admit()
        assert stub.used == 2

    def test_daily_limit_rolls_over_through_the_shared_clock(
        self, coordinator
    ):
        clock = SimulatedClock()
        daily = DailyRateLimit(3, clock)
        shared_daily = coordinator.share(daily)
        shared_clock = coordinator.share(clock)
        assert isinstance(shared_daily, SharedDailyLimit)
        assert isinstance(shared_clock, SharedClock)
        for _ in range(3):
            shared_daily.admit()
        with pytest.raises(QueryBudgetExhausted):
            shared_daily.admit()
        assert shared_daily.used_today == 3
        assert shared_clock.sleep_until_next_day() == 1
        assert shared_daily.remaining_today == 3
        shared_daily.admit()
        coordinator.writeback()
        assert clock.day == 1
        assert daily.used_today == 1

    def test_daily_limit_shares_its_clock_automatically(self, coordinator):
        """Sharing a daily limit shares its clock under the same handle."""
        clock = SimulatedClock()
        daily = DailyRateLimit(2, clock)
        shared_daily = coordinator.share(daily)
        shared_clock = coordinator.share(clock)
        shared_daily.admit()
        shared_daily.admit()
        shared_clock.sleep_until_next_day()
        shared_daily.admit()  # would raise if the clocks were distinct
        assert shared_daily.used_today == 1

    def test_shared_stats_record_and_snapshot(self, coordinator):
        stats = QueryStats()
        shared = coordinator.share(stats)
        assert isinstance(shared, SharedStats)
        shared.begin_phase("traversal")
        shared.record(QueryResponse((), True))
        shared.record(QueryResponse(((1, 2),), False))
        shared.end_phase()
        assert shared.queries == 2
        assert shared.overflowed == 1
        assert shared.resolved == 1
        assert shared.tuples_returned == 1
        assert shared.phase_costs == {"traversal": 2}
        snapshot = shared.snapshot()
        assert isinstance(snapshot, QueryStats)
        assert snapshot.queries == 2
        assert "2 queries" in str(shared)
        coordinator.writeback()
        assert stats.queries == 2
        assert stats.phase_costs == {"traversal": 2}

    def test_unknown_limit_type_is_a_clear_error(self, coordinator):
        class OddLimit:
            def admit(self):
                pass

        with pytest.raises(TypeError, match="control plane"):
            coordinator.share(OddLimit())

    def test_rewire_walks_wrappers_and_preserves_originals(
        self, coordinator, dataset
    ):
        budget = QueryBudget(50)
        server = TopKServer(dataset, k=32, limits=[budget])
        source = LatencySource(CachingClient(server), 0.0)
        (rewired,) = coordinator.share_sources([source])
        # New wrapper objects down the rewired chain, same originals.
        assert rewired is not source
        assert rewired._source is not source._source
        inner = rewired._source._server
        assert isinstance(inner._limits[0], SharedBudget)
        assert isinstance(inner.stats, SharedStats)
        assert source._source._server is server
        assert server._limits[0] is budget
        # Queries through the rewired stack charge the shared budget.
        from repro.query.query import Query

        rewired.run(Query.full(dataset.space))
        assert inner._limits[0].used == 1
        assert budget.used == 0  # original untouched until writeback

    def test_rewire_shares_a_patient_clients_clock(self, coordinator, dataset):
        clock = SimulatedClock()
        server = TopKServer(
            dataset, k=32, limits=[DailyRateLimit(1000, clock)]
        )
        patient = PatientClient(server, clock)
        (rewired,) = coordinator.share_sources([patient])
        assert isinstance(rewired._clock, SharedClock)
        assert patient._clock is clock

    def test_plane_property_requires_start(self):
        idle = LimitCoordinator()
        with pytest.raises(RuntimeError, match="not started"):
            idle.plane


class TestProcessSharedParity:
    """Acceptance: byte-identical to sequential on a limit-bearing plan,
    and the total charged cost equals the sequential count exactly."""

    @pytest.mark.parametrize("kwargs", SHARED_MATRIX)
    def test_limit_bearing_plan_matches_sequential(
        self, kwargs, dataset, plan, reference
    ):
        expected, expected_charge = reference
        budget = QueryBudget(100_000)
        result = ProcessExecutor(max_workers=2).run(
            budgeted_sources(dataset, budget),
            plan,
            CrawlSpec(shared_limits=True, **kwargs),
        )
        assert_identical(result, expected)
        assert budget.used == expected_charge

    def test_server_stats_are_exact_per_source(self, dataset, plan):
        seq_sources = budgeted_sources(dataset, QueryBudget(100_000))
        crawl_partitioned(seq_sources, plan)
        shared_budget = QueryBudget(100_000)
        shared_sources = budgeted_sources(dataset, shared_budget)
        ProcessExecutor(max_workers=2).run(
            shared_sources,
            plan,
            CrawlSpec(shared_limits=True, rebalance=True),
        )
        for sequential, shared in zip(seq_sources, shared_sources):
            assert shared.stats.queries == sequential.stats.queries
            assert shared.stats.resolved == sequential.stats.resolved
            assert (
                shared.stats.tuples_returned
                == sequential.stats.tuples_returned
            )

    def test_estimator_receives_exact_observed_costs(
        self, dataset, plan, reference
    ):
        expected, _ = reference
        estimator = CostEstimator()
        result = ProcessExecutor(max_workers=2).run(
            budgeted_sources(dataset, QueryBudget(100_000)),
            plan,
            CrawlSpec(
                shared_limits=True, rebalance=True, estimator=estimator
            ),
        )
        assert_identical(result, expected)
        # Every region's exact cost crossed the process boundary back.
        assert estimator.total_observed() == expected.cost
        assert len(estimator.observed()) == len(plan.regions)

    @pytest.mark.parametrize("kwargs", SHARED_MATRIX)
    def test_sessions_reach_terminal_states(self, kwargs, dataset, plan):
        aggregator = ProgressAggregator(SESSIONS)
        merged = ProcessExecutor(max_workers=2).run(
            budgeted_sources(dataset, QueryBudget(100_000)),
            plan,
            CrawlSpec(shared_limits=True, aggregator=aggregator, **kwargs),
        )
        assert aggregator.states() == (SessionState.DONE,) * SESSIONS
        totals = aggregator.totals()
        assert totals.queries == merged.cost
        assert totals.tuples == merged.tuples_extracted


class TestLimitExhaustion:
    """Satellite: a budget that runs out mid-crawl behaves identically
    across sequential, thread and shared-limit process execution."""

    CAP = 12

    BACKENDS = [
        pytest.param("sequential", {}, id="sequential"),
        pytest.param("thread", {}, id="thread"),
        pytest.param("thread", {"rebalance": True}, id="thread-rebalance"),
        pytest.param("async", {}, id="async"),
        pytest.param(
            "process",
            {"shared_limits": True, "rebalance": True},
            id="process-shared",
        ),
        pytest.param(
            "process",
            {"shared_limits": True, "rebalance": True, "shard_subtrees": 4},
            id="process-shared-sharded",
        ),
    ]

    @pytest.mark.parametrize("name,kwargs", BACKENDS)
    def test_exhaustion_raises_and_never_over_admits(
        self, name, kwargs, dataset, plan
    ):
        budget = QueryBudget(self.CAP)
        executor = make_executor(name, max_workers=SESSIONS)
        with pytest.raises(QueryBudgetExhausted) as excinfo:
            executor.run(
                budgeted_sources(dataset, budget), plan, CrawlSpec(**kwargs)
            )
        assert excinfo.value.issued == self.CAP
        assert budget.used == self.CAP
        assert budget.remaining == 0

    @pytest.mark.parametrize("name,kwargs", BACKENDS)
    def test_allow_partial_truncates_at_the_exact_cap(
        self, name, kwargs, dataset, plan
    ):
        budget = QueryBudget(self.CAP)
        executor = make_executor(name, max_workers=SESSIONS)
        result = executor.run(
            budgeted_sources(dataset, budget),
            plan,
            CrawlSpec(allow_partial=True, **kwargs),
        )
        assert not result.complete
        assert budget.used == self.CAP
        assert budget.remaining == 0

    def test_without_sharing_each_worker_over_admits(self, dataset, plan):
        """The bug the control plane fixes, pinned as a contrast: plain
        per-worker budget copies admit independently, so the pool as a
        whole issues more queries than the budget allows."""
        budget = QueryBudget(self.CAP)
        result = ProcessExecutor(max_workers=2).run(
            budgeted_sources(dataset, budget),
            plan,
            CrawlSpec(allow_partial=True, rebalance=True),
        )
        # Each worker's copy stopped at CAP, but the fleet's total
        # spend exceeded it -- and the caller's budget saw nothing.
        assert budget.used == 0
        assert result.cost > 0


class TestNoDoubleAdmission:
    """Hypothesis: racing admitters can never over-admit a shared budget."""

    @settings(max_examples=15, deadline=None)
    @given(
        budget_cap=st.integers(min_value=0, max_value=40),
        admitters=st.integers(min_value=1, max_value=4),
        attempts=st.integers(min_value=0, max_value=20),
    )
    def test_exactly_min_budget_attempts_admissions_succeed(
        self, coordinator, budget_cap, admitters, attempts
    ):
        budget = QueryBudget(budget_cap)
        stub = coordinator.share(budget)
        # Each admitter works through its own deserialised stub, the
        # worker-process shape, all charging one authoritative counter.
        stubs = [pickle.loads(pickle.dumps(stub)) for _ in range(admitters)]
        admitted = []

        def admitter(client):
            count = 0
            for _ in range(attempts):
                try:
                    client.admit()
                except QueryBudgetExhausted:
                    continue
                count += 1
            admitted.append(count)

        threads = [
            threading.Thread(target=admitter, args=(client,))
            for client in stubs
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        total_attempts = admitters * attempts
        assert sum(admitted) == min(budget_cap, total_attempts)
        assert stub.used == min(budget_cap, total_attempts)

    def test_cross_process_admissions_are_exactly_once(self, coordinator):
        """The same property with real worker processes racing."""
        from concurrent.futures import ProcessPoolExecutor as Pool

        budget = QueryBudget(10)
        stub = coordinator.share(budget)
        with Pool(max_workers=3) as pool:
            admitted = sum(pool.map(_admit_up_to, [stub] * 3, [6] * 3))
        assert admitted == 10
        assert stub.used == 10


def _admit_up_to(stub, attempts):
    count = 0
    for _ in range(attempts):
        try:
            stub.admit()
        except QueryBudgetExhausted:
            continue
        count += 1
    return count


class TestAbortDrain:
    """abort() lets surviving workers drain, never crash."""

    def test_complete_after_abort_is_silently_dropped(self, plan):
        from repro.crawl.rebalance import WorkStealingScheduler

        scheduler = WorkStealingScheduler(plan.bundles)
        task = scheduler.acquire(0)
        scheduler.abort()
        # The abort wrote the in-flight task off; its worker reporting
        # back afterwards must not trip the exactly-once check.
        scheduler.complete(task, 5)
        scheduler.fail(task)
        assert scheduler.acquire(0) is None
        assert task.key in scheduler.failed_keys()
        assert scheduler.completed_costs() == {}

    def test_publish_and_shard_completion_after_abort(self, plan):
        from repro.crawl.rebalance import SubtreeScheduler

        scheduler = SubtreeScheduler(plan.bundles)
        task = scheduler.acquire(0)
        scheduler.abort()
        assert scheduler.publish(task, _FakePlan()) is None
        assert scheduler.acquire(0, block=False) is None

    def test_double_complete_still_raises_without_abort(self, plan):
        from repro.crawl.rebalance import WorkStealingScheduler
        from repro.exceptions import AlgorithmInvariantError

        scheduler = WorkStealingScheduler(plan.bundles)
        task = scheduler.acquire(0)
        scheduler.complete(task, 5)
        with pytest.raises(AlgorithmInvariantError):
            scheduler.complete(task, 5)


class _FakePlan:
    shards = (object(),)


class TestRewireValidation:
    def test_unrewireable_source_is_a_clear_error(self, coordinator):
        class OpaqueSource:
            def run(self, query):
                raise NotImplementedError

        with pytest.raises(TypeError, match="could not rewire"):
            coordinator.share_sources([OpaqueSource()])

    def test_web_session_stack_is_rewired(self, coordinator, dataset):
        from repro.web.adapter import WebSession
        from repro.web.site import HiddenWebSite

        budget = QueryBudget(1000)
        session = WebSession(
            HiddenWebSite(TopKServer(dataset, k=32, limits=[budget]))
        )
        (rewired,) = coordinator.share_sources([session])
        assert rewired is not session
        inner = rewired._site._server
        assert isinstance(inner._limits[0], SharedBudget)


class TestLeaseBatching:
    """Tentpole: chunked admission through the plane stays exact."""

    def test_chunked_admit_consumes_locally_and_flush_returns(
        self, coordinator
    ):
        budget = QueryBudget(100)
        stub = coordinator.share(budget)
        stub.lease_chunk = 8
        for _ in range(3):
            stub.admit()
        # One chunk charged upfront; the extra units are held locally.
        assert stub.used == 8
        stub.flush()
        assert stub.used == 3  # unused units returned exactly
        stub.flush()  # idempotent on an empty lease
        assert stub.used == 3
        coordinator.writeback()
        assert budget.used == 3

    def test_writeback_flushes_parent_held_leases(self, coordinator):
        budget = QueryBudget(50)
        stub = coordinator.share(budget)
        stub.lease_chunk = 16
        stub.admit()
        coordinator.writeback()
        assert budget.used == 1

    def test_pickled_clone_starts_without_the_lease(self, coordinator):
        budget = QueryBudget(100)
        stub = coordinator.share(budget)
        stub.lease_chunk = 5
        stub.admit()  # stub now holds 4 unused units
        clone = pickle.loads(pickle.dumps(stub))
        assert clone.lease_chunk == 5
        clone.admit()  # must lease afresh, not double-spend stub's
        assert stub.used == 10
        stub.flush()
        clone.flush()
        assert stub.used == 2

    def test_exhaustion_via_chunked_leases_is_faithful(self, coordinator):
        budget = QueryBudget(7)
        stub = coordinator.share(budget)
        stub.lease_chunk = 4
        for _ in range(7):
            stub.admit()
        with pytest.raises(QueryBudgetExhausted) as excinfo:
            stub.admit()
        assert excinfo.value.issued == 7
        assert stub.used == 7
        coordinator.writeback()
        assert budget.used == 7

    def test_shared_stats_buffer_lands_on_flush(self, coordinator):
        stats = QueryStats()
        shared = coordinator.share(stats)
        shared.begin_phase("traversal")
        shared.record(QueryResponse(((1, 2),), False))
        shared.record(QueryResponse((), True))
        # Recordings buffer locally; a read flushes them first.
        assert shared.queries == 2
        assert shared.phase_costs == {"traversal": 2}
        shared.record(QueryResponse(((3, 4),), False))
        shared.end_phase()
        shared.flush()
        coordinator.writeback()
        assert stats.queries == 3
        assert stats.phase_costs == {"traversal": 3}
        assert stats.round_trips > 0  # the plane's chatter, written back

    def test_daily_limits_stay_per_query_under_a_budget_chunk(
        self, coordinator
    ):
        """set_lease_chunk touches budgets only: clock-coupled limits
        keep exact per-query admission."""
        clock = SimulatedClock()
        daily = DailyRateLimit(5, clock)
        shared_daily = coordinator.share(daily)
        budget_stub = coordinator.share(QueryBudget(50))
        coordinator.set_lease_chunk(10)
        assert budget_stub.lease_chunk == 10
        assert shared_daily.lease_chunk == 1
        shared_daily.admit()
        assert shared_daily.used_today == 1

    def test_set_lease_chunk_rejects_nonpositive(self, coordinator):
        with pytest.raises(ValueError):
            coordinator.set_lease_chunk(0)

    def test_clamp_collapses_tight_budgets_to_per_query(self, coordinator):
        """The conservative-admission guard: a chunk may never let the
        fleet strand more than a quarter of the remaining budget, and a
        tight budget degrades to exact per-query admission."""
        coordinator.share(QueryBudget(12))
        assert coordinator.clamp_lease_chunk(32, fleet=3) == 1
        coordinator.share(QueryBudget(100_000))
        # The tightest shared budget still governs.
        assert coordinator.clamp_lease_chunk(32, fleet=3) == 1
        with pytest.raises(ValueError):
            coordinator.clamp_lease_chunk(32, fleet=0)

    def test_clamp_leaves_roomy_budgets_alone(self):
        with LimitCoordinator() as coordinator:
            coordinator.share(QueryBudget(100_000))
            assert coordinator.clamp_lease_chunk(32, fleet=4) == 32
            # No budgets shared at all: nothing to clamp against.
        with LimitCoordinator() as coordinator:
            assert coordinator.clamp_lease_chunk(32, fleet=4) == 32


class TestLeaseExactnessProperty:
    """Satellite hypothesis property: for any interleaving of lease
    sizes, demands and flush points, the charged cost is exact --
    no over-admission ever, unused leases returned whenever no refusal
    occurred, and a refused budget reading fully charged."""

    @settings(max_examples=40, deadline=None)
    @given(
        cap=st.integers(min_value=0, max_value=60),
        clients=st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=12),  # lease chunk
                st.integers(min_value=0, max_value=25),  # demand
            ),
            min_size=1,
            max_size=4,
        ),
        schedule=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),  # client index
                st.booleans(),  # admit (True) or flush (False)
            ),
            max_size=120,
        ),
    )
    def test_any_interleaving_charges_sequential_cost(
        self, cap, clients, schedule
    ):
        from repro.crawl.coordinator import (
            SharedBudget,
            _ControlPlane,
        )

        plane = _ControlPlane()
        budget = QueryBudget(cap)
        handle = plane._add(budget)
        stubs = [
            SharedBudget(plane, handle, lease_chunk=chunk)
            for chunk, _ in clients
        ]
        demands = [demand for _, demand in clients]
        issued = [0] * len(clients)
        refused = False
        for index, is_admit in schedule:
            if index >= len(stubs):
                continue
            stub = stubs[index]
            if not is_admit:
                stub.flush()
                continue
            if issued[index] >= demands[index]:
                continue
            try:
                stub.admit()
            except QueryBudgetExhausted as exc:
                # A refusal reports the fully-charged budget.
                assert exc.issued == cap
                refused = True
            else:
                issued[index] += 1
        for stub in stubs:
            stub.flush()
        total_issued = sum(issued)
        # Never over-admitted, whatever the interleaving.
        assert total_issued <= cap
        if refused:
            # Terminal exhaustion reads fully charged, exactly as
            # per-query admission would have left it.
            assert budget.used == cap
        else:
            # Every admitted query charged once, every unused leased
            # unit returned: the exact sequential charge.
            assert budget.used == total_issued


class TestRoundTripReduction:
    """Acceptance: lease batching cuts coordinator round trips >= 2x on
    a limit-bearing plan, with byte-identical results and the exact
    same charge."""

    def crawl(self, dataset, plan, lease_chunk):
        budget = QueryBudget(100_000)
        sources = budgeted_sources(dataset, budget)
        executor = ProcessExecutor(max_workers=2, lease_chunk=lease_chunk)
        result = executor.run(
            sources, plan, CrawlSpec(shared_limits=True)
        )
        return result, budget.used, sources[0].stats.round_trips

    def test_leased_crawl_is_identical_with_far_fewer_round_trips(
        self, dataset, plan, reference
    ):
        expected, expected_charge = reference
        per_query = self.crawl(dataset, plan, 1)
        leased = self.crawl(dataset, plan, 16)
        for result, charge, _ in (per_query, leased):
            assert_identical(result, expected)
            assert charge == expected_charge
        assert per_query[2] > 0 and leased[2] > 0
        assert leased[2] * 2 <= per_query[2], (
            f"expected >= 2x fewer coordinator round trips with lease "
            f"batching, got {per_query[2]} per-query vs {leased[2]} leased"
        )

    def test_auto_chunk_is_estimator_sized(self, dataset, plan):
        from repro.crawl.coordinator import (
            DEFAULT_LEASE_CHUNK,
            MAX_LEASE_CHUNK,
            lease_chunk_for_plan,
        )

        assert lease_chunk_for_plan(plan, None) == DEFAULT_LEASE_CHUNK
        blank = CostEstimator()
        assert lease_chunk_for_plan(plan, blank) == DEFAULT_LEASE_CHUNK
        informed = CostEstimator(prior=24.0)
        assert lease_chunk_for_plan(plan, informed) == 24
        huge = CostEstimator(prior=100_000.0)
        assert lease_chunk_for_plan(plan, huge) == MAX_LEASE_CHUNK

    def test_round_trips_land_in_caller_stats(self, dataset, plan):
        budget = QueryBudget(100_000)
        sources = budgeted_sources(dataset, budget)
        assert sources[0].stats.round_trips == 0
        ProcessExecutor(max_workers=2).run(
            sources, plan, CrawlSpec(shared_limits=True, rebalance=True)
        )
        # Fleet-wide plane chatter written back into every stats object.
        totals = {source.stats.round_trips for source in sources}
        assert len(totals) == 1
        assert totals.pop() > 0

    def test_explicit_release_returns_the_prior_chunk(self, coordinator):
        """Re-leasing over an undrained lease must not strand its
        charged units: the prior chunk flows back first."""
        budget = QueryBudget(100)
        stub = coordinator.share(budget)
        first = stub.lease(8)
        assert first.take()
        stub.lease(8)  # prior lease: 7 unused units released, not lost
        stub.flush()
        assert stub.used == 1
