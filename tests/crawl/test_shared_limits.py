"""Shared-limit control plane: exact accounting across processes.

The process backend's ``shared_limits=True`` mode must keep every
interface limit *globally* exact -- one authoritative
``QueryBudget``/``DailyRateLimit``/``SimulatedClock``/``QueryStats``
admits and accounts for the whole pool -- while the merged result stays
byte-identical to the sequential executor on limit-bearing plans.
These tests pin:

* the coordinator primitives (exactly-once admission, identity-memoised
  sharing, write-back, source rewiring);
* byte-parity of the process backend under ``shared_limits`` across
  static / rebalanced / subtree-sharded dispatch, with the charged cost
  equal to the sequential count exactly;
* limit-exhaustion behaviour: a budget that runs out mid-crawl raises
  (or, with ``allow_partial``, truncates) identically across
  sequential, thread and shared-limit process execution, never
  over-admitting by even one query;
* a hypothesis property: no interleaving of racing admitters can
  double-admit -- exactly ``min(budget, attempts)`` admissions succeed.
"""

import pickle
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crawl.base import ProgressAggregator, SessionState
from repro.crawl.coordinator import (
    LimitCoordinator,
    SharedBudget,
    SharedClock,
    SharedDailyLimit,
    SharedStats,
)
from repro.crawl.executors import ProcessExecutor, make_executor
from repro.crawl.partition import crawl_partitioned, partition_space
from repro.crawl.rebalance import CostEstimator
from repro.dataspace.dataset import Dataset
from repro.dataspace.space import DataSpace
from repro.exceptions import QueryBudgetExhausted
from repro.server.client import CachingClient, PatientClient
from repro.server.latency import LatencySource
from repro.server.limits import DailyRateLimit, QueryBudget, SimulatedClock
from repro.server.response import QueryResponse
from repro.server.server import TopKServer
from repro.server.stats import QueryStats

SESSIONS = 3

#: Shared-limit dispatch shapes the parity contract covers.
SHARED_MATRIX = [
    pytest.param({}, id="static"),
    pytest.param({"rebalance": True}, id="rebalance"),
    pytest.param(
        {"rebalance": True, "shard_subtrees": 4}, id="rebalance-sharded"
    ),
]


def limited_dataset(seed=3, n=300):
    rng = np.random.default_rng(seed)
    space = DataSpace.mixed(
        [("make", 6), ("body", 3)],
        ["price"],
        numeric_bounds=[(0, 499)],
    )
    rows = np.column_stack(
        [
            rng.integers(1, 7, n),
            rng.integers(1, 4, n),
            rng.integers(0, 500, n),
        ]
    ).astype(np.int64)
    return Dataset(space, rows)


@pytest.fixture(scope="module")
def dataset():
    return limited_dataset()


@pytest.fixture(scope="module")
def plan(dataset):
    return partition_space(dataset.space, SESSIONS)


def budgeted_sources(dataset, budget):
    """One server per session, all admitting against one budget."""
    return [
        TopKServer(dataset, k=32, limits=[budget]) for _ in range(SESSIONS)
    ]


@pytest.fixture(scope="module")
def reference(dataset, plan):
    """Sequential crawl of the limit-bearing plan + its exact charge."""
    budget = QueryBudget(100_000)
    result = crawl_partitioned(budgeted_sources(dataset, budget), plan)
    return result, budget.used


@pytest.fixture(scope="module")
def coordinator():
    with LimitCoordinator() as running:
        yield running


def assert_identical(result, reference):
    assert result.rows == reference.rows
    assert result.cost == reference.cost
    assert result.complete == reference.complete
    assert result.session_costs() == reference.session_costs()
    assert result.progress == reference.progress


class TestCoordinatorPrimitives:
    def test_share_is_identity_memoised(self, coordinator):
        budget = QueryBudget(5)
        stub = coordinator.share(budget)
        assert isinstance(stub, SharedBudget)
        assert coordinator.share(budget) is stub
        # A different object of the same shape gets its own handle.
        assert coordinator.share(QueryBudget(5)) is not stub

    def test_budget_admits_exactly_once_and_writes_back(self, coordinator):
        budget = QueryBudget(4)
        stub = coordinator.share(budget)
        for _ in range(4):
            stub.admit()
        with pytest.raises(QueryBudgetExhausted) as excinfo:
            stub.admit()
        assert excinfo.value.issued == 4
        assert stub.used == 4
        assert stub.remaining == 0
        # The caller's object is untouched until write-back...
        assert budget.used == 0
        coordinator.writeback()
        # ...then reads the authoritative counters exactly.
        assert budget.used == 4
        assert budget.remaining == 0

    def test_stub_pickles_and_still_charges_the_one_budget(self, coordinator):
        budget = QueryBudget(2)
        stub = coordinator.share(budget)
        clone = pickle.loads(pickle.dumps(stub))
        stub.admit()
        clone.admit()
        with pytest.raises(QueryBudgetExhausted):
            clone.admit()
        assert stub.used == 2

    def test_daily_limit_rolls_over_through_the_shared_clock(
        self, coordinator
    ):
        clock = SimulatedClock()
        daily = DailyRateLimit(3, clock)
        shared_daily = coordinator.share(daily)
        shared_clock = coordinator.share(clock)
        assert isinstance(shared_daily, SharedDailyLimit)
        assert isinstance(shared_clock, SharedClock)
        for _ in range(3):
            shared_daily.admit()
        with pytest.raises(QueryBudgetExhausted):
            shared_daily.admit()
        assert shared_daily.used_today == 3
        assert shared_clock.sleep_until_next_day() == 1
        assert shared_daily.remaining_today == 3
        shared_daily.admit()
        coordinator.writeback()
        assert clock.day == 1
        assert daily.used_today == 1

    def test_daily_limit_shares_its_clock_automatically(self, coordinator):
        """Sharing a daily limit shares its clock under the same handle."""
        clock = SimulatedClock()
        daily = DailyRateLimit(2, clock)
        shared_daily = coordinator.share(daily)
        shared_clock = coordinator.share(clock)
        shared_daily.admit()
        shared_daily.admit()
        shared_clock.sleep_until_next_day()
        shared_daily.admit()  # would raise if the clocks were distinct
        assert shared_daily.used_today == 1

    def test_shared_stats_record_and_snapshot(self, coordinator):
        stats = QueryStats()
        shared = coordinator.share(stats)
        assert isinstance(shared, SharedStats)
        shared.begin_phase("traversal")
        shared.record(QueryResponse((), True))
        shared.record(QueryResponse(((1, 2),), False))
        shared.end_phase()
        assert shared.queries == 2
        assert shared.overflowed == 1
        assert shared.resolved == 1
        assert shared.tuples_returned == 1
        assert shared.phase_costs == {"traversal": 2}
        snapshot = shared.snapshot()
        assert isinstance(snapshot, QueryStats)
        assert snapshot.queries == 2
        assert "2 queries" in str(shared)
        coordinator.writeback()
        assert stats.queries == 2
        assert stats.phase_costs == {"traversal": 2}

    def test_unknown_limit_type_is_a_clear_error(self, coordinator):
        class OddLimit:
            def admit(self):
                pass

        with pytest.raises(TypeError, match="control plane"):
            coordinator.share(OddLimit())

    def test_rewire_walks_wrappers_and_preserves_originals(
        self, coordinator, dataset
    ):
        budget = QueryBudget(50)
        server = TopKServer(dataset, k=32, limits=[budget])
        source = LatencySource(CachingClient(server), 0.0)
        (rewired,) = coordinator.share_sources([source])
        # New wrapper objects down the rewired chain, same originals.
        assert rewired is not source
        assert rewired._source is not source._source
        inner = rewired._source._server
        assert isinstance(inner._limits[0], SharedBudget)
        assert isinstance(inner.stats, SharedStats)
        assert source._source._server is server
        assert server._limits[0] is budget
        # Queries through the rewired stack charge the shared budget.
        from repro.query.query import Query

        rewired.run(Query.full(dataset.space))
        assert inner._limits[0].used == 1
        assert budget.used == 0  # original untouched until writeback

    def test_rewire_shares_a_patient_clients_clock(self, coordinator, dataset):
        clock = SimulatedClock()
        server = TopKServer(
            dataset, k=32, limits=[DailyRateLimit(1000, clock)]
        )
        patient = PatientClient(server, clock)
        (rewired,) = coordinator.share_sources([patient])
        assert isinstance(rewired._clock, SharedClock)
        assert patient._clock is clock

    def test_plane_property_requires_start(self):
        idle = LimitCoordinator()
        with pytest.raises(RuntimeError, match="not started"):
            idle.plane


class TestProcessSharedParity:
    """Acceptance: byte-identical to sequential on a limit-bearing plan,
    and the total charged cost equals the sequential count exactly."""

    @pytest.mark.parametrize("kwargs", SHARED_MATRIX)
    def test_limit_bearing_plan_matches_sequential(
        self, kwargs, dataset, plan, reference
    ):
        expected, expected_charge = reference
        budget = QueryBudget(100_000)
        result = ProcessExecutor(max_workers=2).run(
            budgeted_sources(dataset, budget),
            plan,
            shared_limits=True,
            **kwargs,
        )
        assert_identical(result, expected)
        assert budget.used == expected_charge

    def test_server_stats_are_exact_per_source(self, dataset, plan):
        seq_sources = budgeted_sources(dataset, QueryBudget(100_000))
        crawl_partitioned(seq_sources, plan)
        shared_budget = QueryBudget(100_000)
        shared_sources = budgeted_sources(dataset, shared_budget)
        ProcessExecutor(max_workers=2).run(
            shared_sources, plan, shared_limits=True, rebalance=True
        )
        for sequential, shared in zip(seq_sources, shared_sources):
            assert shared.stats.queries == sequential.stats.queries
            assert shared.stats.resolved == sequential.stats.resolved
            assert (
                shared.stats.tuples_returned
                == sequential.stats.tuples_returned
            )

    def test_estimator_receives_exact_observed_costs(
        self, dataset, plan, reference
    ):
        expected, _ = reference
        estimator = CostEstimator()
        result = ProcessExecutor(max_workers=2).run(
            budgeted_sources(dataset, QueryBudget(100_000)),
            plan,
            shared_limits=True,
            rebalance=True,
            estimator=estimator,
        )
        assert_identical(result, expected)
        # Every region's exact cost crossed the process boundary back.
        assert estimator.total_observed() == expected.cost
        assert len(estimator.observed()) == len(plan.regions)

    @pytest.mark.parametrize("kwargs", SHARED_MATRIX)
    def test_sessions_reach_terminal_states(self, kwargs, dataset, plan):
        aggregator = ProgressAggregator(SESSIONS)
        merged = ProcessExecutor(max_workers=2).run(
            budgeted_sources(dataset, QueryBudget(100_000)),
            plan,
            shared_limits=True,
            aggregator=aggregator,
            **kwargs,
        )
        assert aggregator.states() == (SessionState.DONE,) * SESSIONS
        totals = aggregator.totals()
        assert totals.queries == merged.cost
        assert totals.tuples == merged.tuples_extracted


class TestLimitExhaustion:
    """Satellite: a budget that runs out mid-crawl behaves identically
    across sequential, thread and shared-limit process execution."""

    CAP = 12

    BACKENDS = [
        pytest.param("sequential", {}, id="sequential"),
        pytest.param("thread", {}, id="thread"),
        pytest.param("thread", {"rebalance": True}, id="thread-rebalance"),
        pytest.param("async", {}, id="async"),
        pytest.param(
            "process",
            {"shared_limits": True, "rebalance": True},
            id="process-shared",
        ),
        pytest.param(
            "process",
            {"shared_limits": True, "rebalance": True, "shard_subtrees": 4},
            id="process-shared-sharded",
        ),
    ]

    @pytest.mark.parametrize("name,kwargs", BACKENDS)
    def test_exhaustion_raises_and_never_over_admits(
        self, name, kwargs, dataset, plan
    ):
        budget = QueryBudget(self.CAP)
        executor = make_executor(name, max_workers=SESSIONS)
        with pytest.raises(QueryBudgetExhausted) as excinfo:
            executor.run(budgeted_sources(dataset, budget), plan, **kwargs)
        assert excinfo.value.issued == self.CAP
        assert budget.used == self.CAP
        assert budget.remaining == 0

    @pytest.mark.parametrize("name,kwargs", BACKENDS)
    def test_allow_partial_truncates_at_the_exact_cap(
        self, name, kwargs, dataset, plan
    ):
        budget = QueryBudget(self.CAP)
        executor = make_executor(name, max_workers=SESSIONS)
        result = executor.run(
            budgeted_sources(dataset, budget),
            plan,
            allow_partial=True,
            **kwargs,
        )
        assert not result.complete
        assert budget.used == self.CAP
        assert budget.remaining == 0

    def test_without_sharing_each_worker_over_admits(self, dataset, plan):
        """The bug the control plane fixes, pinned as a contrast: plain
        per-worker budget copies admit independently, so the pool as a
        whole issues more queries than the budget allows."""
        budget = QueryBudget(self.CAP)
        result = ProcessExecutor(max_workers=2).run(
            budgeted_sources(dataset, budget),
            plan,
            allow_partial=True,
            rebalance=True,
        )
        # Each worker's copy stopped at CAP, but the fleet's total
        # spend exceeded it -- and the caller's budget saw nothing.
        assert budget.used == 0
        assert result.cost > 0


class TestNoDoubleAdmission:
    """Hypothesis: racing admitters can never over-admit a shared budget."""

    @settings(max_examples=15, deadline=None)
    @given(
        budget_cap=st.integers(min_value=0, max_value=40),
        admitters=st.integers(min_value=1, max_value=4),
        attempts=st.integers(min_value=0, max_value=20),
    )
    def test_exactly_min_budget_attempts_admissions_succeed(
        self, coordinator, budget_cap, admitters, attempts
    ):
        budget = QueryBudget(budget_cap)
        stub = coordinator.share(budget)
        # Each admitter works through its own deserialised stub, the
        # worker-process shape, all charging one authoritative counter.
        stubs = [pickle.loads(pickle.dumps(stub)) for _ in range(admitters)]
        admitted = []

        def admitter(client):
            count = 0
            for _ in range(attempts):
                try:
                    client.admit()
                except QueryBudgetExhausted:
                    continue
                count += 1
            admitted.append(count)

        threads = [
            threading.Thread(target=admitter, args=(client,))
            for client in stubs
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        total_attempts = admitters * attempts
        assert sum(admitted) == min(budget_cap, total_attempts)
        assert stub.used == min(budget_cap, total_attempts)

    def test_cross_process_admissions_are_exactly_once(self, coordinator):
        """The same property with real worker processes racing."""
        from concurrent.futures import ProcessPoolExecutor as Pool

        budget = QueryBudget(10)
        stub = coordinator.share(budget)
        with Pool(max_workers=3) as pool:
            admitted = sum(pool.map(_admit_up_to, [stub] * 3, [6] * 3))
        assert admitted == 10
        assert stub.used == 10


def _admit_up_to(stub, attempts):
    count = 0
    for _ in range(attempts):
        try:
            stub.admit()
        except QueryBudgetExhausted:
            continue
        count += 1
    return count


class TestAbortDrain:
    """abort() lets surviving workers drain, never crash."""

    def test_complete_after_abort_is_silently_dropped(self, plan):
        from repro.crawl.rebalance import WorkStealingScheduler

        scheduler = WorkStealingScheduler(plan.bundles)
        task = scheduler.acquire(0)
        scheduler.abort()
        # The abort wrote the in-flight task off; its worker reporting
        # back afterwards must not trip the exactly-once check.
        scheduler.complete(task, 5)
        scheduler.fail(task)
        assert scheduler.acquire(0) is None
        assert task.key in scheduler.failed_keys()
        assert scheduler.completed_costs() == {}

    def test_publish_and_shard_completion_after_abort(self, plan):
        from repro.crawl.rebalance import SubtreeScheduler

        scheduler = SubtreeScheduler(plan.bundles)
        task = scheduler.acquire(0)
        scheduler.abort()
        assert scheduler.publish(task, _FakePlan()) is None
        assert scheduler.acquire(0, block=False) is None

    def test_double_complete_still_raises_without_abort(self, plan):
        from repro.crawl.rebalance import WorkStealingScheduler
        from repro.exceptions import AlgorithmInvariantError

        scheduler = WorkStealingScheduler(plan.bundles)
        task = scheduler.acquire(0)
        scheduler.complete(task, 5)
        with pytest.raises(AlgorithmInvariantError):
            scheduler.complete(task, 5)


class _FakePlan:
    shards = (object(),)


class TestRewireValidation:
    def test_unrewireable_source_is_a_clear_error(self, coordinator):
        class OpaqueSource:
            def run(self, query):
                raise NotImplementedError

        with pytest.raises(TypeError, match="could not rewire"):
            coordinator.share_sources([OpaqueSource()])

    def test_web_session_stack_is_rewired(self, coordinator, dataset):
        from repro.web.adapter import WebSession
        from repro.web.site import HiddenWebSite

        budget = QueryBudget(1000)
        session = WebSession(
            HiddenWebSite(TopKServer(dataset, k=32, limits=[budget]))
        )
        (rewired,) = coordinator.share_sources([session])
        assert rewired is not session
        inner = rewired._site._server
        assert isinstance(inner._limits[0], SharedBudget)
