"""Incremental re-crawl tests: diffs are exact bag deltas."""

import numpy as np
import pytest

from repro.crawl.hybrid import Hybrid
from repro.crawl.incremental import diff_snapshots, recrawl
from repro.dataspace.dataset import Dataset
from repro.dataspace.space import DataSpace
from repro.exceptions import SchemaError
from repro.server.server import TopKServer


@pytest.fixture
def space():
    return DataSpace.mixed([("make", 3)], ["price"])


def dataset_from(space, rows):
    return Dataset(space, np.asarray(rows, dtype=np.int64))


class TestDiffSnapshots:
    def test_identical_bags_unchanged(self):
        rows = [(1, 10), (2, 20), (2, 20)]
        diff = diff_snapshots(rows, list(rows))
        assert diff.unchanged
        assert str(diff) == "SnapshotDiff(unchanged)"

    def test_pure_additions(self):
        diff = diff_snapshots([(1, 10)], [(1, 10), (2, 20)])
        assert diff.tuples_added == 1 and diff.tuples_removed == 0
        assert diff.added[(2, 20)] == 1

    def test_pure_removals(self):
        diff = diff_snapshots([(1, 10), (2, 20)], [(2, 20)])
        assert diff.removed[(1, 10)] == 1

    def test_multiplicity_changes(self):
        diff = diff_snapshots([(1, 10)] * 2, [(1, 10)] * 5)
        assert diff.added[(1, 10)] == 3 and not diff.removed

    def test_value_change_is_remove_plus_add(self):
        diff = diff_snapshots([(1, 10)], [(1, 12)])
        assert diff.removed[(1, 10)] == 1
        assert diff.added[(1, 12)] == 1

    def test_order_is_irrelevant(self):
        a = [(1, 10), (2, 20), (3, 30)]
        b = list(reversed(a))
        assert diff_snapshots(a, b).unchanged


class TestRecrawl:
    def test_detects_inserts_and_deletes(self, space):
        before = dataset_from(space, [(1, 10), (1, 10), (2, 20), (3, 30)])
        after = dataset_from(
            space, [(1, 10), (2, 20), (2, 25), (3, 30), (3, 30)]
        )
        first = Hybrid(TopKServer(before, k=2)).crawl()
        new_result, diff = recrawl(TopKServer(after, k=2), first)
        assert new_result.complete
        assert diff.removed == {(1, 10): 1}
        assert diff.added == {(2, 25): 1, (3, 30): 1}

    def test_no_change_reports_unchanged(self, space):
        data = dataset_from(space, [(1, 10), (2, 20)])
        first = Hybrid(TopKServer(data, k=2)).crawl()
        _, diff = recrawl(TopKServer(data, k=2), first)
        assert diff.unchanged

    def test_rejects_partial_previous(self, space):
        from repro.server.limits import QueryBudget

        data = dataset_from(
            space, [(m, v) for m in (1, 2, 3) for v in range(5)]
        )
        limited = TopKServer(data, k=2, limits=[QueryBudget(2)])
        partial = Hybrid(limited).crawl(allow_partial=True)
        assert not partial.complete
        with pytest.raises(SchemaError):
            recrawl(TopKServer(data, k=2), partial)

    def test_rejects_schema_change(self, space):
        data = dataset_from(space, [(1, 10)])
        first = Hybrid(TopKServer(data, k=2)).crawl()
        other_space = DataSpace.mixed([("make", 4)], ["price"])
        other = Dataset(other_space, np.asarray([(1, 10)], dtype=np.int64))
        with pytest.raises(SchemaError):
            recrawl(TopKServer(other, k=2), first)

    def test_diff_composes_over_generations(self, space):
        gen0 = dataset_from(space, [(1, 10)])
        gen1 = dataset_from(space, [(1, 10), (2, 20)])
        gen2 = dataset_from(space, [(2, 20), (2, 20)])
        snap0 = Hybrid(TopKServer(gen0, k=2)).crawl()
        snap1, diff01 = recrawl(TopKServer(gen1, k=2), snap0)
        snap2, diff12 = recrawl(TopKServer(gen2, k=2), snap1)
        # Composition: applying both diffs to gen0 yields gen2.
        from collections import Counter

        bag = Counter(snap0.rows)
        bag = bag + diff01.added - diff01.removed
        bag = bag + diff12.added - diff12.removed
        assert bag == Counter(snap2.rows)

    def test_works_over_web_session(self, space):
        """Maintenance loop end to end through the HTML interface."""
        from repro.server.client import CachingClient
        from repro.web.adapter import WebSession
        from repro.web.site import HiddenWebSite

        before = dataset_from(space, [(1, 10), (2, 20)])
        after = dataset_from(space, [(1, 10), (3, 30)])
        first = Hybrid(
            CachingClient(WebSession(HiddenWebSite(TopKServer(before, k=2))))
        ).crawl()
        session = WebSession(HiddenWebSite(TopKServer(after, k=2)))
        _, diff = recrawl(session, first)
        assert diff.added == {(3, 30): 1}
        assert diff.removed == {(2, 20): 1}
