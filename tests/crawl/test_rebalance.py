"""Scheduler and estimator tests, including the accounting property.

The work-stealing scheduler may hand regions to workers in any order,
but its books must stay exact: every region is handed out exactly once,
completions are accepted exactly once, and the observed total cost is
the precise sum of the per-region costs regardless of the schedule.  A
hypothesis property test drives arbitrary acquire/complete/fail
interleavings through the scheduler to pin that down.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crawl.rebalance import (
    CostEstimator,
    RegionTask,
    WorkStealingScheduler,
)
from repro.exceptions import AlgorithmInvariantError
from repro.server.stats import QueryStats

# The scheduler only reads plan.bundles, and only iterates the regions;
# opaque string tokens stand in for region queries here.


def bundles_of(sizes):
    return tuple(
        tuple(f"region-{s}-{i}" for i in range(size))
        for s, size in enumerate(sizes)
    )


class TestCostEstimator:
    def test_estimate_prefers_observed_then_prior_then_mean(self):
        estimator = CostEstimator(prior=7.0, priors={(0, 1): 3.0})
        assert estimator.estimate((0, 0)) == 7.0  # flat prior
        assert estimator.estimate((0, 1)) == 3.0  # supplied prior
        estimator.record((1, 0), 10)
        estimator.record((1, 1), 20)
        assert estimator.estimate((1, 0)) == 10.0  # observed wins
        assert estimator.estimate((0, 0)) == 15.0  # running mean
        assert estimator.estimate((0, 1)) == 3.0  # prior still wins
        assert estimator.total_observed() == 30
        assert estimator.observed() == {(1, 0): 10, (1, 1): 20}

    def test_from_stats_prior_is_mean_per_region(self):
        stats = QueryStats()
        stats.queries = 120
        estimator = CostEstimator.from_stats(stats, 6)
        assert estimator.estimate((0, 0)) == 20.0

    def test_rejects_nonpositive_prior(self):
        with pytest.raises(ValueError):
            CostEstimator(prior=0)


class TestScheduler:
    def test_own_queue_drains_in_plan_order(self):
        scheduler = WorkStealingScheduler(bundles_of([3]))
        order = [scheduler.acquire(0).index for _ in range(3)]
        assert order == [0, 1, 2]
        assert scheduler.acquire(0) is None
        assert scheduler.steals() == []

    def test_steals_tail_of_costliest_victim(self):
        # Session 1's queue is estimated far more expensive, so an idle
        # session-0 worker must steal from it -- and from the tail.
        priors = {(1, 0): 100.0, (1, 1): 100.0, (0, 0): 1.0}
        scheduler = WorkStealingScheduler(
            bundles_of([1, 2]), CostEstimator(priors=priors)
        )
        first = scheduler.acquire(0)
        assert first.key == (0, 0)  # own queue first
        stolen = scheduler.acquire(0)
        assert stolen.session == 1
        assert stolen.index == 1  # the tail region
        assert scheduler.steals() == [((1, 1), 0)]

    def test_adaptive_victim_choice_follows_observed_costs(self):
        # Prior says both sessions look equal; observing a huge cost on
        # a session-1 region drags the running mean up, so the thief
        # targets the session with more remaining estimated work.
        scheduler = WorkStealingScheduler(bundles_of([2, 2, 0]))
        own = scheduler.acquire(1)
        scheduler.complete(own, 1000)  # every estimate is now ~1000
        # A session-2 worker (empty queue) must steal.  Per-region
        # estimates are equal, so the victim is the session with more
        # queued regions: session 0 (2 queued) over session 1 (1).
        stolen = scheduler.acquire(2)
        assert stolen.session == 0

    def test_completion_accounting_is_guarded(self):
        scheduler = WorkStealingScheduler(bundles_of([1]))
        task = scheduler.acquire(0)
        scheduler.complete(task, 5)
        with pytest.raises(AlgorithmInvariantError):
            scheduler.complete(task, 5)  # double completion
        phantom = RegionTask(0, 9, "phantom")
        with pytest.raises(AlgorithmInvariantError):
            scheduler.fail(phantom)  # never handed out

    def test_fail_path_accounts_separately(self):
        scheduler = WorkStealingScheduler(bundles_of([2]))
        first = scheduler.acquire(0)
        second = scheduler.acquire(0)
        scheduler.fail(first)
        scheduler.complete(second, 4)
        assert scheduler.done()
        assert scheduler.failed_keys() == {first.key}
        assert scheduler.completed_costs() == {second.key: 4}
        assert scheduler.total_observed_cost() == 4


@settings(max_examples=200, deadline=None)
@given(data=st.data())
def test_any_schedule_keeps_cost_accounting_exact(data):
    """Property: arbitrary interleavings, exact books.

    Hypothesis picks the bundle shape, the true cost of every region,
    and then drives an arbitrary schedule: at each step either some
    worker acquires (from a home session hypothesis chooses, valid or
    not) or an in-flight region completes/fails.  Whatever happens:

    * each region is handed out exactly once;
    * the scheduler drains fully, and afterwards ``acquire`` is dry;
    * the observed total equals the sum of the true costs of exactly
      the completed regions.
    """
    sessions = data.draw(st.integers(1, 4), label="sessions")
    sizes = data.draw(
        st.lists(st.integers(0, 4), min_size=sessions, max_size=sessions),
        label="bundle sizes",
    )
    bundles = bundles_of(sizes)
    total = sum(sizes)
    costs = {
        (s, i): data.draw(st.integers(0, 50), label=f"cost[{s},{i}]")
        for s, bundle in enumerate(bundles)
        for i in range(len(bundle))
    }
    scheduler = WorkStealingScheduler(bundles)
    assert scheduler.total_tasks == total

    in_flight: list[RegionTask] = []
    handed_out: list[tuple[int, int]] = []
    completed: set[tuple[int, int]] = set()
    failed: set[tuple[int, int]] = set()
    while not scheduler.done() or in_flight:
        acquire_possible = scheduler.remaining() > len(in_flight)
        if in_flight and (
            not acquire_possible or data.draw(st.booleans(), label="finish?")
        ):
            victim = in_flight.pop(
                data.draw(st.integers(0, len(in_flight) - 1), label="which")
            )
            if data.draw(st.booleans(), label="fail?"):
                scheduler.fail(victim)
                failed.add(victim.key)
            else:
                scheduler.complete(victim, costs[victim.key])
                completed.add(victim.key)
        else:
            home = data.draw(st.integers(-1, sessions), label="home session")
            task = scheduler.acquire(None if home < 0 else home)
            assert task is not None
            in_flight.append(task)
            handed_out.append(task.key)

    # Exactly-once hand-out, full drain, exact totals.
    assert sorted(handed_out) == sorted(costs)
    assert scheduler.acquire(0) is None
    assert scheduler.acquire(None) is None
    assert completed | failed == set(costs)
    assert scheduler.total_observed_cost() == sum(
        costs[key] for key in completed
    )
    assert scheduler.completed_costs() == {
        key: costs[key] for key in completed
    }
    assert scheduler.failed_keys() == failed


class TestAbortHardening:
    """Satellite regression suite: abort() is idempotent and safe
    against workers blocked in (or racing) a concurrent acquire."""

    def test_abort_after_abort_is_a_noop(self):
        scheduler = WorkStealingScheduler(bundles_of([2, 2]))
        task = scheduler.acquire(0)
        scheduler.complete(task, 3)
        scheduler.abort()
        failed_after_first = scheduler.failed_keys()
        costs_after_first = scheduler.completed_costs()
        scheduler.abort()  # must not re-fail or wipe anything
        assert scheduler.failed_keys() == failed_after_first
        assert scheduler.completed_costs() == costs_after_first
        assert costs_after_first == {task.key: 3}
        assert scheduler.acquire(0) is None

    def test_subtree_abort_after_abort_is_a_noop(self):
        from repro.crawl.rebalance import SubtreeScheduler

        scheduler = SubtreeScheduler(bundles_of([2, 1]))
        scheduler.acquire(0)  # leave one region presplitting
        scheduler.abort()
        snapshot = (scheduler.failed_keys(), scheduler.completed_costs())
        scheduler.abort()
        after = (scheduler.failed_keys(), scheduler.completed_costs())
        assert after == snapshot
        assert scheduler.acquire(0, block=False) is None
        assert scheduler.acquire(1, block=True) is None

    def test_acquire_after_abort_returns_none_even_with_queued_work(self):
        scheduler = WorkStealingScheduler(bundles_of([3]))
        scheduler.abort()
        assert scheduler.acquire(0) is None
        assert scheduler.acquire(None, block=False) is None
        assert scheduler.done()

    def test_abort_wakes_a_blocked_acquire(self):
        """The abort-during-acquire race: a worker blocked in a
        SubtreeScheduler.acquire must observe the abort and drain out
        instead of waiting forever."""
        import threading

        from repro.crawl.rebalance import SubtreeScheduler

        scheduler = SubtreeScheduler(bundles_of([1]))
        assert scheduler.acquire(0) is not None  # region now in flight
        results = []

        def blocked_worker():
            results.append(scheduler.acquire(0, block=True))

        worker = threading.Thread(target=blocked_worker)
        worker.start()
        # Wait until the worker is actually parked in the condition.
        deadline = 50
        while deadline and not scheduler._cond._waiters:  # noqa: SLF001
            deadline -= 1
            threading.Event().wait(0.01)
        scheduler.abort()
        worker.join(timeout=5.0)
        assert not worker.is_alive(), "abort did not wake the waiter"
        assert results == [None]

    def test_complete_region_after_abort_is_dropped(self):
        from repro.crawl.rebalance import SubtreeScheduler

        scheduler = SubtreeScheduler(bundles_of([1, 1]))
        task = scheduler.acquire(0)

        class _Plan:
            shards = ()

        completion = scheduler.publish(task, _Plan())
        assert completion is not None  # zero-shard plan merges directly
        scheduler.abort()
        scheduler.complete_region(task.key, 99)  # written off: dropped
        assert scheduler.completed_costs() == {}
        assert task.key in scheduler.failed_keys()

    def test_block_flag_is_accepted_by_the_one_level_scheduler(self):
        scheduler = WorkStealingScheduler(bundles_of([1]))
        task = scheduler.acquire(None, block=False)
        assert task is not None
        scheduler.complete(task, 1)
        assert scheduler.acquire(None, block=False) is None
