"""Tests for the crawler base machinery: results, progress, budgets."""

import pytest

from repro.crawl.base import ProgressPoint
from repro.crawl.hybrid import Hybrid
from repro.crawl.rank_shrink import RankShrink
from repro.datasets.synthetic import random_dataset
from repro.dataspace.space import DataSpace
from repro.exceptions import AlgorithmInvariantError, QueryBudgetExhausted
from repro.server.client import CachingClient
from repro.server.limits import QueryBudget
from repro.server.server import TopKServer


@pytest.fixture
def dataset():
    return random_dataset(
        DataSpace.numeric(2), 200, seed=2, numeric_range=(0, 60)
    )


class TestCrawlResult:
    def test_metadata(self, dataset):
        result = RankShrink(TopKServer(dataset, k=8)).crawl()
        assert result.algorithm == "rank-shrink"
        assert result.complete
        assert result.tuples_extracted == dataset.n
        assert "rank-shrink" in repr(result)

    def test_as_dataset_round_trip(self, dataset):
        result = RankShrink(TopKServer(dataset, k=8)).crawl()
        assert result.as_dataset() == dataset

    def test_cost_matches_client(self, dataset):
        crawler = RankShrink(TopKServer(dataset, k=8))
        result = crawler.crawl()
        assert (
            result.cost == crawler.client.cost == len(crawler.client.history)
        )


class TestProgressLog:
    def test_progress_is_monotone(self, dataset):
        result = RankShrink(TopKServer(dataset, k=8)).crawl()
        queries = [p.queries for p in result.progress]
        tuples = [p.tuples for p in result.progress]
        assert queries == sorted(queries)
        assert tuples == sorted(tuples)

    def test_progress_endpoints(self, dataset):
        result = RankShrink(TopKServer(dataset, k=8)).crawl()
        assert result.progress[0] == ProgressPoint(0, 0)
        assert result.progress[-1].queries == result.cost
        assert result.progress[-1].tuples == result.tuples_extracted

    def test_fractions_normalised(self, dataset):
        result = RankShrink(TopKServer(dataset, k=8)).crawl()
        fractions = result.progress_fractions()
        assert fractions[-1] == (1.0, 1.0)
        assert all(0.0 <= q <= 1.0 and 0.0 <= t <= 1.0 for q, t in fractions)


class TestBudgets:
    def test_budget_propagates_by_default(self, dataset):
        server = TopKServer(dataset, k=8, limits=[QueryBudget(3)])
        with pytest.raises(QueryBudgetExhausted):
            RankShrink(server).crawl()

    def test_allow_partial(self, dataset):
        server = TopKServer(dataset, k=8, limits=[QueryBudget(3)])
        result = RankShrink(server).crawl(allow_partial=True)
        assert not result.complete
        assert result.cost <= 3
        assert result.tuples_extracted < dataset.n

    def test_resume_with_shared_client(self, dataset):
        """Budgeted crawls resume for free over the shared cache."""
        budget = QueryBudget(5)
        server = TopKServer(dataset, k=8, limits=[budget])
        client = CachingClient(server)
        partial = RankShrink(client).crawl(allow_partial=True)
        assert not partial.complete
        budget.refill(10_000)
        finished = RankShrink(client).crawl()
        assert finished.complete
        assert finished.tuples_extracted == dataset.n
        # The resumed run replayed the prefix from the cache: total server
        # queries stayed within one budget-worth plus the remainder.
        assert server.stats.queries == client.cost

    def test_max_queries_cap_triggers(self, dataset):
        crawler = RankShrink(TopKServer(dataset, k=8), max_queries=2)
        with pytest.raises(AlgorithmInvariantError):
            crawler.crawl()

    def test_single_use_enforced(self, dataset):
        crawler = Hybrid(TopKServer(dataset, k=8))
        crawler.crawl()
        with pytest.raises(AlgorithmInvariantError):
            crawler.crawl()
