"""Tests for the Section 1.3 attribute-dependency pruning heuristic."""

import numpy as np
import pytest

from repro.crawl.dependency import (
    DependencyFilteringClient,
    PairwiseDependencyOracle,
)
from repro.crawl.dfs import DepthFirstSearch
from repro.crawl.hybrid import Hybrid
from repro.crawl.verify import assert_complete
from repro.dataspace.dataset import Dataset
from repro.dataspace.space import DataSpace
from repro.exceptions import SchemaError
from repro.query.query import Query
from repro.server.server import TopKServer
from tests.conftest import make_dataset


@pytest.fixture
def space():
    return DataSpace.categorical([3, 3])


@pytest.fixture
def dataset(space):
    # Value pair (A1=1, A2=3) and (A1=3, A2=1) never occur.
    rows = []
    for a in range(1, 4):
        for b in range(1, 4):
            if (a, b) in ((1, 3), (3, 1)):
                continue
            rows.extend([[a, b]] * 4)
    return make_dataset(space, rows)


class TestOracle:
    def test_forbid_and_check(self, space):
        oracle = PairwiseDependencyOracle([(0, 1, 1, 3)])
        q = Query.full(space).with_value(0, 1).with_value(1, 3)
        assert oracle.certainly_empty(q)
        # A wildcard keeps the query possibly non-empty: conservative.
        assert not oracle.certainly_empty(Query.full(space).with_value(0, 1))

    def test_symmetric_storage(self, space):
        oracle = PairwiseDependencyOracle()
        oracle.forbid(1, 3, 0, 1)  # reversed attribute order
        q = Query.full(space).with_value(0, 1).with_value(1, 3)
        assert oracle.certainly_empty(q)
        assert len(oracle) == 1

    def test_self_dependency_rejected(self):
        with pytest.raises(SchemaError):
            PairwiseDependencyOracle([(0, 1, 0, 2)])

    def test_from_dataset_columns(self, dataset):
        oracle = PairwiseDependencyOracle.from_dataset_columns(dataset, 0, 1)
        assert len(oracle) == 2  # the two absent combinations
        q = Query.full(dataset.space).with_value(0, 1).with_value(1, 3)
        assert oracle.certainly_empty(q)

    def test_from_dataset_rejects_numeric(self):
        space = DataSpace.mixed([("c", 2)], ["x"])
        ds = make_dataset(space, [[1, 5]])
        with pytest.raises(SchemaError):
            PairwiseDependencyOracle.from_dataset_columns(ds, 0, 1)


class TestFilteringClient:
    def test_correctness_preserved_and_cost_reduced(self, dataset):
        oracle = PairwiseDependencyOracle.from_dataset_columns(dataset, 0, 1)
        plain_server = TopKServer(dataset, k=4)
        plain = DepthFirstSearch(plain_server).crawl()

        server = TopKServer(dataset, k=4)
        client = DependencyFilteringClient(server, oracle)
        filtered = DepthFirstSearch(client).crawl()

        assert_complete(filtered, dataset)
        assert client.pruned == 2
        assert filtered.cost == plain.cost - 2

    def test_sound_on_empty_oracle(self, dataset):
        client = DependencyFilteringClient(
            TopKServer(dataset, k=4), PairwiseDependencyOracle()
        )
        result = DepthFirstSearch(client).crawl()
        assert_complete(result, dataset)
        assert client.pruned == 0

    def test_hybrid_with_dependencies(self):
        space = DataSpace.mixed([("make", 3), ("body", 3)], ["price"])
        rng = np.random.default_rng(0)
        rows = []
        for _ in range(150):
            make = rng.integers(1, 4)
            body = rng.choice([b for b in range(1, 4) if (make, b) != (1, 2)])
            rows.append([make, body, int(rng.integers(0, 50))])
        dataset = Dataset(space, np.asarray(rows, dtype=np.int64))
        oracle = PairwiseDependencyOracle([(0, 1, 1, 2)])
        client = DependencyFilteringClient(TopKServer(dataset, k=4), oracle)
        result = Hybrid(client).crawl()
        assert_complete(result, dataset)
