"""Tests for crawl verification (bag comparison)."""

import pytest

from repro.crawl.base import CrawlResult
from repro.crawl.verify import assert_complete, verify_complete
from repro.dataspace.space import DataSpace
from tests.conftest import make_dataset


@pytest.fixture
def space():
    return DataSpace.categorical([3, 3])


@pytest.fixture
def dataset(space):
    return make_dataset(space, [[1, 1], [2, 2], [2, 2], [3, 1]])


def result_with(space, rows):
    return CrawlResult(
        algorithm="test",
        space=space,
        rows=list(rows),
        cost=1,
        complete=True,
        progress=[],
    )


class TestVerifyComplete:
    def test_exact_bag_passes(self, space, dataset):
        result = result_with(space, [(2, 2), (1, 1), (3, 1), (2, 2)])
        report = verify_complete(result, dataset)
        assert report.complete
        assert "complete" in report.summary()

    def test_missing_tuple_detected(self, space, dataset):
        result = result_with(space, [(1, 1), (2, 2), (3, 1)])
        report = verify_complete(result, dataset)
        assert not report.complete
        assert report.missing[(2, 2)] == 1
        assert not report.spurious

    def test_wrong_multiplicity_detected(self, space, dataset):
        rows = [(1, 1), (2, 2), (2, 2), (2, 2), (3, 1)]
        report = verify_complete(result_with(space, rows), dataset)
        assert not report.complete
        assert report.spurious[(2, 2)] == 1

    def test_spurious_tuple_detected(self, space, dataset):
        rows = [(1, 1), (2, 2), (2, 2), (3, 1), (3, 3)]
        report = verify_complete(result_with(space, rows), dataset)
        assert not report.complete
        assert report.spurious[(3, 3)] == 1

    def test_assert_complete_raises_with_diagnostics(self, space, dataset):
        result = result_with(space, [(1, 1)])
        with pytest.raises(AssertionError) as info:
            assert_complete(result, dataset)
        assert "missing" in str(info.value)

    def test_assert_complete_passes(self, space, dataset):
        assert_complete(
            result_with(space, [(1, 1), (2, 2), (2, 2), (3, 1)]), dataset
        )
