"""Tests for the python -m repro.crawl CLI."""

import pytest

from repro.crawl.__main__ import build_parser, main
from repro.datasets.io import load_csv, save_csv
from repro.datasets.synthetic import random_dataset
from repro.dataspace.space import DataSpace
from tests.conftest import make_dataset


@pytest.fixture
def mixed_csv(tmp_path):
    space = DataSpace.mixed([("c", 3)], ["x"])
    dataset = random_dataset(space, 60, seed=1, numeric_range=(0, 30))
    path = tmp_path / "data.csv"
    save_csv(dataset, path)
    return str(path), dataset


class TestParser:
    def test_requires_k(self, mixed_csv):
        path, _ = mixed_csv
        with pytest.raises(SystemExit):
            build_parser().parse_args([path])

    def test_defaults(self, mixed_csv):
        path, _ = mixed_csv
        args = build_parser().parse_args([path, "--k", "8"])
        assert args.algorithm == "hybrid"
        assert args.seed == 0
        assert args.executor == "thread"
        assert args.rebalance is False

    def test_executor_choices(self, mixed_csv):
        path, _ = mixed_csv
        args = build_parser().parse_args(
            [path, "--k", "8", "--executor", "process", "--rebalance"]
        )
        assert args.executor == "process"
        assert args.rebalance is True
        with pytest.raises(SystemExit):
            build_parser().parse_args([path, "--k", "8", "--executor", "x"])

    def test_shard_subtrees_flag_shapes(self, mixed_csv):
        from repro.crawl.sharding import DEFAULT_MAX_SHARDS

        path, _ = mixed_csv
        args = build_parser().parse_args([path, "--k", "8"])
        assert args.shard_subtrees is None
        assert args.max_regions is None
        args = build_parser().parse_args(
            [path, "--k", "8", "--shard-subtrees"]
        )
        assert args.shard_subtrees == DEFAULT_MAX_SHARDS
        args = build_parser().parse_args(
            [path, "--k", "8", "--shard-subtrees", "12", "--max-regions", "64"]
        )
        assert args.shard_subtrees == 12
        assert args.max_regions == 64
        args = build_parser().parse_args(
            [path, "--k", "8", "--shard-subtrees", "auto"]
        )
        assert args.shard_subtrees == "auto"
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                [path, "--k", "8", "--shard-subtrees", "many"]
            )


class TestMain:
    def test_happy_path(self, mixed_csv, capsys):
        path, dataset = mixed_csv
        assert main([path, "--k", "8"]) == 0
        out = capsys.readouterr().out
        assert f"n={dataset.n}" in out
        assert "complete" in out

    def test_output_round_trip(self, mixed_csv, tmp_path, capsys):
        path, dataset = mixed_csv
        out_path = tmp_path / "extracted.csv"
        assert main([path, "--k", "8", "--output", str(out_path)]) == 0
        extracted = load_csv(out_path)
        assert extracted == dataset

    def test_progress_flag(self, mixed_csv, capsys):
        path, _ = mixed_csv
        assert main([path, "--k", "8", "--progress"]) == 0
        out = capsys.readouterr().out
        assert "progress" in out
        assert "100% -> 100.0%" in out

    def test_binary_shrink_needs_bounds_flag(self, tmp_path, capsys):
        space = DataSpace.numeric(1)
        dataset = random_dataset(space, 20, seed=0, numeric_range=(0, 9))
        path = tmp_path / "num.csv"
        save_csv(dataset, path)
        assert (
            main([str(path), "--k", "4", "--algorithm", "binary-shrink"])
            == 2
        )
        assert (
            main(
                [
                    str(path),
                    "--k",
                    "4",
                    "--algorithm",
                    "binary-shrink",
                    "--bounds-from-data",
                ]
            )
            == 0
        )

    def test_infeasible_exit_code(self, tmp_path, capsys):
        space = DataSpace.categorical([3])
        dataset = make_dataset(space, [[1]] * 9 + [[2]])
        path = tmp_path / "dup.csv"
        save_csv(dataset, path)
        assert main([str(path), "--k", "4"]) == 3
        assert "infeasible" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        assert main(["/nonexistent.csv", "--k", "4"]) == 2
        assert "cannot load" in capsys.readouterr().err

    def test_wrong_algorithm_for_space(self, mixed_csv, capsys):
        path, _ = mixed_csv
        assert main([path, "--k", "8", "--algorithm", "dfs"]) == 2
        assert "error" in capsys.readouterr().err


class TestExecutors:
    """The --executor / --rebalance surface of the partitioned path."""

    @pytest.mark.parametrize(
        "flags",
        [
            ["--executor", "thread"],
            ["--executor", "thread", "--rebalance"],
            ["--executor", "process"],
            ["--executor", "process", "--rebalance"],
            ["--executor", "async"],
            ["--executor", "sequential"],
        ],
    )
    def test_partitioned_backends_verify_complete(
        self, mixed_csv, capsys, flags
    ):
        path, dataset = mixed_csv
        assert main([path, "--k", "8", "--workers", "2", *flags]) == 0
        out = capsys.readouterr().out
        assert "2 concurrent sessions" in out
        assert "complete" in out
        assert flags[1] in out  # the backend name is reported

    def test_rebalance_reported(self, mixed_csv, capsys):
        path, _ = mixed_csv
        assert (
            main(
                [
                    path,
                    "--k",
                    "8",
                    "--workers",
                    "2",
                    "--executor",
                    "thread",
                    "--rebalance",
                ]
            )
            == 0
        )
        assert "thread + rebalance" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "flags",
        [
            ["--shard-subtrees"],
            ["--rebalance", "--shard-subtrees", "4"],
            ["--executor", "process", "--shard-subtrees", "4"],
            ["--executor", "sequential", "--shard-subtrees", "4"],
        ],
    )
    def test_shard_subtrees_verifies_complete(self, mixed_csv, capsys, flags):
        path, _ = mixed_csv
        assert main([path, "--k", "8", "--workers", "2", *flags]) == 0
        out = capsys.readouterr().out
        assert "subtree shards" in out
        assert "complete" in out

    def test_shard_subtrees_auto_verifies_complete(self, mixed_csv, capsys):
        path, _ = mixed_csv
        assert (
            main(
                [
                    path,
                    "--k",
                    "8",
                    "--workers",
                    "2",
                    "--rebalance",
                    "--shard-subtrees",
                    "auto",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "adaptive subtree shards" in out
        assert "complete" in out

    def test_shard_subtrees_must_be_positive(self, mixed_csv, capsys):
        path, _ = mixed_csv
        assert (
            main([path, "--k", "8", "--workers", "2", "--shard-subtrees", "0"])
            == 2
        )
        assert "--shard-subtrees" in capsys.readouterr().err

    def test_max_regions_caps_the_plan(self, tmp_path, capsys):
        from repro.dataspace.space import DataSpace

        space = DataSpace.mixed([("c", 9)], ["x"])
        dataset = random_dataset(space, 80, seed=2, numeric_range=(0, 40))
        path = tmp_path / "wide.csv"
        save_csv(dataset, path)
        assert (
            main(
                [
                    str(path),
                    "--k",
                    "8",
                    "--workers",
                    "2",
                    "--max-regions",
                    "9",
                ]
            )
            == 0
        )
        assert "9 regions" in capsys.readouterr().out
        # A cap below the categorical domain steers the planner to the
        # bounded numeric attribute: exactly one interval per session.
        assert (
            main(
                [
                    str(path),
                    "--k",
                    "8",
                    "--workers",
                    "2",
                    "--max-regions",
                    "4",
                    "--bounds-from-data",
                ]
            )
            == 0
        )
        assert "2 regions" in capsys.readouterr().out


class TestSharedLimitsAndLiveProgress:
    """The --budget / --shared-limits / --progress-live surface."""

    def test_flag_defaults(self, mixed_csv):
        path, _ = mixed_csv
        args = build_parser().parse_args([path, "--k", "8"])
        assert args.budget is None
        assert args.shared_limits is False
        assert args.progress_live is False

    def test_budget_must_be_positive(self, mixed_csv, capsys):
        path, _ = mixed_csv
        assert main([path, "--k", "8", "--budget", "0"]) == 2
        assert "--budget" in capsys.readouterr().err

    def test_generous_budget_completes(self, mixed_csv, capsys):
        path, _ = mixed_csv
        assert main([path, "--k", "8", "--budget", "100000"]) == 0
        assert "complete" in capsys.readouterr().out

    def test_exhausted_budget_exits_4_with_exact_charge(
        self, mixed_csv, capsys
    ):
        path, _ = mixed_csv
        assert main([path, "--k", "8", "--budget", "3"]) == 4
        err = capsys.readouterr().err
        assert "budget exhausted" in err
        assert "(3 queries charged)" in err

    def test_process_shared_limits_budgeted_crawl(self, mixed_csv, capsys):
        path, _ = mixed_csv
        assert (
            main(
                [
                    path,
                    "--k",
                    "8",
                    "--workers",
                    "2",
                    "--executor",
                    "process",
                    "--shared-limits",
                    "--rebalance",
                    "--budget",
                    "100000",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "shared limits" in out
        assert "complete" in out

    def test_process_shared_limits_exhaustion_exits_4(self, mixed_csv, capsys):
        path, _ = mixed_csv
        assert (
            main(
                [
                    path,
                    "--k",
                    "8",
                    "--workers",
                    "2",
                    "--executor",
                    "process",
                    "--shared-limits",
                    "--budget",
                    "5",
                ]
            )
            == 4
        )
        err = capsys.readouterr().err
        assert "budget exhausted" in err
        assert "(5 queries charged)" in err

    def test_progress_live_prints_session_lines(self, mixed_csv, capsys):
        path, _ = mixed_csv
        assert (
            main([path, "--k", "8", "--workers", "2", "--progress-live"])
            == 0
        )
        err = capsys.readouterr().err
        assert "session 0:" in err
        assert "session 1:" in err
        assert "done" in err

    def test_single_worker_notes_inert_flags(self, mixed_csv, capsys):
        path, _ = mixed_csv
        assert main([path, "--k", "8", "--shared-limits"]) == 0
        assert "--workers > 1" in capsys.readouterr().err


class TestLiveProgressRendering:
    """render_live_progress marks dead sessions distinctly."""

    def test_failed_session_is_upper_case(self):
        from repro.crawl.__main__ import render_live_progress
        from repro.crawl.base import ProgressAggregator, ProgressPoint

        aggregator = ProgressAggregator(3)
        aggregator.report(0, ProgressPoint(10, 20))
        aggregator.mark_done(0)
        aggregator.mark_failed(1)
        text = render_live_progress(aggregator)
        lines = text.splitlines()
        assert len(lines) == 3
        assert "session 0: done" in lines[0]
        assert "queries=10 tuples=20" in lines[0]
        assert "FAILED" in lines[1]
        assert "failed" not in lines[1]
        assert "running" in lines[2]

    def test_cancelled_session_is_upper_case(self):
        from repro.crawl.__main__ import render_live_progress
        from repro.crawl.base import ProgressAggregator

        aggregator = ProgressAggregator(1)
        aggregator.mark_cancelled(0)
        assert "CANCELLED" in render_live_progress(aggregator)


class TestCheckpointResume:
    """--checkpoint / --resume: kill a crawl, restart it for free."""

    def test_parser_defaults_and_paths(self, mixed_csv):
        path, _ = mixed_csv
        args = build_parser().parse_args([path, "--k", "8"])
        assert args.checkpoint is None
        assert args.resume is None
        args = build_parser().parse_args(
            [path, "--k", "8", "--checkpoint", "c.json", "--resume", "r.json"]
        )
        assert args.checkpoint == "c.json"
        assert args.resume == "r.json"

    def test_resume_missing_file_exits_2(self, mixed_csv, tmp_path, capsys):
        path, _ = mixed_csv
        missing = tmp_path / "missing.json"
        assert main([path, "--k", "8", "--resume", str(missing)]) == 2
        err = capsys.readouterr().err
        assert str(missing) in err
        assert "start with --checkpoint to create one" in err

    def test_single_worker_exhaust_then_resume(
        self, mixed_csv, tmp_path, capsys
    ):
        path, _ = mixed_csv
        ckpt = tmp_path / "crawl.json"
        assert (
            main(
                [
                    path,
                    "--k",
                    "8",
                    "--budget",
                    "5",
                    "--checkpoint",
                    str(ckpt),
                ]
            )
            == 4
        )
        err = capsys.readouterr().err
        assert "budget exhausted" in err
        assert f"progress checkpointed to {ckpt}" in err
        assert f"continue with --resume {ckpt}" in err
        assert ckpt.exists()
        assert main([path, "--k", "8", "--resume", str(ckpt)]) == 0
        captured = capsys.readouterr()
        assert (
            f"resumed from {ckpt}: 5 cached responses restored"
            in captured.err
        )
        assert "complete" in captured.out

    def test_multi_worker_checkpoint_then_resume_is_identical(
        self, mixed_csv, tmp_path, capsys
    ):
        path, _ = mixed_csv
        ckpt = tmp_path / "crawl.json"
        assert (
            main(
                [
                    path,
                    "--k",
                    "8",
                    "--workers",
                    "2",
                    "--checkpoint",
                    str(ckpt),
                ]
            )
            == 0
        )
        first = capsys.readouterr().out
        assert ckpt.exists()
        assert (
            main([path, "--k", "8", "--workers", "2", "--resume", str(ckpt)])
            == 0
        )
        captured = capsys.readouterr()
        assert "regions restored" in captured.err
        # Every region came back from the file, none were re-crawled...
        import json

        payload = json.loads(ckpt.read_text())
        regions = len(payload["completed"])
        assert f"{regions} of {regions} regions restored" in captured.err
        # ...and the reported crawl is byte-identical to the first run.
        first_crawl = [
            line for line in first.splitlines() if line.startswith("crawl:")
        ]
        second_crawl = [
            line
            for line in captured.out.splitlines()
            if line.startswith("crawl:")
        ]
        assert first_crawl == second_crawl
        assert "complete" in captured.out

    def test_multi_worker_exhaustion_hints_resume(
        self, mixed_csv, tmp_path, capsys
    ):
        path, _ = mixed_csv
        ckpt = tmp_path / "crawl.json"
        assert (
            main(
                [
                    path,
                    "--k",
                    "8",
                    "--workers",
                    "2",
                    "--budget",
                    "3",
                    "--checkpoint",
                    str(ckpt),
                ]
            )
            == 4
        )
        err = capsys.readouterr().err
        assert f"continue with --resume {ckpt}" in err
        # A kill before the first boundary still leaves a loadable file.
        assert ckpt.exists()

    def test_budget_window_reset_completes_across_runs(
        self, mixed_csv, tmp_path, capsys
    ):
        # The paper's quota regime: a per-identity limit that resets
        # between runs.  Re-running with the same --budget must treat
        # an exhausted checkpoint as a fresh window (not resurrect the
        # refused one) so the crawl eventually completes.
        path, _ = mixed_csv
        ckpt = tmp_path / "crawl.json"
        argv = [
            path,
            "--k",
            "8",
            "--workers",
            "2",
            "--budget",
            "12",
            "--checkpoint",
            str(ckpt),
        ]
        assert main(argv) == 4
        capsys.readouterr()
        resume_argv = argv[:-2] + ["--resume", str(ckpt)]
        saw_reset = False
        for _ in range(20):
            code = main(resume_argv)
            captured = capsys.readouterr()
            saw_reset = saw_reset or "budget window reset" in captured.err
            if code == 0:
                break
            assert code == 4
        assert code == 0
        assert saw_reset
        assert "complete" in captured.out

    def test_same_window_restores_budget_charge(
        self, mixed_csv, tmp_path, capsys
    ):
        # A kill *without* exhaustion (same limit, refused never set)
        # continues the same quota window: the stored charge counts.
        path, _ = mixed_csv
        ckpt = tmp_path / "crawl.json"
        argv = [
            path,
            "--k",
            "8",
            "--workers",
            "2",
            "--budget",
            "1000",
            "--checkpoint",
            str(ckpt),
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv[:-2] + ["--resume", str(ckpt)]) == 0
        captured = capsys.readouterr()
        assert "budget window reset" not in captured.err
        assert "regions restored" in captured.err
        assert "complete" in captured.out
