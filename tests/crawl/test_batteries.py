"""Battery batching parity: batteries on == batteries off, byte for byte.

``Crawler._run_battery`` promises that a sibling battery is *exactly*
``[self._run_query(q) for q in queries]`` -- the batch epoch may share
engine work and defer accounting, but every observable of the crawl
must be untouched.  These tests pin the promise:

* property test over random instances of every space kind: for every
  crawler that accepts the space, the battery-mode crawl and the
  loop-mode crawl produce identical rows, cost, progress curves, phase
  costs, issue histories, cached responses and stats counters;
* budget sweep on a dense deterministic instance: for *every* budget
  value from 1 to the full crawl cost, a mid-battery
  :class:`QueryBudgetExhausted` fires at the identical query index in
  both modes, leaving identical partial state behind.
"""

import numpy as np
from hypothesis import given, settings

from repro.crawl.binary_shrink import BinaryShrink
from repro.crawl.dfs import DepthFirstSearch
from repro.crawl.hybrid import Hybrid
from repro.crawl.rank_shrink import RankShrink
from repro.crawl.slice_cover import LazySliceCover, SliceCover
from repro.dataspace.dataset import Dataset
from repro.dataspace.space import DataSpace, SpaceKind
from repro.exceptions import QueryBudgetExhausted
from repro.server.client import CachingClient
from repro.server.limits import QueryBudget
from repro.server.server import TopKServer
from tests.conftest import small_instances

_SETTINGS = dict(max_examples=50, deadline=None)


def crawler_classes(space):
    """Every crawler class that accepts ``space``."""
    classes = [Hybrid]
    if space.kind is SpaceKind.CATEGORICAL:
        classes += [DepthFirstSearch, SliceCover, LazySliceCover]
    if space.kind is SpaceKind.NUMERIC:
        classes.append(RankShrink)
    return classes


def run_mode(dataset, k, crawler_cls, batteries, *, budget=None):
    """One crawl in the given battery mode on a fresh server + client.

    Returns ``(result_or_exception, client)`` so callers can compare
    partial state after a budget refusal too.
    """
    limits = [QueryBudget(budget)] if budget is not None else ()
    server = TopKServer(dataset, k, priority_seed=3, limits=limits)
    client = CachingClient(server)
    crawler = crawler_cls(client, batteries=batteries)
    try:
        outcome = crawler.crawl()
    except QueryBudgetExhausted as exc:
        outcome = exc
    return outcome, client


def assert_client_parity(battery_client, loop_client):
    """The two clients saw byte-identical traffic and accounting."""
    assert battery_client.cost == loop_client.cost
    assert battery_client.history == loop_client.history
    # Cache contents: same queries, same responses (including
    # locally-derived zero-cost entries like slice-cover's lookups).
    assert battery_client._cache == loop_client._cache  # noqa: SLF001
    assert battery_client.stats.state() == loop_client.stats.state()


class TestBatteryParity:
    @given(instance=small_instances())
    @settings(**_SETTINGS)
    def test_every_crawler_byte_identical(self, instance):
        dataset, k = instance
        for crawler_cls in crawler_classes(dataset.space):
            battery, battery_client = run_mode(dataset, k, crawler_cls, True)
            loop, loop_client = run_mode(dataset, k, crawler_cls, False)
            assert battery.rows == loop.rows
            assert battery.cost == loop.cost
            assert battery.progress == loop.progress
            assert battery.phase_costs == loop.phase_costs
            assert_client_parity(battery_client, loop_client)

    @given(instance=small_instances(max_dim=2))
    @settings(**_SETTINGS)
    def test_binary_shrink_byte_identical(self, instance):
        dataset, k = instance
        if dataset.space.kind is not SpaceKind.NUMERIC or dataset.n == 0:
            return
        bounded = dataset.with_bounds_from_data()
        battery, battery_client = run_mode(bounded, k, BinaryShrink, True)
        loop, loop_client = run_mode(bounded, k, BinaryShrink, False)
        assert battery.rows == loop.rows
        assert battery.cost == loop.cost
        assert battery.progress == loop.progress
        assert_client_parity(battery_client, loop_client)


def dense_categorical(depth=4, fan=3, dups=2):
    """Every point ``dups`` times: DFS fires a battery per leaf group."""
    grids = np.meshgrid(*[np.arange(1, fan + 1)] * depth, indexing="ij")
    points = np.stack([g.ravel() for g in grids], axis=1)
    rows = np.repeat(points, dups, axis=0).astype(np.int64)
    return Dataset(DataSpace.categorical([fan] * depth), rows)


class TestMidBatteryBudget:
    """A budget refusal fires at the identical query index either way."""

    def full_cost(self, dataset, k, crawler_cls):
        result, _ = run_mode(dataset, k, crawler_cls, True)
        assert not isinstance(result, QueryBudgetExhausted)
        return result.cost

    def sweep(self, dataset, k, crawler_cls):
        cost = self.full_cost(dataset, k, crawler_cls)
        assert cost > 2
        for budget in range(1, cost + 1):
            battery, battery_client = run_mode(
                dataset, k, crawler_cls, True, budget=budget
            )
            loop, loop_client = run_mode(
                dataset, k, crawler_cls, False, budget=budget
            )
            raised = isinstance(battery, QueryBudgetExhausted)
            assert raised == isinstance(loop, QueryBudgetExhausted), budget
            assert raised == (budget < cost), budget
            # Identical partial state at the refusal point: the budget
            # cut both modes at the very same query.
            assert_client_parity(battery_client, loop_client)

    def test_dfs_budget_sweep(self):
        dataset = dense_categorical()
        self.sweep(dataset, 2, DepthFirstSearch)

    def test_rank_shrink_budget_sweep(self):
        rng = np.random.default_rng(5)
        space = DataSpace.numeric(1, bounds=[(0, 63)])
        rows = rng.integers(0, 64, size=(40, 1))
        dataset = Dataset(space, rows.astype(np.int64))
        self.sweep(dataset, int(dataset.max_multiplicity()) + 2, RankShrink)

    def test_hybrid_budget_sweep(self):
        dataset = dense_categorical(depth=3, fan=3, dups=2)
        self.sweep(dataset, 2, Hybrid)
