"""Integration tests: Theorem 1 envelopes on the paper-lookalike data.

Each optimal algorithm runs on a scaled-down version of the dataset the
paper evaluates it on, with ``max_queries`` pinned to its Theorem 1
bound -- the crawl itself aborts if the guarantee is violated -- and the
cost is also sanity-checked against the trivial ``ceil(n/k)`` floor.
"""

import pytest

from repro.crawl.hybrid import Hybrid
from repro.crawl.rank_shrink import RankShrink
from repro.crawl.slice_cover import LazySliceCover, SliceCover
from repro.crawl.verify import assert_complete
from repro.datasets.adult import adult, adult_numeric
from repro.datasets.nsf import nsf
from repro.datasets.yahoo import yahoo_autos
from repro.server.server import TopKServer
from repro.theory import bounds

N_SMALL = 3000


class TestRankShrinkOnAdultNumeric:
    @pytest.mark.parametrize("k", [16, 64, 256])
    def test_envelope(self, k):
        dataset = adult_numeric(n=N_SMALL, seed=11)
        upper = bounds.rank_shrink_upper_bound(dataset.n, k, 6)
        crawler = RankShrink(TopKServer(dataset, k=k), max_queries=upper)
        result = crawler.crawl()
        assert_complete(result, dataset)
        assert bounds.trivial_lower_bound(dataset.n, k) <= result.cost <= upper


class TestSliceCoverOnNSF:
    @pytest.mark.parametrize("cls", [SliceCover, LazySliceCover])
    def test_envelope(self, cls):
        dataset = nsf(n=N_SMALL, seed=23)
        k = 64
        sizes = list(dataset.space.categorical_domain_sizes)
        upper = bounds.slice_cover_upper_bound(dataset.n, k, sizes)
        crawler = cls(TopKServer(dataset, k=k), max_queries=upper)
        result = crawler.crawl()
        assert_complete(result, dataset)
        assert result.cost <= upper


class TestHybridOnMixed:
    @pytest.mark.parametrize(
        "factory,kwargs",
        [
            (yahoo_autos, {"n": N_SMALL, "seed": 5, "duplicates": 0}),
            (adult, {"n": N_SMALL, "seed": 11}),
        ],
    )
    def test_envelope(self, factory, kwargs):
        dataset = factory(**kwargs)
        k = 64
        space = dataset.space
        upper = bounds.hybrid_upper_bound(
            dataset.n,
            k,
            list(space.categorical_domain_sizes),
            space.dimensionality,
        )
        crawler = Hybrid(TopKServer(dataset, k=k), max_queries=upper)
        result = crawler.crawl()
        assert_complete(result, dataset)
        assert bounds.trivial_lower_bound(dataset.n, k) <= result.cost <= upper


class TestInverseLinearityInK:
    def test_rank_shrink_halves_with_k(self):
        """Figure 10a's observation: cost ~halves each time k doubles."""
        dataset = adult_numeric(n=6000, seed=11)
        costs = {}
        for k in (32, 64, 128):
            result = RankShrink(TopKServer(dataset, k=k)).crawl()
            costs[k] = result.cost
        assert costs[32] > 1.5 * costs[64]
        assert costs[64] > 1.5 * costs[128]
