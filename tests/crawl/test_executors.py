"""Executor-parity suite: every backend, byte-identical results.

The executor abstraction promises that the
:class:`~repro.crawl.partition.PartitionedResult` is a pure function of
(sources, plan, crawler factory) -- never of the backend, the worker
count, or the stealing schedule.  These tests pin that contract:
sequential, thread, process and async backends, with and without
rebalancing, against the sequential reference, field by field.
"""

import asyncio
import functools
import pickle

import numpy as np
import pytest

from repro.crawl.spec import CrawlSpec
from repro.crawl.base import ProgressAggregator, SessionState
from repro.crawl.executors import (
    EXECUTORS,
    AsyncExecutor,
    ProcessExecutor,
    SequentialExecutor,
    ThreadExecutor,
    default_workers,
    make_executor,
)
from repro.crawl.hybrid import Hybrid
from repro.crawl.partition import crawl_partitioned, partition_space
from repro.crawl.rebalance import CostEstimator
from repro.dataspace.dataset import Dataset
from repro.dataspace.space import DataSpace
from repro.exceptions import QueryBudgetExhausted, SchemaError
from repro.server.client import AwaitableClient, CachingClient
from repro.server.latency import AsyncLatencySource, LatencySource
from repro.server.limits import QueryBudget
from repro.server.server import TopKServer
from repro.server.stats import QueryStats
from repro.web.adapter import WebSession
from repro.web.site import HiddenWebSite

SESSIONS = 3

#: Every backend x rebalance combination the parity contract covers.
MATRIX = [
    (name, rebalance)
    for name in ("sequential", "thread", "process", "async")
    for rebalance in (False, True)
]


def mixed_dataset(seed=3, n=300):
    rng = np.random.default_rng(seed)
    space = DataSpace.mixed(
        [("make", 6), ("body", 3)],
        ["price"],
        numeric_bounds=[(0, 499)],
    )
    rows = np.column_stack(
        [
            rng.integers(1, 7, n),
            rng.integers(1, 4, n),
            rng.integers(0, 500, n),
        ]
    ).astype(np.int64)
    return Dataset(space, rows)


@pytest.fixture(scope="module")
def dataset():
    return mixed_dataset()


@pytest.fixture(scope="module")
def plan(dataset):
    return partition_space(dataset.space, SESSIONS)


def make_sources(dataset):
    return [TopKServer(dataset, k=32) for _ in range(SESSIONS)]


@pytest.fixture(scope="module")
def reference(dataset, plan):
    return crawl_partitioned(make_sources(dataset), plan)


def assert_identical(result, reference):
    """The full determinism contract, field by field."""
    assert result.rows == reference.rows  # byte-identical order
    assert result.cost == reference.cost
    assert result.complete == reference.complete
    assert result.session_costs() == reference.session_costs()
    assert result.progress == reference.progress
    for i in range(result.plan.sessions):
        assert len(result.results[i]) == len(reference.results[i])
        for a, b in zip(result.results[i], reference.results[i]):
            assert a.rows == b.rows
            assert a.cost == b.cost
            assert a.progress == b.progress


class TestParity:
    @pytest.mark.parametrize("name,rebalance", MATRIX)
    def test_backend_matches_sequential(
        self, name, rebalance, dataset, plan, reference
    ):
        executor = make_executor(name, max_workers=SESSIONS)
        result = executor.run(
            make_sources(dataset), plan, CrawlSpec(rebalance=rebalance)
        )
        assert_identical(result, reference)
        assert result.complete
        assert sorted(result.rows) == sorted(dataset.iter_rows())

    def test_fewer_workers_than_sessions(self, dataset, plan, reference):
        for name in ("thread", "async"):
            executor = make_executor(name, max_workers=2)
            result = executor.run(
                make_sources(dataset), plan, CrawlSpec(rebalance=True)
            )
            assert_identical(result, reference)

    def test_rebalance_with_seeded_estimator(self, dataset, plan, reference):
        """Priors from a previous crawl steer, never change, results."""
        stats = QueryStats()
        stats.queries = reference.cost
        estimator = CostEstimator.from_stats(stats, len(plan.regions))
        result = ThreadExecutor(max_workers=SESSIONS).run(
            make_sources(dataset),
            plan,
            CrawlSpec(rebalance=True, estimator=estimator),
        )
        assert_identical(result, reference)
        # Every region's exact cost was recorded on the way through.
        assert estimator.total_observed() == reference.cost

    def test_latency_wrapped_sources(self, dataset, plan):
        """The same parity through latency wrappers, sync and async."""
        def wrapped(cls):
            return [
                cls(TopKServer(dataset, k=32), 0.0005)
                for _ in range(SESSIONS)
            ]

        reference = crawl_partitioned(wrapped(LatencySource), plan)
        result = AsyncExecutor(max_workers=SESSIONS).run(
            wrapped(AsyncLatencySource), plan, CrawlSpec(rebalance=True))
        assert_identical(result, reference)


class TestProcessBackend:
    def test_pickles_sources_once_and_matches(self, dataset, plan, reference):
        result = ProcessExecutor(max_workers=2).run(
            make_sources(dataset),
            plan, CrawlSpec(crawler_factory=functools.partial(Hybrid)))
        assert_identical(result, reference)

    def test_rebalanced_failure_drains_and_raises(self, dataset, plan):
        """The futures dispatcher: a region raising in a pool worker is
        filed at its plan position, the rest of the plan drains, and
        run() raises the lowest failure."""
        sources = [
            TopKServer(dataset, k=32, limits=[QueryBudget(1)]),
            TopKServer(dataset, k=32),
            TopKServer(dataset, k=32),
        ]
        with pytest.raises(QueryBudgetExhausted):
            ProcessExecutor(max_workers=2).run(
                sources, plan, CrawlSpec(rebalance=True)
            )

    def test_unpicklable_factory_is_a_clear_error(self, dataset, plan):
        executor = ProcessExecutor(max_workers=2)
        with pytest.raises(TypeError, match="picklable"):
            executor.run(
                make_sources(dataset),
                plan, CrawlSpec(crawler_factory=lambda view: Hybrid(view)))

    def test_client_pickle_drops_listeners_keeps_cache(self, dataset):
        client = CachingClient(TopKServer(dataset, k=32))
        client.add_listener(lambda query, response: None)
        from repro.query.query import Query

        query = Query.full(dataset.space)
        first = client.run(query)
        clone = pickle.loads(pickle.dumps(client))
        assert clone.cost == client.cost
        assert clone.peek(query) == first  # cache travelled
        assert clone.run(query) == first  # and still answers for free
        assert clone.cost == client.cost


class TestAsyncBackend:
    def test_web_adapter_through_awaitable_client(self, dataset):
        """Asyncio sessions against repro.web, via the awaitable shim."""

        def web_sources():
            return [
                AwaitableClient(
                    WebSession(HiddenWebSite(TopKServer(dataset, k=32)))
                )
                for _ in range(2)
            ]

        # The web layer reconstructs the space from the search form, so
        # the plan must be built against the reconstructed schema.
        plan = partition_space(web_sources()[0].space, 2)
        reference = crawl_partitioned(web_sources(), plan)
        result = AsyncExecutor(max_workers=2).run(web_sources(), plan)
        assert_identical(result, reference)
        assert sorted(result.rows) == sorted(dataset.iter_rows())

    def test_many_sessions_do_not_starve_the_default_pool(self, dataset):
        """Regression: session loops must not share asyncio's default
        executor with AwaitableClient.arun -- with at least as many
        blocked session workers as default-pool threads (cpu_count + 4)
        the crawl used to deadlock on single-core hosts."""
        plan = partition_space(dataset.space, 6)  # every value of make

        def sources():
            return [
                AwaitableClient(TopKServer(dataset, k=32))
                for _ in range(plan.sessions)
            ]

        reference = crawl_partitioned(sources(), plan)
        result = AsyncExecutor(max_workers=plan.sessions).run(
            sources(), plan, CrawlSpec(rebalance=True))
        assert_identical(result, reference)

    def test_awaitable_client_arun_off_loop(self, dataset):
        from repro.query.query import Query

        client = AwaitableClient(TopKServer(dataset, k=32))
        query = Query.full(dataset.space)
        response = asyncio.run(client.arun(query))
        assert response == client.run(query)


class TestValidation:
    def test_unknown_backend_name(self):
        with pytest.raises(ValueError, match="unknown executor"):
            make_executor("fiber")

    def test_registry_names(self):
        assert set(EXECUTORS) == {"sequential", "thread", "process", "async"}

    def test_nonpositive_workers(self):
        for name in ("thread", "process", "async"):
            with pytest.raises(ValueError):
                make_executor(name, max_workers=0)

    def test_source_count_must_match_plan(self, dataset, plan):
        with pytest.raises(SchemaError):
            SequentialExecutor().run([TopKServer(dataset, k=32)], plan)

    def test_mismatched_aggregator(self, dataset, plan):
        with pytest.raises(ValueError):
            ThreadExecutor(max_workers=2).run(
                make_sources(dataset),
                plan, CrawlSpec(aggregator=ProgressAggregator(SESSIONS + 2)))

    def test_default_workers_bounds(self):
        assert default_workers(1) == 1
        assert 1 <= default_workers(10_000) <= 10_000

    def test_instance_executor_rejects_max_workers(self, dataset, plan):
        from repro.crawl.parallel import crawl_partitioned_parallel

        with pytest.raises(ValueError, match="max_workers"):
            crawl_partitioned_parallel(
                make_sources(dataset),
                plan,
                max_workers=2,
                executor=ThreadExecutor(),
            )
        # An instance without max_workers is fine.
        result = crawl_partitioned_parallel(
            make_sources(dataset), plan, executor=ThreadExecutor(2)
        )
        assert result.complete


class TestTerminalStates:
    @pytest.mark.parametrize("rebalance", [False, True])
    def test_all_sessions_marked_done(self, dataset, plan, rebalance):
        aggregator = ProgressAggregator(SESSIONS)
        merged = ThreadExecutor(max_workers=SESSIONS).run(
            make_sources(dataset),
            plan, CrawlSpec(aggregator=aggregator, rebalance=rebalance))
        assert aggregator.states() == (SessionState.DONE,) * SESSIONS
        assert aggregator.all_terminal()
        totals = aggregator.totals()
        assert totals.queries == merged.cost
        assert totals.tuples == merged.tuples_extracted

    def test_failed_session_is_not_left_in_flight(self, dataset, plan):
        """The satellite fix: a dead worker's session reads failed, not
        running, so monitors and rebalancing stop waiting on ghosts."""
        sources = [
            TopKServer(dataset, k=32, limits=[QueryBudget(1)]),
            TopKServer(dataset, k=32),
            TopKServer(dataset, k=32),
        ]
        aggregator = ProgressAggregator(SESSIONS)
        with pytest.raises(QueryBudgetExhausted):
            ThreadExecutor(max_workers=SESSIONS).run(
                sources, plan, CrawlSpec(aggregator=aggregator))
        assert aggregator.state(0) is SessionState.FAILED
        assert aggregator.state(1) is SessionState.DONE
        assert aggregator.state(2) is SessionState.DONE
        assert aggregator.all_terminal()
        # Snapshot pairs every session with its terminal state.
        for point, state in aggregator.snapshot():
            assert state.terminal

    def test_sequential_marks_abandoned_sessions_cancelled(
        self, dataset, plan
    ):
        """Stopping at the first failure must not leave never-started
        sessions reading as running forever."""
        sources = [
            TopKServer(dataset, k=32, limits=[QueryBudget(1)]),
            TopKServer(dataset, k=32),
            TopKServer(dataset, k=32),
        ]
        aggregator = ProgressAggregator(SESSIONS)
        with pytest.raises(QueryBudgetExhausted):
            SequentialExecutor().run(
                sources, plan, CrawlSpec(aggregator=aggregator)
            )
        assert aggregator.states() == (
            SessionState.FAILED,
            SessionState.CANCELLED,
            SessionState.CANCELLED,
        )
        assert aggregator.all_terminal()

    def test_states_api(self):
        aggregator = ProgressAggregator(2)
        assert aggregator.active() == 2
        assert not aggregator.all_terminal()
        aggregator.mark_done(0)
        aggregator.mark_done(0)  # idempotent
        with pytest.raises(ValueError):
            aggregator.mark_failed(0)  # terminal states don't flip
        aggregator.mark_cancelled(1)
        assert aggregator.states() == (
            SessionState.DONE,
            SessionState.CANCELLED,
        )
        assert aggregator.all_terminal()


class TestPayloadSlimming:
    """Process payloads carry data, never rebuildable derived state."""

    def sources(self, dataset, warmed=True):
        from repro.query.query import Query

        sources = [
            TopKServer(dataset, k=8, priority_seed=0)
            for _ in range(SESSIONS)
        ]
        if warmed:
            # Build row-tuple caches and lazy value indexes: exactly
            # the derived state that must not travel.
            for server in sources:
                query = Query.full(server.space).with_value(0, 1)
                server.run(query)
        return sources

    def test_warmed_caches_do_not_inflate_the_payload(self, dataset):
        from repro.crawl.executors import pickle_payload

        cold = len(pickle_payload(self.sources(dataset, False), Hybrid))
        warm = len(pickle_payload(self.sources(dataset, True), Hybrid))
        assert warm == cold

    def test_duplicate_matrices_ship_once(self, dataset):
        from repro.crawl.executors import pickle_payload

        one = len(pickle_payload(self.sources(dataset)[:1], Hybrid))
        all_sessions = len(pickle_payload(self.sources(dataset), Hybrid))
        # Each extra session adds bookkeeping, not another copy of the
        # (deduplicated) engine matrix / dataset rows.
        matrix_bytes = dataset.rows.nbytes
        assert all_sessions - one < matrix_bytes

    def test_payload_unpickles_to_working_sources(self, dataset):
        from repro.crawl.executors import pickle_payload
        from repro.query.query import Query

        sources = self.sources(dataset)
        payload = pickle_payload(sources, Hybrid)
        clones, factory, stubs = pickle.loads(payload)
        assert factory is Hybrid
        assert stubs == ()
        query = Query.full(dataset.space).with_value(0, 2)
        for clone, original in zip(clones, sources):
            assert clone.run(query) == original.run(query)

    def test_dedup_respects_dtype_and_shape(self):
        from repro.crawl.executors import _PayloadPickler
        import io

        same = np.arange(64, dtype=np.int64)
        pairs = (
            (same, same.copy()),  # content-equal: deduplicated
            (same, same.astype(np.int32)),  # dtype differs: kept apart
            (same, same.reshape(8, 8)),  # shape differs: kept apart
        )
        sizes = []
        for left, right in pairs:
            buffer = io.BytesIO()
            _PayloadPickler(buffer).dump((left, right))
            sizes.append(len(buffer.getvalue()))
        deduped, dtype_kept, shape_kept = sizes
        assert deduped < dtype_kept
        assert deduped < shape_kept
        # And the deduplicated pair still round-trips content-equal.
        buffer = io.BytesIO()
        _PayloadPickler(buffer).dump((same, same.copy()))
        left, right = pickle.loads(buffer.getvalue())
        assert np.array_equal(left, right)

    def test_process_executor_records_payload_bytes(
        self, dataset, plan, reference
    ):
        executor = ProcessExecutor(max_workers=2)
        assert executor.payload_bytes == 0
        result = executor.run(
            make_sources(dataset),
            plan,
            CrawlSpec(crawler_factory=functools.partial(Hybrid)),
        )
        assert_identical(result, reference)
        assert executor.payload_bytes > 0
