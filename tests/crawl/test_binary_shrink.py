"""Tests for the binary-shrink baseline."""

import pytest

from repro.crawl.binary_shrink import BinaryShrink
from repro.crawl.rank_shrink import RankShrink
from repro.crawl.verify import assert_complete
from repro.dataspace.dataset import Dataset
from repro.dataspace.space import DataSpace
from repro.exceptions import SchemaError, UnboundedDomainError
from repro.server.server import TopKServer
from tests.conftest import make_dataset


def bounded_space(*bounds):
    return DataSpace.numeric(len(bounds), bounds=list(bounds))


class TestRequirements:
    def test_needs_bounds(self):
        dataset = make_dataset(DataSpace.numeric(1), [[1]])
        with pytest.raises(UnboundedDomainError):
            BinaryShrink(TopKServer(dataset, k=2))

    def test_rejects_non_numeric(self):
        dataset = make_dataset(DataSpace.categorical([3]), [[1]])
        with pytest.raises(SchemaError):
            BinaryShrink(TopKServer(dataset, k=2))


class TestCorrectness:
    def test_small_crawl(self):
        dataset = make_dataset(
            bounded_space((0, 100)), [[v] for v in (3, 14, 15, 92, 65, 35, 89)]
        )
        result = BinaryShrink(TopKServer(dataset, k=2)).crawl()
        assert_complete(result, dataset)

    def test_two_dimensional(self):
        # Period 10 pattern: every populated point holds 5 copies.
        rows = [[i % 10, (i * 7) % 10] for i in range(50)]
        dataset = make_dataset(bounded_space((0, 9), (0, 9)), rows)
        result = BinaryShrink(TopKServer(dataset, k=5)).crawl()
        assert_complete(result, dataset)

    def test_duplicates(self):
        dataset = make_dataset(bounded_space((0, 7)), [[3]] * 5 + [[5]] * 2)
        result = BinaryShrink(TopKServer(dataset, k=5)).crawl()
        assert_complete(result, dataset)

    def test_negative_bounds(self):
        dataset = make_dataset(bounded_space((-10, -1)), [[-3], [-9], [-1]])
        result = BinaryShrink(TopKServer(dataset, k=1)).crawl()
        assert_complete(result, dataset)

    def test_empty_dataset(self):
        dataset = Dataset(bounded_space((0, 3)), [])
        result = BinaryShrink(TopKServer(dataset, k=2)).crawl()
        assert result.rows == [] and result.cost == 1


class TestCostBehaviour:
    def test_cost_grows_with_domain_size(self):
        """The paper's point: binary-shrink's cost scales with the domain.

        The same dense cluster of 8 tuples, once in a narrow domain and
        once in a huge domain with one far-away outlier: the wide domain
        needs ~log(domain) extra halvings to isolate the cluster.
        """
        narrow_vals = list(range(8))  # domain [0, 7]
        wide_vals = list(range(8)) + [2**20]  # domain [0, 2^20]
        costs = {}
        for label, vals in (("narrow", narrow_vals), ("wide", wide_vals)):
            space = bounded_space((min(vals), max(vals)))
            dataset = make_dataset(space, [[v] for v in vals])
            result = BinaryShrink(TopKServer(dataset, k=2)).crawl()
            costs[label] = result.cost
        assert costs["wide"] > 3 * costs["narrow"]

    def test_rank_shrink_wins_on_skewed_wide_domain(self):
        """Rank-shrink beats the baseline when data is skewed.

        Binary-shrink halves a huge, mostly-empty domain over and over
        before its rectangles reach the dense cluster; rank-shrink's
        data-driven split values go straight to the tuples.  (On
        perfectly uniform data the midpoint split can win by a constant
        factor -- the paper's claim is about skewed real data and the
        worst case, not every instance.)
        """
        vals = [10**9 + v * 3 for v in range(48)]  # dense cluster, far corner
        space = bounded_space((0, max(vals)))
        dataset = make_dataset(space, [[v] for v in vals])
        binary = BinaryShrink(TopKServer(dataset, k=4)).crawl()
        rank = RankShrink(TopKServer(dataset, k=4)).crawl()
        assert rank.cost < binary.cost
