"""Subtree-sharding suite: the splittable front and its parity contract.

Three layers of guarantees are pinned here:

* **presplit/merge exactness** -- for every splittable algorithm, the
  trunk + shards of one region, crawled in canonical order and merged,
  equal the unsharded region crawl byte for byte (rows, cost, progress
  curve, phase costs);
* **interleaving independence** -- a hypothesis property test crawls the
  shards in arbitrary completion orders and shows the merge still
  reproduces the sequential result exactly;
* **executor parity** -- every backend x rebalance combination with
  ``shard_subtrees`` enabled matches the unsharded sequential
  reference, field by field.

Plus unit tests for the two-level :class:`SubtreeScheduler` and the
shard-level :class:`CostEstimator` feedback.
"""

import functools
import threading
import time
from collections import deque

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crawl.spec import CrawlSpec
from repro.crawl.base import ProgressAggregator, SessionState
from repro.crawl.binary_shrink import BinaryShrink
from repro.crawl.dfs import DepthFirstSearch
from repro.crawl.executors import make_executor
from repro.crawl.hybrid import Hybrid
from repro.crawl.partition import (
    _crawl_region,
    crawl_partitioned,
    partition_space,
)
from repro.crawl.rank_shrink import RankShrink
from repro.crawl.rebalance import (
    CostEstimator,
    RegionTask,
    ShardTask,
    SubtreeScheduler,
)
from repro.crawl.sharding import (
    RegionShardPlan,
    SubtreeShard,
    TrunkSegment,
    crawl_shard,
    merge_region_shards,
    presplit_region,
)
from repro.dataspace.dataset import Dataset
from repro.dataspace.space import DataSpace
from repro.exceptions import AlgorithmInvariantError, QueryBudgetExhausted
from repro.query.query import Query
from repro.server.limits import QueryBudget
from repro.server.server import TopKServer

SESSIONS = 3


def skewed_mixed_dataset(seed=3, n=400, heavy=0.8):
    """One heavy categorical value dominating an otherwise even space."""
    rng = np.random.default_rng(seed)
    make = np.where(rng.random(n) < heavy, 1, rng.integers(1, 7, n))
    space = DataSpace.mixed(
        [("make", 6)], ["price"], numeric_bounds=[(0, 999)]
    )
    rows = np.column_stack([make, rng.integers(0, 1000, n)])
    return Dataset(space, rows.astype(np.int64))


def deep_mixed_dataset(seed=5, n=300):
    rng = np.random.default_rng(seed)
    space = DataSpace.mixed(
        [("make", 5), ("body", 3)],
        ["price", "miles"],
        numeric_bounds=[(0, 499), (0, 99)],
    )
    rows = np.column_stack(
        [
            rng.integers(1, 6, n),
            rng.integers(1, 4, n),
            rng.integers(0, 500, n),
            rng.integers(0, 100, n),
        ]
    )
    return Dataset(space, rows.astype(np.int64))


def numeric_dataset(seed=8, n=300):
    rng = np.random.default_rng(seed)
    space = DataSpace.numeric(2, bounds=[(0, 999), (0, 99)])
    rows = np.column_stack([rng.integers(0, 1000, n), rng.integers(0, 100, n)])
    return Dataset(space, rows.astype(np.int64))


def assert_region_identical(merged, reference):
    """Region-level determinism contract, field by field."""
    assert merged.rows == reference.rows
    assert merged.cost == reference.cost
    assert merged.progress == reference.progress
    assert merged.phase_costs == reference.phase_costs
    assert merged.complete == reference.complete
    assert merged.algorithm == reference.algorithm


def sharded_region_result(dataset, k, region, factory, max_shards=6):
    server = TopKServer(dataset, k)
    plan = presplit_region(
        server, region, crawler_factory=factory, max_shards=max_shards
    )
    results = [crawl_shard(server, region, shard) for shard in plan.shards]
    return plan, merge_region_shards(plan, results)


CASES = [
    ("hybrid-skewed", skewed_mixed_dataset, 16, Hybrid),
    ("hybrid-deep", deep_mixed_dataset, 16, Hybrid),
    (
        "hybrid-eager",
        deep_mixed_dataset,
        16,
        functools.partial(Hybrid, lazy=False),
    ),
    ("hybrid-numeric", numeric_dataset, 8, Hybrid),
    ("rank-shrink", numeric_dataset, 8, RankShrink),
    ("binary-shrink", numeric_dataset, 8, BinaryShrink),
]


class TestPresplitMerge:
    @pytest.mark.parametrize(
        "label,maker,k,factory", CASES, ids=[c[0] for c in CASES]
    )
    def test_merge_equals_unsharded_region_crawl(
        self, label, maker, k, factory
    ):
        dataset = maker()
        plan = partition_space(dataset.space, SESSIONS)
        for region in plan.regions:
            reference = _crawl_region(
                TopKServer(dataset, k),
                region,
                crawler_factory=factory,
                allow_partial=False,
            )
            _, merged = sharded_region_result(dataset, k, region, factory)
            assert_region_identical(merged, reference)

    def test_heavy_region_actually_splits(self):
        dataset = skewed_mixed_dataset()
        plan = partition_space(dataset.space, SESSIONS)
        heavy = plan.bundles[0][0]  # make=1 carries ~80% of the rows
        shard_plan, merged = sharded_region_result(
            dataset, 16, heavy, Hybrid, max_shards=6
        )
        assert len(shard_plan.shards) == 6
        # The trunk is a small serial fraction of the region's crawl.
        assert 0 < shard_plan.trunk_cost < merged.cost / 2

    def test_shards_are_pairwise_disjoint(self):
        dataset = skewed_mixed_dataset()
        plan = partition_space(dataset.space, SESSIONS)
        shard_plan, _ = sharded_region_result(
            dataset, 16, plan.bundles[0][0], Hybrid, max_shards=8
        )
        shards = shard_plan.shards
        for i in range(len(shards)):
            for j in range(i + 1, len(shards)):
                assert shards[i].query.intersect(shards[j].query) is None

    def test_shard_orders_are_canonical(self):
        dataset = skewed_mixed_dataset()
        plan = partition_space(dataset.space, SESSIONS)
        shard_plan, _ = sharded_region_result(
            dataset, 16, plan.bundles[0][0], Hybrid
        )
        assert [s.order for s in shard_plan.shards] == list(
            range(len(shard_plan.shards))
        )

    def test_unsplittable_algorithm_degrades_gracefully(self):
        space = DataSpace.categorical([4, 3])
        rng = np.random.default_rng(0)
        rows = np.column_stack(
            [rng.integers(1, 5, 80), rng.integers(1, 4, 80)]
        )
        dataset = Dataset(space, rows.astype(np.int64))
        plan = partition_space(space, 2)
        region = plan.bundles[0][0]
        reference = _crawl_region(
            TopKServer(dataset, 8),
            region,
            crawler_factory=DepthFirstSearch,
            allow_partial=False,
        )
        shard_plan, merged = sharded_region_result(
            dataset, 8, region, DepthFirstSearch
        )
        assert shard_plan.shards == ()
        assert_region_identical(merged, reference)

    def test_merge_rejects_mismatched_results(self):
        dataset = numeric_dataset()
        plan = partition_space(dataset.space, 2, attribute=0)
        shard_plan, _ = sharded_region_result(
            dataset, 8, plan.bundles[0][0], RankShrink
        )
        assert len(shard_plan.shards) > 1
        with pytest.raises(AlgorithmInvariantError):
            merge_region_shards(shard_plan, ())

    def test_partial_trunk_on_budget(self):
        dataset = skewed_mixed_dataset()
        plan = partition_space(dataset.space, SESSIONS)
        server = TopKServer(dataset, 16, limits=[QueryBudget(3)])
        shard_plan = presplit_region(
            server,
            plan.bundles[0][0],
            crawler_factory=Hybrid,
            allow_partial=True,
            max_shards=6,
        )
        assert not shard_plan.complete
        with pytest.raises(QueryBudgetExhausted):
            presplit_region(
                TopKServer(dataset, 16, limits=[QueryBudget(3)]),
                plan.bundles[0][0],
                crawler_factory=Hybrid,
                max_shards=6,
            )


class TestShardInterleaving:
    """Any completion order of the shards merges to the same bytes."""

    @given(data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_completion_order_is_irrelevant(self, data):
        dataset = skewed_mixed_dataset(n=250)
        plan = partition_space(dataset.space, SESSIONS)
        region = plan.bundles[0][0]
        reference = _crawl_region(
            TopKServer(dataset, 16),
            region,
            crawler_factory=Hybrid,
            allow_partial=False,
        )
        server = TopKServer(dataset, 16)
        shard_plan = presplit_region(
            server, region, crawler_factory=Hybrid, max_shards=6
        )
        order = data.draw(
            st.permutations(range(len(shard_plan.shards))), label="order"
        )
        results = {}
        for index in order:
            results[index] = crawl_shard(
                server, region, shard_plan.shards[index]
            )
        merged = merge_region_shards(
            shard_plan, [results[i] for i in range(len(shard_plan.shards))]
        )
        assert_region_identical(merged, reference)
        assert merged.cost == shard_plan.trunk_cost + sum(
            r.cost for r in results.values()
        )


class TestExecutorParity:
    """Every backend x rebalance, sharded, vs the unsharded reference."""

    MATRIX = [
        (name, rebalance)
        for name in ("sequential", "thread", "process", "async")
        for rebalance in (False, True)
    ]

    @pytest.fixture(scope="class")
    def dataset(self):
        return skewed_mixed_dataset()

    @pytest.fixture(scope="class")
    def plan(self, dataset):
        return partition_space(dataset.space, SESSIONS)

    @pytest.fixture(scope="class")
    def reference(self, dataset, plan):
        return crawl_partitioned(self.sources(dataset), plan)

    @staticmethod
    def sources(dataset):
        return [TopKServer(dataset, k=24) for _ in range(SESSIONS)]

    def assert_identical(self, result, reference):
        assert result.rows == reference.rows
        assert result.cost == reference.cost
        assert result.complete == reference.complete
        assert result.session_costs() == reference.session_costs()
        assert result.progress == reference.progress
        for i in range(result.plan.sessions):
            for a, b in zip(result.results[i], reference.results[i]):
                assert a.rows == b.rows
                assert a.cost == b.cost
                assert a.progress == b.progress

    @pytest.mark.parametrize("name,rebalance", MATRIX)
    def test_sharded_backend_matches_unsharded_sequential(
        self, name, rebalance, dataset, plan, reference
    ):
        executor = make_executor(name, max_workers=SESSIONS)
        result = executor.run(
            self.sources(dataset),
            plan, CrawlSpec(rebalance=rebalance, shard_subtrees=6))
        self.assert_identical(result, reference)
        assert sorted(result.rows) == sorted(dataset.iter_rows())

    def test_sharding_with_estimator_and_aggregator(self, dataset, plan):
        reference = crawl_partitioned(self.sources(dataset), plan)
        aggregator = ProgressAggregator(SESSIONS)
        estimator = CostEstimator(prior=10.0)
        result = make_executor("thread", max_workers=SESSIONS).run(
            self.sources(dataset),
            plan,
            CrawlSpec(
                rebalance=True,
                shard_subtrees=6,
                estimator=estimator,
                aggregator=aggregator,
            ),
        )
        self.assert_identical(result, reference)
        assert aggregator.states() == (SessionState.DONE,) * SESSIONS
        totals = aggregator.totals()
        assert totals.queries == result.cost
        assert totals.tuples == result.tuples_extracted
        # Every region's merged cost was recorded exactly.
        assert estimator.total_observed() == result.cost

    def test_invalid_shard_count_rejected(self, dataset, plan):
        with pytest.raises(ValueError, match="shard_subtrees"):
            make_executor("thread").run(
                self.sources(dataset), plan, CrawlSpec(shard_subtrees=0)
            )

    def test_failed_session_surfaces_with_sharding(self, dataset, plan):
        sources = [
            TopKServer(dataset, k=24, limits=[QueryBudget(1)]),
            TopKServer(dataset, k=24),
            TopKServer(dataset, k=24),
        ]
        aggregator = ProgressAggregator(SESSIONS)
        with pytest.raises(QueryBudgetExhausted):
            make_executor("thread", max_workers=SESSIONS).run(
                sources,
                plan,
                CrawlSpec(
                    rebalance=True,
                    shard_subtrees=4,
                    aggregator=aggregator,
                ),
            )
        assert aggregator.state(0) is SessionState.FAILED
        assert aggregator.all_terminal()


def _toy_region(value=1):
    space = DataSpace.mixed([("c", 4)], ["x"], numeric_bounds=[(0, 9)])
    return Query.full(space).with_value(0, value)


def _toy_shard(order, lo, hi, region=None):
    region = region if region is not None else _toy_region()
    return SubtreeShard(
        order=order,
        query=region.with_range(1, lo, hi),
        dims=(1,),
        algo="rank-shrink",
        threshold_divisor=4,
        seed=None,
        phase=None,
    )


def _toy_plan(region, shards):
    return RegionShardPlan(
        region=region,
        algorithm="hybrid",
        segments=tuple(
            TrunkSegment(rows=(), progress=(), cost=0)
            for _ in range(len(shards) + 1)
        ),
        shards=tuple(shards),
    )


class _FakeResult:
    def __init__(self, cost):
        self.cost = cost


class TestSubtreeScheduler:
    def bundles(self):
        r = _toy_region
        return ((r(1), r(2)), (r(3),))

    def test_regions_first_then_shards(self):
        scheduler = SubtreeScheduler(self.bundles())
        first = scheduler.acquire(0)
        assert isinstance(first, RegionTask) and first.key == (0, 0)
        region = first.region
        shards = [_toy_shard(i, i, i, region) for i in range(3)]
        assert scheduler.publish(first, _toy_plan(region, shards)) is None
        # Whole regions are preferred over the published shards.
        second = scheduler.acquire(1)
        assert isinstance(second, RegionTask) and second.key == (1, 0)
        third = scheduler.acquire(0)
        assert isinstance(third, RegionTask) and third.key == (0, 1)
        # Only now do workers fall through to subtree stealing.
        fourth = scheduler.acquire(1)
        assert isinstance(fourth, ShardTask)
        assert fourth.key == (0, 0) and fourth.shard.order == 0
        assert ((0, 0), 1) in scheduler.steals()

    def test_last_shard_completion_hands_back_the_merge(self):
        scheduler = SubtreeScheduler(((_toy_region(),),))
        task = scheduler.acquire(0)
        region = task.region
        shards = [_toy_shard(i, i, i, region) for i in range(2)]
        scheduler.publish(task, _toy_plan(region, shards))
        a = scheduler.acquire(0)
        b = scheduler.acquire(0)
        assert {a.shard.order, b.shard.order} == {0, 1}
        assert scheduler.complete_shard(a, _FakeResult(5)) is None
        completion = scheduler.complete_shard(b, _FakeResult(7))
        assert completion is not None
        assert completion.task.key == (0, 0)
        assert len(completion.results) == 2
        # Exact shard costs reached the estimator on the way through.
        assert scheduler.estimator.shard_observed((0, 0)) == (12, 2)
        assert scheduler.estimator.shard_mean((0, 0)) == 6.0
        scheduler.complete_region((0, 0), 20)
        assert scheduler.done()
        assert scheduler.acquire(0) is None
        assert scheduler.completed_costs() == {(0, 0): 20}

    def test_zero_shard_plan_completes_immediately(self):
        scheduler = SubtreeScheduler(((_toy_region(),),))
        task = scheduler.acquire(0)
        completion = scheduler.publish(task, _toy_plan(task.region, []))
        assert completion is not None and completion.results == ()
        scheduler.complete_region(task.key, 3)
        assert scheduler.done()

    def test_costliest_live_region_is_the_shard_victim(self):
        # Region (1, 0) starts with a heavy prior; once measured shard
        # costs exist they take over the victim choice.
        estimator = CostEstimator(priors={(1, 0): 1000.0})
        scheduler = SubtreeScheduler(self.bundles(), estimator)
        t00 = scheduler.acquire(0)
        t10 = scheduler.acquire(1)
        t01 = scheduler.acquire(0)
        cheap = [_toy_shard(i, i, i, t00.region) for i in range(2)]
        dear = [_toy_shard(i, i, i, t10.region) for i in range(2)]
        scheduler.publish(t00, _toy_plan(t00.region, cheap))
        scheduler.publish(t10, _toy_plan(t10.region, dear))
        s = scheduler.acquire(1)
        assert s.key == (1, 0)  # the prior marks it costliest
        scheduler.complete_shard(s, _FakeResult(100))
        nxt = scheduler.acquire(0)
        assert nxt.key == (1, 0)  # measured shard mean 100 beats 0.5
        scheduler.complete_shard(nxt, _FakeResult(90))
        # Only region (0, 0)'s shards remain.
        rest = [scheduler.acquire(0), scheduler.acquire(0)]
        assert [t.key for t in rest] == [(0, 0), (0, 0)]
        # Subtree steals by a foreign worker were recorded.
        assert ((1, 0), 0) in scheduler.steals()
        scheduler.fail(t01)

    def test_blocking_acquire_waits_for_published_shards(self):
        scheduler = SubtreeScheduler(((_toy_region(),),))
        task = scheduler.acquire(0)
        got = []

        def thief():
            got.append(scheduler.acquire(1))

        thread = threading.Thread(target=thief)
        thread.start()
        time.sleep(0.05)
        assert not got  # blocked: a presplit is in flight
        shards = [_toy_shard(0, 0, 0, task.region)]
        scheduler.publish(task, _toy_plan(task.region, shards))
        thread.join(timeout=2)
        assert not thread.is_alive()
        assert isinstance(got[0], ShardTask)

    def test_nonblocking_poll_returns_none_while_in_flight(self):
        scheduler = SubtreeScheduler(((_toy_region(),),))
        task = scheduler.acquire(0, block=False)
        assert isinstance(task, RegionTask)
        assert scheduler.acquire(0, block=False) is None
        assert not scheduler.done()

    def test_shard_failure_fails_the_region(self):
        scheduler = SubtreeScheduler(((_toy_region(),),))
        task = scheduler.acquire(0)
        shards = [_toy_shard(i, i, i, task.region) for i in range(3)]
        scheduler.publish(task, _toy_plan(task.region, shards))
        a = scheduler.acquire(0)
        b = scheduler.acquire(0)
        scheduler.fail(a)
        # Queued shards of the failed region are dropped; the sibling
        # in flight drains silently and the region never merges.
        assert scheduler.complete_shard(b, _FakeResult(2)) is None
        assert scheduler.acquire(0) is None
        assert scheduler.failed_keys() == {(0, 0)}
        assert scheduler.done()

    def test_double_completion_rejected(self):
        scheduler = SubtreeScheduler(((_toy_region(),),))
        task = scheduler.acquire(0)
        shards = [_toy_shard(0, 0, 0, task.region)]
        scheduler.publish(task, _toy_plan(task.region, shards))
        shard_task = scheduler.acquire(0)
        scheduler.complete_shard(shard_task, _FakeResult(1))
        with pytest.raises(AlgorithmInvariantError):
            scheduler.complete_shard(shard_task, _FakeResult(1))

    def test_publish_requires_acquisition(self):
        scheduler = SubtreeScheduler(((_toy_region(),),))
        rogue = RegionTask(0, 0, _toy_region())
        with pytest.raises(AlgorithmInvariantError):
            scheduler.publish(rogue, _toy_plan(rogue.region, []))


class TestCostEstimatorShards:
    def test_record_shard_accumulates_exactly(self):
        estimator = CostEstimator()
        assert estimator.shard_mean((0, 0)) is None
        estimator.record_shard((0, 0), 10)
        estimator.record_shard((0, 0), 20)
        assert estimator.shard_observed((0, 0)) == (30, 2)
        assert estimator.shard_mean((0, 0)) == 15.0
        # Region-level observations stay independent.
        assert estimator.estimate((0, 0)) == 1.0
        estimator.record((0, 0), 35)
        assert estimator.estimate((0, 0)) == 35.0
        # The exact merged total supersedes the partial shard view, so
        # a reused estimator cannot leak stale shard means forward.
        assert estimator.shard_mean((0, 0)) is None
        assert estimator.shard_observed((0, 0)) == (0, 0)

    @given(costs=st.lists(st.integers(0, 1000), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_shard_accounting_is_exact_under_any_schedule(self, costs):
        estimator = CostEstimator()
        for cost in costs:
            estimator.record_shard((1, 2), cost)
        total, count = estimator.shard_observed((1, 2))
        assert total == sum(costs)
        assert count == len(costs)
        assert estimator.shard_mean((1, 2)) == sum(costs) / len(costs)


class TestSchedulerInterleavingProperty:
    """Hypothesis: arbitrary acquire/complete schedules keep exact books."""

    @given(data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_any_schedule_accounts_every_shard_once(self, data):
        region = _toy_region()
        scheduler = SubtreeScheduler(((region,),))
        task = scheduler.acquire(0)
        n = data.draw(st.integers(1, 6), label="shards")
        shards = [_toy_shard(i, i, i, region) for i in range(n)]
        scheduler.publish(task, _toy_plan(region, shards))
        acquired = deque()
        completion = None
        costs = []
        while completion is None:
            can_acquire = scheduler.remaining() > 0 and not scheduler.done()
            take = data.draw(st.booleans(), label="take") if acquired else True
            if take and can_acquire:
                nxt = scheduler.acquire(0, block=False)
                if nxt is not None:
                    acquired.append(nxt)
                    continue
            which = data.draw(st.integers(0, len(acquired) - 1), label="which")
            acquired.rotate(-which)
            shard_task = acquired.popleft()
            cost = data.draw(st.integers(0, 50), label="cost")
            costs.append(cost)
            completion = scheduler.complete_shard(
                shard_task, _FakeResult(cost)
            )
        assert not acquired or completion is None
        assert len(completion.results) == n
        total, count = scheduler.estimator.shard_observed(task.key)
        assert count == n
        assert total == sum(costs)


class TestAdaptiveShardBudgets:
    """Satellite: --shard-subtrees auto presplits only regions whose
    estimated cost exceeds the fleet's fair share, and stays
    byte-identical to the unsharded sequential reference on every
    backend."""

    AUTO_MATRIX = [
        ("sequential", False),
        ("thread", False),
        ("thread", True),
        ("async", True),
        ("process", True),
    ]

    @pytest.fixture(scope="class")
    def dataset(self):
        return skewed_mixed_dataset()

    @pytest.fixture(scope="class")
    def plan(self, dataset):
        return partition_space(dataset.space, SESSIONS)

    @staticmethod
    def sources(dataset):
        return [TopKServer(dataset, k=24) for _ in range(SESSIONS)]

    @pytest.fixture(scope="class")
    def reference(self, dataset, plan):
        return crawl_partitioned(self.sources(dataset), plan)

    @pytest.fixture(scope="class")
    def seeded_estimator(self, dataset, plan, reference):
        """Observed per-region costs of a previous crawl of the plan."""

        def build():
            estimator = CostEstimator()
            for session, results in enumerate(reference.results):
                for index, result in enumerate(results):
                    estimator.record((session, index), result.cost)
            return estimator

        return build

    @pytest.mark.parametrize("name,rebalance", AUTO_MATRIX)
    def test_auto_matches_unsharded_sequential(
        self, name, rebalance, dataset, plan, reference, seeded_estimator
    ):
        executor = make_executor(name, max_workers=SESSIONS)
        result = executor.run(
            self.sources(dataset),
            plan,
            CrawlSpec(
                rebalance=rebalance,
                shard_subtrees="auto",
                estimator=seeded_estimator(),
            ),
        )
        assert result.rows == reference.rows
        assert result.cost == reference.cost
        assert result.progress == reference.progress
        assert sorted(result.rows) == sorted(dataset.iter_rows())

    def test_auto_presplits_the_heavy_region_only(
        self, dataset, plan, reference, seeded_estimator
    ):
        """The skewed plan has one dominant region; the fair-share rule
        must budget it (and only comparable heavyweights)."""
        from repro.crawl.runtime import ShardPolicy

        estimator = seeded_estimator()
        policy = ShardPolicy.adaptive(plan, estimator, workers=SESSIONS)
        costs = {
            (session, index): result.cost
            for session, results in enumerate(reference.results)
            for index, result in enumerate(results)
        }
        fair = sum(costs.values()) / SESSIONS
        assert set(policy.budgets) == {
            key for key, cost in costs.items() if cost > fair
        }
        assert policy.sharded  # the heavy region busts its fair share

    def test_auto_without_estimator_runs_whole_regions(
        self, dataset, plan, reference
    ):
        """No knowledge, regions >= workers: auto spends no presplits
        but still crawls identically."""
        result = make_executor("thread", max_workers=SESSIONS).run(
            self.sources(dataset),
            plan, CrawlSpec(rebalance=True, shard_subtrees="auto"))
        assert result.rows == reference.rows
        assert result.cost == reference.cost
