"""Tests for slice-cover and lazy-slice-cover (Figures 5 and 6)."""

import pytest

from repro.crawl.slice_cover import LazySliceCover, SliceCover
from repro.crawl.verify import assert_complete
from repro.datasets.paper_examples import figure5_dataset, figure5_server
from repro.dataspace.space import DataSpace
from repro.exceptions import SchemaError
from repro.query.query import slice_query
from repro.server.client import CachingClient
from repro.server.server import TopKServer
from repro.theory.bounds import slice_cover_upper_bound
from tests.conftest import make_dataset


class TestFigure6LookupTable:
    """The slice-table contents of Figure 6 (k = 3)."""

    def test_table_contents(self):
        server = figure5_server()
        client = CachingClient(server)
        space = server.space
        expected_overflow = {
            (0, 1): True,
            (0, 2): False,
            (0, 3): True,
            (0, 4): False,
        }
        for (attr, value), overflow in expected_overflow.items():
            resp = client.run(slice_query(space, attr, value))
            assert resp.overflow == overflow
        # Figure 6, second row: every A2 slice resolves with these bags.
        expected_rows = {
            1: {(1, 1), (3, 1)},
            2: {(1, 2), (3, 2), (4, 2)},
            3: {(1, 3), (3, 3)},  # t9 duplicates (3,3)
            4: {(1, 4), (2, 4)},
        }
        for value, bag in expected_rows.items():
            resp = client.run(slice_query(space, 1, value))
            assert resp.resolved
            assert set(resp.rows) == bag


class TestFigure5Execution:
    def test_eager_issues_only_the_slice_table(self):
        """Paper: "No query is ever issued ... in the entire process"."""
        result = SliceCover(figure5_server()).crawl()
        assert result.cost == 8  # sum of domain sizes: 4 + 4
        assert result.phase_costs == {"slice-table": 8, "traversal": 0}

    def test_lazy_costs_root_plus_slices_here(self):
        result = LazySliceCover(figure5_server()).crawl()
        assert result.cost == 9  # the root query + all 8 slices

    def test_both_complete(self):
        for cls in (SliceCover, LazySliceCover):
            result = cls(figure5_server()).crawl()
            assert_complete(result, figure5_dataset())


class TestSingleAttribute:
    """The d = 1 case: cost is exactly U1 for the eager algorithm."""

    def test_eager_costs_u1(self):
        dataset = make_dataset(
            DataSpace.categorical([6]), [[1], [1], [4], [6]]
        )
        result = SliceCover(TopKServer(dataset, k=2)).crawl()
        assert result.cost == 6
        assert_complete(result, dataset)

    def test_lazy_costs_u1_plus_root(self):
        dataset = make_dataset(
            DataSpace.categorical([6]), [[1], [1], [4], [6]]
        )
        result = LazySliceCover(TopKServer(dataset, k=2)).crawl()
        assert result.cost == 7
        assert_complete(result, dataset)

    def test_lazy_resolved_root_costs_one(self):
        dataset = make_dataset(DataSpace.categorical([100]), [[7]])
        result = LazySliceCover(TopKServer(dataset, k=2)).crawl()
        assert result.cost == 1


class TestLazyVsEager:
    def test_lazy_never_pays_more_than_eager_plus_one(self):
        """Lazy touches a subset of the slices (plus the root query)."""
        rows = [[1 + i % 2, 1 + i % 5, 1 + (i * 3) % 7] for i in range(60)]
        dataset = make_dataset(DataSpace.categorical([2, 5, 7]), rows)
        for k in (2, 4, 16):
            eager = SliceCover(TopKServer(dataset, k=k)).crawl()
            lazy = LazySliceCover(TopKServer(dataset, k=k)).crawl()
            assert lazy.cost <= eager.cost + 1
            assert_complete(eager, dataset)
            assert_complete(lazy, dataset)

    def test_lazy_skips_unneeded_slices(self):
        """With a huge second domain mostly pruned, lazy wins big."""
        rows = [[1, 1 + i % 3] for i in range(12)]
        dataset = make_dataset(DataSpace.categorical([2, 500]), rows)
        eager = SliceCover(TopKServer(dataset, k=20)).crawl()
        lazy = LazySliceCover(TopKServer(dataset, k=20)).crawl()
        assert eager.cost == 502  # the whole slice table
        assert lazy.cost <= 3  # root + the two A1 slices at most
        assert_complete(lazy, dataset)


class TestBounds:
    def test_cost_within_lemma4_bound(self):
        from repro.datasets.synthetic import random_dataset

        space = DataSpace.categorical([3, 4, 6])
        dataset = random_dataset(space, 200, seed=13, duplicate_factor=0.1)
        floor = dataset.max_multiplicity()
        for k in (max(2, floor), 8 + floor, 32 + floor):
            bound = slice_cover_upper_bound(dataset.n, k, [3, 4, 6])
            for cls in (SliceCover, LazySliceCover):
                crawler = cls(TopKServer(dataset, k=k), max_queries=bound)
                result = crawler.crawl()
                assert result.cost <= bound


class TestValidation:
    def test_rejects_non_categorical(self):
        dataset = make_dataset(DataSpace.numeric(1), [[1]])
        for cls in (SliceCover, LazySliceCover):
            with pytest.raises(SchemaError):
                cls(TopKServer(dataset, k=2))

    def test_slice_table_guard(self):
        """Consulting the eager table before preprocessing is a bug."""
        from repro.crawl.slice_cover import slice_response

        dataset = make_dataset(DataSpace.categorical([2, 2]), [[1, 1]])
        crawler = SliceCover(TopKServer(dataset, k=1))
        with pytest.raises(SchemaError):
            slice_response(crawler, 0, 1, lazy=False)


class TestSharedClientAccounting:
    def test_second_run_over_warm_cache_is_free(self):
        dataset = figure5_dataset()
        server = figure5_server()
        client = CachingClient(server)
        first = SliceCover(client).crawl()
        second = SliceCover(client).crawl()
        assert first.cost == 8
        assert second.cost == 0  # everything cached
        assert_complete(second, dataset)
