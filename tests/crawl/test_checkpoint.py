"""Tests for crawl checkpointing (cross-process resume)."""

import pytest

from repro.crawl.checkpoint import load_checkpoint, save_checkpoint
from repro.crawl.hybrid import Hybrid
from repro.crawl.verify import assert_complete
from repro.datasets.synthetic import random_dataset
from repro.dataspace.space import DataSpace
from repro.exceptions import SchemaError
from repro.server.client import CachingClient
from repro.server.limits import QueryBudget
from repro.server.server import TopKServer


@pytest.fixture
def dataset():
    space = DataSpace.mixed([("c", 4)], ["x", "y"])
    return random_dataset(space, 400, seed=8, numeric_range=(0, 80))


class TestRoundTrip:
    def test_interrupted_crawl_resumes_across_clients(self, dataset, tmp_path):
        # "Process 1": crawl under a tight budget, checkpoint, die.
        budget = QueryBudget(12)
        server1 = TopKServer(dataset, k=16, priority_seed=4, limits=[budget])
        client1 = CachingClient(server1)
        partial = Hybrid(client1).crawl(allow_partial=True)
        assert not partial.complete
        checkpoint = save_checkpoint(client1, tmp_path / "crawl.json")

        # "Process 2": fresh client over a fresh server; same seeds.
        server2 = TopKServer(dataset, k=16, priority_seed=4)
        client2 = CachingClient(server2)
        restored = load_checkpoint(client2, checkpoint)
        assert restored == partial.cost
        finished = Hybrid(client2).crawl()
        assert finished.complete
        assert_complete(finished, dataset)
        # The resumed process never repeated the checkpointed queries.
        one_shot_cost = (
            Hybrid(TopKServer(dataset, k=16, priority_seed=4)).crawl().cost
        )
        assert server2.stats.queries == one_shot_cost - restored

    def test_restored_entries_cost_nothing(self, dataset, tmp_path):
        server = TopKServer(dataset, k=16, priority_seed=4)
        client = CachingClient(server)
        Hybrid(client).crawl()
        path = save_checkpoint(client, tmp_path / "c.json")

        fresh = CachingClient(TopKServer(dataset, k=16, priority_seed=4))
        load_checkpoint(fresh, path)
        assert fresh.cost == 0

    def test_idempotent_load(self, dataset, tmp_path):
        server = TopKServer(dataset, k=16)
        client = CachingClient(server)
        Hybrid(client).crawl()
        path = save_checkpoint(client, tmp_path / "c.json")
        again = CachingClient(TopKServer(dataset, k=16))
        assert load_checkpoint(again, path) > 0
        assert load_checkpoint(again, path) == 0  # everything known already


class TestSafety:
    def test_rejects_wrong_space(self, dataset, tmp_path):
        client = CachingClient(TopKServer(dataset, k=16))
        Hybrid(client).crawl()
        path = save_checkpoint(client, tmp_path / "c.json")
        other_space = DataSpace.mixed([("c", 5)], ["x", "y"])
        other = random_dataset(other_space, 10, seed=0)
        with pytest.raises(SchemaError):
            load_checkpoint(CachingClient(TopKServer(other, k=16)), path)

    def test_rejects_wrong_k(self, dataset, tmp_path):
        client = CachingClient(TopKServer(dataset, k=16))
        Hybrid(client).crawl()
        path = save_checkpoint(client, tmp_path / "c.json")
        with pytest.raises(SchemaError):
            load_checkpoint(CachingClient(TopKServer(dataset, k=32)), path)

    def test_rejects_unknown_version(self, dataset, tmp_path):
        import json

        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 99}))
        with pytest.raises(SchemaError):
            load_checkpoint(CachingClient(TopKServer(dataset, k=16)), path)

    def test_preserves_overflow_flags_and_duplicates(self, tmp_path):
        space = DataSpace.categorical([3])
        from tests.conftest import make_dataset

        heavy = make_dataset(space, [[1]] * 5 + [[2], [2]])
        client = CachingClient(TopKServer(heavy, k=3, priority_seed=1))
        from repro.query.query import slice_query

        for value in (1, 2, 3):
            client.run(slice_query(space, 0, value))
        path = save_checkpoint(client, tmp_path / "c.json")

        fresh = CachingClient(TopKServer(heavy, k=3, priority_seed=1))
        load_checkpoint(fresh, path)
        restored = fresh.run(slice_query(space, 0, 1))
        assert restored.overflow
        duplicated = fresh.run(slice_query(space, 0, 2))
        assert sorted(duplicated.rows) == [(2,), (2,)]
        assert fresh.cost == 0
