"""Tests for crawl checkpointing (cross-process resume)."""

import json
import shutil

import pytest

from repro.crawl.spec import CrawlSpec
from repro.crawl.checkpoint import (
    CheckpointWriter,
    load_checkpoint,
    load_crawl_checkpoint,
    save_checkpoint,
    save_crawl_checkpoint,
)
from repro.crawl.executors import SequentialExecutor, ThreadExecutor
from repro.crawl.hybrid import Hybrid
from repro.crawl.partition import partition_space
from repro.crawl.verify import assert_complete
from repro.datasets.synthetic import random_dataset
from repro.dataspace.space import DataSpace
from repro.exceptions import SchemaError
from repro.server.client import CachingClient
from repro.server.limits import QueryBudget
from repro.server.server import TopKServer


@pytest.fixture
def dataset():
    space = DataSpace.mixed([("c", 4)], ["x", "y"])
    return random_dataset(space, 400, seed=8, numeric_range=(0, 80))


class TestRoundTrip:
    def test_interrupted_crawl_resumes_across_clients(self, dataset, tmp_path):
        # "Process 1": crawl under a tight budget, checkpoint, die.
        budget = QueryBudget(12)
        server1 = TopKServer(dataset, k=16, priority_seed=4, limits=[budget])
        client1 = CachingClient(server1)
        partial = Hybrid(client1).crawl(allow_partial=True)
        assert not partial.complete
        checkpoint = save_checkpoint(client1, tmp_path / "crawl.json")

        # "Process 2": fresh client over a fresh server; same seeds.
        server2 = TopKServer(dataset, k=16, priority_seed=4)
        client2 = CachingClient(server2)
        restored = load_checkpoint(client2, checkpoint)
        assert restored == partial.cost
        finished = Hybrid(client2).crawl()
        assert finished.complete
        assert_complete(finished, dataset)
        # The resumed process never repeated the checkpointed queries.
        one_shot_cost = (
            Hybrid(TopKServer(dataset, k=16, priority_seed=4)).crawl().cost
        )
        assert server2.stats.queries == one_shot_cost - restored

    def test_restored_entries_cost_nothing(self, dataset, tmp_path):
        server = TopKServer(dataset, k=16, priority_seed=4)
        client = CachingClient(server)
        Hybrid(client).crawl()
        path = save_checkpoint(client, tmp_path / "c.json")

        fresh = CachingClient(TopKServer(dataset, k=16, priority_seed=4))
        load_checkpoint(fresh, path)
        assert fresh.cost == 0

    def test_idempotent_load(self, dataset, tmp_path):
        server = TopKServer(dataset, k=16)
        client = CachingClient(server)
        Hybrid(client).crawl()
        path = save_checkpoint(client, tmp_path / "c.json")
        again = CachingClient(TopKServer(dataset, k=16))
        assert load_checkpoint(again, path) > 0
        assert load_checkpoint(again, path) == 0  # everything known already


class TestSafety:
    def test_rejects_wrong_space(self, dataset, tmp_path):
        client = CachingClient(TopKServer(dataset, k=16))
        Hybrid(client).crawl()
        path = save_checkpoint(client, tmp_path / "c.json")
        other_space = DataSpace.mixed([("c", 5)], ["x", "y"])
        other = random_dataset(other_space, 10, seed=0)
        with pytest.raises(SchemaError):
            load_checkpoint(CachingClient(TopKServer(other, k=16)), path)

    def test_rejects_wrong_k(self, dataset, tmp_path):
        client = CachingClient(TopKServer(dataset, k=16))
        Hybrid(client).crawl()
        path = save_checkpoint(client, tmp_path / "c.json")
        with pytest.raises(SchemaError):
            load_checkpoint(CachingClient(TopKServer(dataset, k=32)), path)

    def test_rejects_unknown_version(self, dataset, tmp_path):
        import json

        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 99}))
        with pytest.raises(SchemaError):
            load_checkpoint(CachingClient(TopKServer(dataset, k=16)), path)

    def test_preserves_overflow_flags_and_duplicates(self, tmp_path):
        space = DataSpace.categorical([3])
        from tests.conftest import make_dataset

        heavy = make_dataset(space, [[1]] * 5 + [[2], [2]])
        client = CachingClient(TopKServer(heavy, k=3, priority_seed=1))
        from repro.query.query import slice_query

        for value in (1, 2, 3):
            client.run(slice_query(space, 0, value))
        path = save_checkpoint(client, tmp_path / "c.json")

        fresh = CachingClient(TopKServer(heavy, k=3, priority_seed=1))
        load_checkpoint(fresh, path)
        restored = fresh.run(slice_query(space, 0, 1))
        assert restored.overflow
        duplicated = fresh.run(slice_query(space, 0, 2))
        assert sorted(duplicated.rows) == [(2,), (2,)]
        assert fresh.cost == 0


class TestAtomicWrites:
    """A crash mid-save never corrupts the previous checkpoint."""

    def _seeded_checkpoint(self, dataset, tmp_path):
        client = CachingClient(TopKServer(dataset, k=16))
        Hybrid(client).crawl()
        path = save_checkpoint(client, tmp_path / "c.json")
        return path, path.read_text()

    def test_torn_json_write_leaves_old_file_intact(
        self, dataset, tmp_path, monkeypatch
    ):
        path, before = self._seeded_checkpoint(dataset, tmp_path)

        def torn_dump(payload, handle, **kwargs):
            handle.write('{"version": 2, "kind": "cac')  # half a file
            raise OSError("disk full")

        monkeypatch.setattr(json, "dump", torn_dump)
        with pytest.raises(OSError, match="disk full"):
            save_checkpoint(
                CachingClient(TopKServer(dataset, k=16)), path
            )
        monkeypatch.undo()
        # The old complete state survived, and no temp litter remains.
        assert path.read_text() == before
        assert list(tmp_path.glob("*.tmp")) == []
        fresh = CachingClient(TopKServer(dataset, k=16))
        assert load_checkpoint(fresh, path) > 0

    def test_failed_replace_leaves_old_file_intact(
        self, dataset, tmp_path, monkeypatch
    ):
        import repro.crawl.checkpoint as checkpoint_module

        path, before = self._seeded_checkpoint(dataset, tmp_path)

        def no_replace(src, dst):
            raise OSError("rename refused")

        monkeypatch.setattr(checkpoint_module.os, "replace", no_replace)
        with pytest.raises(OSError, match="rename refused"):
            save_checkpoint(
                CachingClient(TopKServer(dataset, k=16)), path
            )
        monkeypatch.undo()
        assert path.read_text() == before
        assert list(tmp_path.glob("*.tmp")) == []


class TestFormatGates:
    def test_rejects_files_from_a_newer_release(self, dataset, tmp_path):
        client = CachingClient(TopKServer(dataset, k=16))
        Hybrid(client).crawl()
        path = save_checkpoint(client, tmp_path / "c.json")
        payload = json.loads(path.read_text())
        payload["version"] = 3
        path.write_text(json.dumps(payload))
        fresh = CachingClient(TopKServer(dataset, k=16))
        with pytest.raises(SchemaError, match="newer release"):
            load_checkpoint(fresh, path)

    def test_rejects_non_integer_version(self, dataset, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": "2", "entries": []}))
        with pytest.raises(SchemaError, match="unsupported"):
            load_checkpoint(CachingClient(TopKServer(dataset, k=16)), path)

    def test_version_one_files_still_load_as_cache(self, dataset, tmp_path):
        """Pre-discriminator files (all cache checkpoints) keep working."""
        client = CachingClient(TopKServer(dataset, k=16))
        Hybrid(client).crawl()
        path = save_checkpoint(client, tmp_path / "c.json")
        payload = json.loads(path.read_text())
        payload["version"] = 1
        del payload["kind"]
        path.write_text(json.dumps(payload))
        fresh = CachingClient(TopKServer(dataset, k=16))
        assert load_checkpoint(fresh, path) > 0

    def test_loaders_reject_each_others_kind(self, dataset, tmp_path):
        plan = partition_space(dataset.space, 2)
        cache_path = tmp_path / "cache.json"
        runtime_path = tmp_path / "runtime.json"
        client = CachingClient(TopKServer(dataset, k=16))
        Hybrid(client).crawl()
        save_checkpoint(client, cache_path)
        save_crawl_checkpoint(runtime_path, plan, 16, {})
        with pytest.raises(SchemaError, match="load_crawl_checkpoint"):
            load_checkpoint(
                CachingClient(TopKServer(dataset, k=16)), runtime_path
            )
        with pytest.raises(SchemaError, match="load_checkpoint"):
            load_crawl_checkpoint(cache_path, plan, 16)


class TestRuntimeCheckpoint:
    """Full-crawl runtime state: save, load, resume byte-identically."""

    SESSIONS = 2

    def _plan(self, dataset):
        return partition_space(dataset.space, self.SESSIONS)

    def _sources(self, dataset):
        return [
            TopKServer(dataset, k=16, priority_seed=4)
            for _ in range(self.SESSIONS)
        ]

    def _assert_identical(self, result, reference):
        assert result.rows == reference.rows
        assert result.cost == reference.cost
        assert result.complete == reference.complete
        assert result.session_costs() == reference.session_costs()
        assert result.progress == reference.progress

    def test_round_trip_preserves_every_result_field(
        self, dataset, tmp_path
    ):
        plan = self._plan(dataset)
        completed = {}
        SequentialExecutor().run(
            self._sources(dataset),
            plan,
            CrawlSpec(
                on_region=lambda key, result: completed.__setitem__(
                    key, result
                )
            ),
        )
        path = save_crawl_checkpoint(
            tmp_path / "run.json", plan, 16, completed
        )
        loaded = load_crawl_checkpoint(path, plan, 16)
        assert set(loaded.completed) == set(completed)
        for key, original in completed.items():
            restored = loaded.completed[key]
            assert restored.algorithm == original.algorithm
            assert restored.rows == original.rows
            assert restored.cost == original.cost
            assert restored.complete == original.complete
            assert restored.progress == original.progress
            assert restored.phase_costs == original.phase_costs

    def test_rejects_wrong_plan_k_and_space(self, dataset, tmp_path):
        plan = self._plan(dataset)
        path = save_crawl_checkpoint(tmp_path / "run.json", plan, 16, {})
        with pytest.raises(SchemaError, match="plan"):
            load_crawl_checkpoint(
                path, partition_space(dataset.space, 3), 16
            )
        with pytest.raises(SchemaError, match="k="):
            load_crawl_checkpoint(path, plan, 32)
        other_space = DataSpace.mixed([("c", 5)], ["x", "y"])
        other = random_dataset(other_space, 10, seed=0)
        with pytest.raises(SchemaError, match="data"):
            load_crawl_checkpoint(
                path, partition_space(other.space, 2), 16
            )

    def test_rejects_entries_outside_the_plan(self, dataset, tmp_path):
        plan = self._plan(dataset)
        path = save_crawl_checkpoint(tmp_path / "run.json", plan, 16, {})
        payload = json.loads(path.read_text())
        payload["completed"] = [
            {
                "session": 7,
                "index": 0,
                "result": {
                    "algorithm": "x",
                    "rows": [],
                    "cost": 0,
                    "complete": True,
                    "progress": [],
                    "phase_costs": {},
                },
            }
        ]
        path.write_text(json.dumps(payload))
        with pytest.raises(SchemaError, match="outside the plan"):
            load_crawl_checkpoint(path, plan, 16)

    def test_executor_rejects_completed_outside_the_plan(self, dataset):
        plan = self._plan(dataset)
        completed = {}
        SequentialExecutor().run(
            self._sources(dataset),
            plan,
            CrawlSpec(
                on_region=lambda key, result: completed.__setitem__(
                    key, result
                )
            ),
        )
        some_result = next(iter(completed.values()))
        with pytest.raises(SchemaError, match="outside the plan"):
            SequentialExecutor().run(
                self._sources(dataset),
                plan, CrawlSpec(completed={(9, 9): some_result}))

    def test_budget_state_round_trip(self, dataset, tmp_path):
        plan = self._plan(dataset)
        budget = QueryBudget(500)
        sources = [
            TopKServer(dataset, k=16, priority_seed=4, limits=[budget])
            for _ in range(self.SESSIONS)
        ]
        SequentialExecutor().run(sources, plan)
        assert budget.used > 0
        path = save_crawl_checkpoint(
            tmp_path / "run.json", plan, 16, {}, budget=budget.state()
        )
        loaded = load_crawl_checkpoint(path, plan, 16)
        fresh = QueryBudget(500)
        fresh.restore_state(loaded.budget)
        assert fresh.used == budget.used
        assert fresh.state() == budget.state()

    def test_kill_at_every_region_boundary_resumes_byte_identically(
        self, dataset, tmp_path
    ):
        """The acceptance bar: snapshot the writer's actual file after
        every region boundary, then resume each snapshot on fresh
        servers -- merged bytes identical, completed regions re-issue
        zero queries, and a full checkpoint re-issues none at all."""
        plan = self._plan(dataset)
        reference = SequentialExecutor().run(self._sources(dataset), plan)
        path = tmp_path / "crawl.json"
        writer = CheckpointWriter(path, plan, 16)
        writer.write()  # seed the file before any region completes
        seed = tmp_path / "crawl.0.json"
        shutil.copy(path, seed)
        snapshots = [seed]  # boundary 0: before any region
        count = 0

        def snapshot(key, result):
            nonlocal count
            writer.region_done(key, result)
            count += 1
            copy = tmp_path / f"crawl.{count}.json"
            shutil.copy(path, copy)
            snapshots.append(copy)

        SequentialExecutor().run(
            self._sources(dataset), plan, CrawlSpec(on_region=snapshot))
        assert count == len(plan.regions)
        for boundary, snapshot_path in enumerate(snapshots):
            checkpoint = load_crawl_checkpoint(snapshot_path, plan, 16)
            assert len(checkpoint.completed) == boundary
            sources = self._sources(dataset)
            resumed = ThreadExecutor(max_workers=self.SESSIONS).run(
                sources,
                plan,
                CrawlSpec(
                    rebalance=True, completed=checkpoint.completed
                ),
            )
            self._assert_identical(resumed, reference)
            if boundary == len(plan.regions):
                # Full checkpoint: the resume issues zero queries.
                assert [s.stats.queries for s in sources] == [0, 0]

    def test_resumed_regions_are_never_recrawled(self, dataset, tmp_path):
        """Per-session server books prove the prefix is not re-issued:
        a session whose regions are all checkpointed stays silent."""
        plan = self._plan(dataset)
        completed = {}
        SequentialExecutor().run(
            self._sources(dataset),
            plan,
            CrawlSpec(
                on_region=lambda key, result: completed.__setitem__(
                    key, result
                )
            ),
        )
        # Checkpoint exactly session 0's regions.
        prefix = {key: completed[key] for key in completed if key[0] == 0}
        path = save_crawl_checkpoint(
            tmp_path / "run.json", plan, 16, prefix
        )
        checkpoint = load_crawl_checkpoint(path, plan, 16)
        sources = self._sources(dataset)
        resumed = SequentialExecutor().run(
            sources, plan, CrawlSpec(completed=checkpoint.completed))
        assert resumed.complete
        assert sources[0].stats.queries == 0  # fully restored session
        assert sources[1].stats.queries > 0  # still had work to do
