"""Runtime-core tests: the one drive loop behind every backend.

The tentpole refactor moved all dispatch semantics into
:mod:`repro.crawl.runtime`; the executor parity suites already prove
every backend produces byte-identical results *through* the runtime, so
these tests pin the runtime's own contracts directly: the shard-policy
planner (uniform vs adaptive fair-share), the sink protocols, and the
drive loops' failure and flush behaviour against fake runners.
"""

import numpy as np
import pytest

from repro.crawl.base import ProgressAggregator, SessionState
from repro.crawl.partition import partition_space
from repro.crawl.rebalance import (
    CostEstimator,
    RegionTask,
    WorkStealingScheduler,
)
from repro.crawl.runtime import (
    AggregatorFeed,
    BatchSink,
    GridSink,
    LocalUnitRunner,
    ShardPolicy,
    UnitRunner,
    drive_session,
    drive_stealing,
    steal_setup,
)
from repro.dataspace.dataset import Dataset
from repro.dataspace.space import DataSpace

SESSIONS = 3


def small_dataset(seed=3, n=120):
    rng = np.random.default_rng(seed)
    space = DataSpace.mixed(
        [("make", 6)], ["price"], numeric_bounds=[(0, 199)]
    )
    rows = np.column_stack(
        [rng.integers(1, 7, n), rng.integers(0, 200, n)]
    ).astype(np.int64)
    return Dataset(space, rows)


@pytest.fixture(scope="module")
def dataset():
    return small_dataset()


@pytest.fixture(scope="module")
def plan(dataset):
    return partition_space(dataset.space, SESSIONS)


class _FakeResult:
    def __init__(self, cost=1, rows=()):
        self.cost = cost
        self.rows = list(rows)


class _ScriptedRunner(UnitRunner):
    """Regions cost 1 each; listed keys raise instead."""

    def __init__(self, failing=()):
        self.failing = set(failing)
        self.ran = []
        self.boundaries = 0

    def region(self, task):
        self.ran.append(task.key)
        if task.key in self.failing:
            raise RuntimeError(f"boom {task.key}")
        return _FakeResult()

    def presplit(self, task, max_shards):
        raise AssertionError("no shard policy in this test")

    def shard(self, task):
        raise AssertionError("no shard policy in this test")

    def region_boundary(self):
        self.boundaries += 1


class TestShardPolicy:
    def test_uniform_budgets_every_region(self, plan):
        policy = ShardPolicy.uniform(plan, 4)
        assert policy.sharded
        assert policy.max_budget == 4
        for session, bundle in enumerate(plan.bundles):
            for index in range(len(bundle)):
                assert policy.budget_for((session, index)) == 4

    def test_uniform_rejects_nonpositive(self, plan):
        with pytest.raises(ValueError, match="shard_subtrees"):
            ShardPolicy.uniform(plan, 0)

    def test_adaptive_flat_estimates_presplit_nothing(self, plan):
        """Uniform estimates with regions >= workers: whole-region
        stealing already balances, so auto spends no presplits."""
        policy = ShardPolicy.adaptive(plan, CostEstimator(), workers=3)
        assert not policy.sharded
        assert policy.max_budget == 0

    def test_adaptive_splits_only_regions_above_fair_share(self, plan):
        estimator = CostEstimator(
            prior=1.0, priors={(0, 0): 500.0, (1, 0): 2.0}
        )
        policy = ShardPolicy.adaptive(plan, estimator, workers=3)
        # Only the dominant region busts total/3; it gets a real budget.
        assert set(policy.budgets) == {(0, 0)}
        assert policy.budget_for((0, 0)) >= 2
        assert policy.budget_for((1, 0)) is None

    def test_adaptive_budget_scales_with_dominance_capped_at_target(
        self, plan
    ):
        estimator = CostEstimator(prior=1.0, priors={(0, 0): 10_000.0})
        scaled = ShardPolicy.adaptive(plan, estimator, workers=4, target=8)
        # fair share = total/4, so the dominant region spans ~4 shares.
        assert scaled.budget_for((0, 0)) == 4
        capped = ShardPolicy.adaptive(plan, estimator, workers=16, target=8)
        assert capped.budget_for((0, 0)) == 8  # capped at the target

    def test_sequential_auto_presplits_nothing(self, plan):
        """A one-worker backend has no fleet to balance: auto must
        resolve to an empty policy however skewed the estimates."""
        from repro.crawl.executors import SequentialExecutor

        estimator = CostEstimator(prior=1.0, priors={(0, 0): 500.0})
        policy = ShardPolicy.adaptive(plan, estimator, workers=1)
        assert not policy.sharded
        assert SequentialExecutor()._policy_fleet(plan, True) == 1

    def test_static_dispatch_auto_presplits_nothing(self, plan):
        """Without stealing there is nobody to hand shards to, so the
        executors resolve 'auto' against a fleet of one."""
        from repro.crawl.executors import ThreadExecutor

        executor = ThreadExecutor(max_workers=4)
        assert executor._policy_fleet(plan, False) == 1
        assert executor._policy_fleet(plan, True) > 1

    def test_resolve_maps_the_run_argument(self, plan):
        assert ShardPolicy.resolve(None, plan, None, 4) is None
        uniform = ShardPolicy.resolve(6, plan, None, 4)
        assert uniform.max_budget == 6
        auto = ShardPolicy.resolve("auto", plan, None, 4)
        assert isinstance(auto, ShardPolicy)
        with pytest.raises(ValueError, match="shard_subtrees"):
            ShardPolicy.resolve(0, plan, None, 4)
        with pytest.raises(ValueError, match="shard_subtrees"):
            ShardPolicy.resolve("many", plan, None, 4)
        with pytest.raises(ValueError, match="shard_subtrees"):
            ShardPolicy.resolve(True, plan, None, 4)


class TestDriveSession:
    def test_stops_at_the_sessions_first_failure(self, plan):
        feed = AggregatorFeed(None, plan)
        sink = GridSink(plan, feed)
        runner = _ScriptedRunner(failing={(0, 0)})
        ok = drive_session(0, plan.bundles[0], runner, sink)
        assert not ok
        assert sink.failures and sink.failures[0][0] == (0, 0)
        # Later regions of the failed session were never attempted.
        assert runner.ran == [(0, 0)]

    def test_flushes_at_every_region_boundary(self, plan):
        feed = AggregatorFeed(None, plan)
        sink = GridSink(plan, feed)
        runner = _ScriptedRunner()
        assert drive_session(0, plan.bundles[0], runner, sink)
        assert runner.boundaries == len(plan.bundles[0])

    def test_marks_sessions_done_through_the_feed(self, plan):
        aggregator = ProgressAggregator(plan.sessions)
        feed = AggregatorFeed(aggregator, plan)
        sink = GridSink(plan, feed)
        runner = _ScriptedRunner()
        assert drive_session(0, plan.bundles[0], runner, sink)
        assert aggregator.state(0) is SessionState.DONE


class TestDriveStealing:
    def test_drains_the_whole_plan_and_records_costs(self, plan):
        feed = AggregatorFeed(None, plan)
        sink = GridSink(plan, feed)
        scheduler = WorkStealingScheduler(plan.bundles)
        runner = _ScriptedRunner()
        drive_stealing(scheduler, 0, runner, sink)
        assert scheduler.done()
        total = sum(len(bundle) for bundle in plan.bundles)
        assert len(scheduler.completed_costs()) == total
        assert all(
            sink.grid[s][i] is not None
            for s, bundle in enumerate(plan.bundles)
            for i in range(len(bundle))
        )
        # Final drain fires one extra boundary flush.
        assert runner.boundaries == total + 1

    def test_failures_drain_without_stopping_other_regions(self, plan):
        feed = AggregatorFeed(None, plan)
        sink = GridSink(plan, feed)
        scheduler = WorkStealingScheduler(plan.bundles)
        runner = _ScriptedRunner(failing={(1, 0)})
        drive_stealing(scheduler, 0, runner, sink)
        assert scheduler.done()
        assert [key for key, _ in sink.failures] == [(1, 0)]
        assert scheduler.failed_keys() == {(1, 0)}

    def test_real_crawl_through_the_loop_matches_reference(
        self, dataset, plan
    ):
        from repro.crawl.hybrid import Hybrid
        from repro.crawl.partition import crawl_partitioned
        from repro.server.server import TopKServer

        def sources():
            return [TopKServer(dataset, k=16) for _ in range(SESSIONS)]

        reference = crawl_partitioned(sources(), plan)
        feed = AggregatorFeed(None, plan)
        sink = GridSink(plan, feed)
        scheduler, _ = steal_setup(plan, None, ShardPolicy.uniform(plan, 4))
        runner = LocalUnitRunner(sources(), Hybrid, False, feed=feed)
        drive_stealing(
            scheduler, None, runner, sink, ShardPolicy.uniform(plan, 4)
        )
        merged_rows = [
            row
            for session in sink.grid
            for result in session
            for row in result.rows
        ]
        assert merged_rows == reference.rows
        assert (
            sum(r.cost for session in sink.grid for r in session)
            == reference.cost
        )


class TestBatchSink:
    def test_batches_results_and_failures_without_a_plane(self):
        sink = BatchSink()
        sink.region_done((0, 1), _FakeResult(cost=3, rows=[(1,)]))
        sink.region_failed((1, 0), 1, RuntimeError("x"))
        results, failures = sink.batch
        assert [key for key, _ in results] == [(0, 1)]
        assert [key for key, _ in failures] == [(1, 0)]

    def test_streams_events_through_a_plane(self):
        class _Plane:
            def __init__(self):
                self.events = []

            def push_event(self, event):
                self.events.append(event)

        plane = _Plane()
        sink = BatchSink(plane)
        sink.region_done((2, 1), _FakeResult(cost=5, rows=[(1,), (2,)]))
        sink.region_failed((0, 0), 0, RuntimeError("x"))
        assert plane.events == [("region", 2, 1, 5, 2), ("failed", 0)]


class TestGridSink:
    def test_file_batch_respects_update_feed(self, plan):
        aggregator = ProgressAggregator(plan.sessions)
        feed = AggregatorFeed(aggregator, plan)
        sink = GridSink(plan, feed)
        result = _FakeResult(cost=2, rows=[(1,)])
        sink.file_batch([((0, 0), result)], [], update_feed=False)
        assert sink.grid[0][0] is result
        assert aggregator.totals().queries == 0  # feed untouched
        sink.file_batch([((1, 0), result)], [], update_feed=True)
        assert aggregator.totals().queries == 2


class TestRegionTaskDefaults:
    def test_task_runs_by_key_through_local_runner(self, dataset, plan):
        from repro.crawl.hybrid import Hybrid
        from repro.server.server import TopKServer

        sources = [TopKServer(dataset, k=16) for _ in range(SESSIONS)]
        runner = LocalUnitRunner(sources, Hybrid, False)
        task = RegionTask(0, 0, plan.bundles[0][0])
        result = runner.region(task)
        assert result.complete
        runner.region_boundary()  # no flush hook: a silent no-op
