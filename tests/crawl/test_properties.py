"""Property-based tests: every algorithm extracts the exact bag.

The central correctness statement of Problem 1, checked with hypothesis
over random small instances of every space kind: the crawler's output
equals the hidden bag -- duplicates included -- and its cost stays
within the Theorem 1 envelope for the algorithms that have one.
"""

from hypothesis import given, settings

from repro.crawl.binary_shrink import BinaryShrink
from repro.crawl.dfs import DepthFirstSearch
from repro.crawl.hybrid import Hybrid
from repro.crawl.rank_shrink import RankShrink
from repro.crawl.slice_cover import LazySliceCover, SliceCover
from repro.crawl.verify import verify_complete
from repro.dataspace.space import SpaceKind
from repro.server.server import TopKServer
from repro.theory.bounds import upper_bound_for_dataset
from tests.conftest import small_instances

_SETTINGS = dict(max_examples=80, deadline=None)


def crawl_and_verify(dataset, k, crawler_cls, **kwargs):
    server = TopKServer(dataset, k)
    result = crawler_cls(server, **kwargs).crawl()
    report = verify_complete(result, dataset)
    assert report.complete, report.summary()
    return result


class TestHybridEverywhere:
    """Hybrid accepts all space kinds -- the universal property test."""

    @given(instance=small_instances())
    @settings(**_SETTINGS)
    def test_lazy_hybrid_exact(self, instance):
        dataset, k = instance
        result = crawl_and_verify(dataset, k, Hybrid)
        assert result.complete

    @given(instance=small_instances())
    @settings(**_SETTINGS)
    def test_eager_hybrid_exact(self, instance):
        dataset, k = instance
        crawl_and_verify(dataset, k, Hybrid, lazy=False)

    @given(instance=small_instances())
    @settings(**_SETTINGS)
    def test_hybrid_within_theorem1_bound(self, instance):
        dataset, k = instance
        bound = upper_bound_for_dataset(dataset, k)
        server = TopKServer(dataset, k)
        result = Hybrid(server, max_queries=bound).crawl()
        assert result.cost <= bound


class TestNumericAlgorithms:
    @given(instance=small_instances(max_dim=3))
    @settings(**_SETTINGS)
    def test_rank_shrink_exact(self, instance):
        dataset, k = instance
        if dataset.space.kind is not SpaceKind.NUMERIC:
            return
        crawl_and_verify(dataset, k, RankShrink)

    @given(instance=small_instances(max_dim=2))
    @settings(**_SETTINGS)
    def test_binary_shrink_exact(self, instance):
        dataset, k = instance
        if dataset.space.kind is not SpaceKind.NUMERIC or dataset.n == 0:
            return
        bounded = dataset.with_bounds_from_data()
        crawl_and_verify(bounded, k, BinaryShrink)

    @given(instance=small_instances(max_dim=3))
    @settings(**_SETTINGS)
    def test_rank_shrink_nonstandard_divisor(self, instance):
        """Correctness holds for any threshold divisor >= 2."""
        dataset, k = instance
        if dataset.space.kind is not SpaceKind.NUMERIC:
            return
        for divisor in (2, 3, 8):
            crawl_and_verify(dataset, k, RankShrink, threshold_divisor=divisor)


class TestCategoricalAlgorithms:
    @given(instance=small_instances())
    @settings(**_SETTINGS)
    def test_all_three_agree(self, instance):
        dataset, k = instance
        if dataset.space.kind is not SpaceKind.CATEGORICAL:
            return
        for cls in (DepthFirstSearch, SliceCover, LazySliceCover):
            crawl_and_verify(dataset, k, cls)

    @given(instance=small_instances())
    @settings(**_SETTINGS)
    def test_lazy_cheaper_or_equal_to_eager_plus_root(self, instance):
        dataset, k = instance
        if dataset.space.kind is not SpaceKind.CATEGORICAL:
            return
        eager = crawl_and_verify(dataset, k, SliceCover)
        lazy = crawl_and_verify(dataset, k, LazySliceCover)
        assert lazy.cost <= eager.cost + 1


class TestDeterminism:
    @given(instance=small_instances())
    @settings(max_examples=30, deadline=None)
    def test_crawl_is_reproducible(self, instance):
        dataset, k = instance
        a = Hybrid(TopKServer(dataset, k, priority_seed=7))
        b = Hybrid(TopKServer(dataset, k, priority_seed=7))
        ra, rb = a.crawl(), b.crawl()
        assert ra.cost == rb.cost
        assert a.client.history == b.client.history
        assert sorted(ra.rows) == sorted(rb.rows)
