"""Tests for the hybrid algorithm on mixed (and degenerate) spaces."""

import pytest

from repro.crawl.hybrid import Hybrid
from repro.crawl.rank_shrink import RankShrink
from repro.crawl.slice_cover import LazySliceCover
from repro.crawl.verify import assert_complete
from repro.datasets.synthetic import random_dataset
from repro.dataspace.space import DataSpace
from repro.query.predicates import EqualityPredicate
from repro.server.server import TopKServer
from repro.theory.bounds import hybrid_upper_bound


@pytest.fixture
def mixed_dataset(mixed_space):
    return random_dataset(
        mixed_space, 300, seed=9, numeric_range=(0, 40), duplicate_factor=0.15
    )


class TestMixedSpaces:
    @pytest.mark.parametrize("lazy", [True, False])
    def test_completeness(self, mixed_dataset, lazy):
        for k in (4, 16, 64):
            result = Hybrid(TopKServer(mixed_dataset, k=k), lazy=lazy).crawl()
            assert_complete(result, mixed_dataset)

    def test_numeric_subcrawls_pin_the_categorical_prefix(self, mixed_dataset):
        crawler = Hybrid(TopKServer(mixed_dataset, k=8))
        crawler.crawl()
        for query in crawler.client.history:
            # Any query with a numeric constraint must have every
            # categorical attribute pinned (rank-shrink runs inside one
            # categorical point's subspace).
            numeric_constrained = any(
                not p.is_unconstrained
                for p in query.predicates[mixed_dataset.space.cat :]
            )
            if numeric_constrained:
                for pred in query.predicates[: mixed_dataset.space.cat]:
                    assert isinstance(pred, EqualityPredicate)
                    assert pred.value is not None

    def test_cost_within_lemma9_bound(self, mixed_dataset):
        space = mixed_dataset.space
        for k in (4, 16):
            bound = hybrid_upper_bound(
                mixed_dataset.n,
                k,
                list(space.categorical_domain_sizes),
                space.dimensionality,
            )
            crawler = Hybrid(TopKServer(mixed_dataset, k=k), max_queries=bound)
            result = crawler.crawl()
            assert result.cost <= bound


class TestDegenerateSpaces:
    def test_pure_numeric_equals_rank_shrink(self):
        space = DataSpace.numeric(2)
        dataset = random_dataset(space, 150, seed=4, numeric_range=(0, 30))
        hybrid = Hybrid(TopKServer(dataset, k=8)).crawl()
        rank = RankShrink(TopKServer(dataset, k=8)).crawl()
        assert hybrid.cost == rank.cost
        assert_complete(hybrid, dataset)

    def test_pure_categorical_equals_lazy_slice_cover(self):
        space = DataSpace.categorical([3, 4, 5])
        dataset = random_dataset(space, 200, seed=4)
        hybrid = Hybrid(TopKServer(dataset, k=8)).crawl()
        lazy = LazySliceCover(TopKServer(dataset, k=8)).crawl()
        assert hybrid.cost == lazy.cost
        assert_complete(hybrid, dataset)

    def test_cat_equals_one(self):
        """The cat = 1 special case of Theorem 1: U1 + O(d n/k)."""
        space = DataSpace.mixed([("c", 5)], ["x", "y"])
        dataset = random_dataset(space, 250, seed=6, numeric_range=(0, 60))
        result = Hybrid(TopKServer(dataset, k=8)).crawl()
        assert_complete(result, dataset)
        bound = hybrid_upper_bound(dataset.n, 8, [5], 3)
        assert result.cost <= bound


class TestSmallCases:
    def test_resolved_root_lazy(self, mixed_space):
        dataset = random_dataset(mixed_space, 3, seed=1)
        result = Hybrid(TopKServer(dataset, k=10), lazy=True).crawl()
        assert result.cost == 1
        assert_complete(result, dataset)

    def test_eager_pays_slice_table_even_when_tiny(self, mixed_space):
        dataset = random_dataset(mixed_space, 3, seed=1)
        result = Hybrid(TopKServer(dataset, k=10), lazy=False).crawl()
        assert result.cost == sum(mixed_space.categorical_domain_sizes)
        assert_complete(result, dataset)

    def test_empty_dataset(self, mixed_space):
        from repro.dataspace.dataset import Dataset

        dataset = Dataset(mixed_space, [])
        result = Hybrid(TopKServer(dataset, k=4)).crawl()
        assert result.rows == []
