"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.dataspace.dataset import Dataset
from repro.dataspace.space import DataSpace


# ----------------------------------------------------------------------
# Plain fixtures
# ----------------------------------------------------------------------
@pytest.fixture
def numeric_space_2d() -> DataSpace:
    return DataSpace.numeric(2, bounds=[(0, 100), (0, 100)])


@pytest.fixture
def categorical_space_2d() -> DataSpace:
    return DataSpace.categorical([4, 4])


@pytest.fixture
def mixed_space() -> DataSpace:
    return DataSpace.mixed([("make", 3), ("body", 4)], ["price", "year"])


def make_dataset(space: DataSpace, rows) -> Dataset:
    """Dataset helper with validation on."""
    return Dataset(space, np.asarray(rows, dtype=np.int64))


# ----------------------------------------------------------------------
# Hypothesis strategies for small random crawl instances
# ----------------------------------------------------------------------
@st.composite
def small_spaces(draw, max_dim: int = 3, max_domain: int = 5):
    """A random small data space of any kind."""
    d = draw(st.integers(1, max_dim))
    cat = draw(st.integers(0, d))
    sizes = [draw(st.integers(1, max_domain)) for _ in range(cat)]
    space_cat = [(f"C{i}", sizes[i]) for i in range(cat)]
    numeric_names = [f"N{i}" for i in range(d - cat)]
    if cat == 0:
        return DataSpace.numeric(d, names=numeric_names)
    if cat == d:
        return DataSpace.categorical(sizes, names=[n for n, _ in space_cat])
    return DataSpace.mixed(space_cat, numeric_names)


@st.composite
def small_instances(
    draw,
    max_dim: int = 3,
    max_domain: int = 5,
    max_n: int = 40,
    max_value: int = 12,
    max_k: int = 8,
):
    """A random (dataset, k) pair guaranteed to be crawlable.

    Tuples are drawn coordinate-wise; some rows are duplicated to
    exercise bag semantics.  ``k`` is drawn at least as large as the
    maximum point multiplicity so Problem 1 is solvable.
    """
    space = draw(small_spaces(max_dim=max_dim, max_domain=max_domain))
    n = draw(st.integers(0, max_n))
    rows = []
    for _ in range(n):
        row = []
        for attr in space:
            if attr.is_categorical:
                row.append(draw(st.integers(1, attr.domain_size)))
            else:
                row.append(draw(st.integers(-max_value, max_value)))
        rows.append(tuple(row))
        # Occasionally duplicate the row just generated.
        if rows and draw(st.booleans()):
            rows.append(rows[-1])
    matrix = (
        np.asarray(rows, dtype=np.int64)
        if rows
        else np.empty((0, space.dimensionality), dtype=np.int64)
    )
    dataset = Dataset(space, matrix)
    k = draw(
        st.integers(
            max(1, dataset.max_multiplicity()),
            max(max_k, dataset.max_multiplicity()),
        )
    )
    return dataset, k
