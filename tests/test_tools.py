"""The repo's CI tooling, tested like the code it gates."""

from pathlib import Path

from tools.check_no_raw_run import check, main

CRAWL_DIR = Path(__file__).resolve().parents[1] / "src" / "repro" / "crawl"


class TestCheckNoRawRun:
    def test_current_tree_is_clean(self):
        assert check([CRAWL_DIR]) == []
        assert main([str(CRAWL_DIR)]) == 0

    def test_flags_raw_client_run(self, tmp_path):
        bad = tmp_path / "algo.py"
        bad.write_text(
            "class C:\n"
            "    def _execute(self):\n"
            "        self._client.run(query)\n",
            encoding="utf-8",
        )
        problems = check([tmp_path])
        assert len(problems) == 1
        assert "algo.py:3" in problems[0]
        assert main([str(tmp_path)]) == 1

    def test_flags_run_batch_via_public_client(self, tmp_path):
        bad = tmp_path / "algo.py"
        bad.write_text(
            "def helper(crawler, queries):\n"
            "    return crawler.client.run_batch(queries)\n",
            encoding="utf-8",
        )
        assert len(check([tmp_path])) == 1

    def test_base_py_is_exempt(self, tmp_path):
        allowed = tmp_path / "base.py"
        allowed.write_text(
            "class Crawler:\n"
            "    def _run_query(self, query):\n"
            "        return self._client.run(query)\n",
            encoding="utf-8",
        )
        assert check([tmp_path]) == []

    def test_helper_methods_are_not_flagged(self, tmp_path):
        fine = tmp_path / "algo.py"
        fine.write_text(
            "class C:\n"
            "    def _execute(self):\n"
            "        self._run_battery(queries)\n"
            "        self._run_query(query)\n",
            encoding="utf-8",
        )
        assert check([tmp_path]) == []
