"""Tests for the instrumented rank-shrink recursion tree (Lemma 1)."""

import pytest

from repro.crawl.rank_shrink import RankShrink
from repro.datasets.paper_examples import figure3_dataset, figure3_server
from repro.dataspace.space import DataSpace
from repro.server.server import TopKServer
from repro.theory.recursion_tree import (
    RecursionTreeAnalysis,
    RecursionTreeTracer,
)
from tests.conftest import make_dataset


def traced_crawl(server, dataset):
    tracer = RecursionTreeTracer()
    crawler = RankShrink(server, tracer=tracer)
    crawler.crawl()
    return tracer, RecursionTreeAnalysis(tracer, dataset, server.k)


class TestFigure3Tree:
    """The recursion tree of Figure 3b, node for node."""

    def test_structure(self):
        dataset = figure3_dataset()
        tracer, _ = traced_crawl(figure3_server(), dataset)
        assert tracer.size == 6
        root = tracer.nodes[0]
        assert root.role == "root"
        assert root.split_kind == "3way"
        assert root.split_value == 55
        assert len(root.children) == 3
        assert len(tracer.leaves()) == 4
        assert len(tracer.internal_nodes()) == 2

    def test_leaf_types_match_the_paper(self):
        """Paper: "q3 is of type 1, q5 and q6 are of type 2, q4 of type 3"."""
        dataset = figure3_dataset()
        tracer, analysis = traced_crawl(figure3_server(), dataset)
        assert analysis.leaf_type_counts() == {1: 1, 2: 2, 3: 1}

    def test_lemma1_counting_argument(self):
        dataset = figure3_dataset()
        _, analysis = traced_crawl(figure3_server(), dataset)
        analysis.check_lemma1_counts()


class TestOnRandom1d:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("k", [4, 8, 16])
    def test_lemma1_holds(self, seed, k):
        from repro.datasets.synthetic import random_dataset

        dataset = random_dataset(
            DataSpace.numeric(1), 300, seed=seed, numeric_range=(0, 80),
            duplicate_factor=0.2,
        )
        if dataset.max_multiplicity() > k:
            pytest.skip("instance infeasible at this k")
        tracer, analysis = traced_crawl(TopKServer(dataset, k=k), dataset)
        analysis.check_lemma1_counts()
        # Lemma 1's conclusion: O(n/k) queries; the proof constant is 12
        # internal + 12 leaves; we check the generous 24 n/k + 1.
        assert tracer.size <= 24 * max(1, dataset.n // k + 1) + 1

    def test_tuples_covered(self):
        dataset = make_dataset(DataSpace.numeric(1), [[1], [1], [5]])
        tracer, analysis = traced_crawl(TopKServer(dataset, k=4), dataset)
        (root,) = tracer.nodes
        assert analysis.tuples_covered(root) == 3

    def test_leaf_type_rejects_internal(self):
        dataset = figure3_dataset()
        tracer, analysis = traced_crawl(figure3_server(), dataset)
        root = tracer.nodes[0]
        with pytest.raises(ValueError):
            analysis.leaf_type(root)


class TestTracerStructure:
    def test_parents_and_siblings(self):
        dataset = figure3_dataset()
        tracer, _ = traced_crawl(figure3_server(), dataset)
        root = tracer.nodes[0]
        children = [tracer.nodes[i] for i in root.children]
        for child in children:
            assert child.parent_id == root.node_id
            siblings = tracer.siblings(child)
            assert len(siblings) == 2
        assert tracer.siblings(root) == []
