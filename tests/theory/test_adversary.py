"""Adversary tests: choice-independence of the bounds, impossibility."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.crawl.dfs import DepthFirstSearch
from repro.crawl.hybrid import Hybrid
from repro.crawl.rank_shrink import RankShrink
from repro.crawl.slice_cover import LazySliceCover
from repro.crawl.verify import assert_complete
from repro.dataspace.dataset import Dataset
from repro.dataspace.space import DataSpace, SpaceKind
from repro.exceptions import (
    AlgorithmInvariantError,
    InfeasibleCrawlError,
    SchemaError,
)
from repro.query.query import Query, point_query
from repro.server.server import TopKServer
from repro.theory.adversary import (
    AdversarialTopKServer,
    DuplicateHidingServer,
    ModeClusterPolicy,
    PriorityOrderPolicy,
    RankByAttributePolicy,
    ResponsePolicy,
)
from repro.theory.bounds import upper_bound_for_dataset
from tests.conftest import small_instances


def _numeric_dataset(seed=3, n=200):
    rng = np.random.default_rng(seed)
    space = DataSpace.numeric(2)
    rows = np.column_stack(
        [rng.integers(0, 40, n), rng.integers(0, 1000, n)]
    ).astype(np.int64)
    return Dataset(space, rows)


class TestPolicies:
    def test_priority_order_matches_reference_server(self):
        dataset = _numeric_dataset()
        reference = TopKServer(
            dataset, k=8, priorities=range(dataset.n, 0, -1)
        )
        # Reference with explicit priorities = original row order, which
        # is also what the adversarial evaluation sees.
        adversarial = AdversarialTopKServer(dataset, 8, PriorityOrderPolicy())
        for q in [
            Query.full(dataset.space),
            Query.full(dataset.space).with_range(0, 5, 20),
            Query.full(dataset.space).with_range(1, 100, 300),
        ]:
            assert adversarial.run(q) == reference.run(q)

    def test_rank_by_attribute_returns_extremes(self):
        dataset = _numeric_dataset()
        server = AdversarialTopKServer(dataset, 8, RankByAttributePolicy(1))
        response = server.run(Query.full(dataset.space))
        assert response.overflow
        returned = sorted(row[1] for row in response.rows)
        all_values = sorted(row[1] for row in dataset.iter_rows())
        assert returned == all_values[:8]

    def test_rank_descending(self):
        dataset = _numeric_dataset()
        server = AdversarialTopKServer(
            dataset, 8, RankByAttributePolicy(1, descending=True)
        )
        response = server.run(Query.full(dataset.space))
        returned = sorted(row[1] for row in response.rows)
        all_values = sorted(row[1] for row in dataset.iter_rows())
        assert returned == all_values[-8:]

    def test_mode_cluster_concentrates_on_mode(self):
        space = DataSpace.numeric(1)
        rows = [(5,)] * 6 + [(v,) for v in range(10, 20)]
        dataset = Dataset(space, rows)
        server = AdversarialTopKServer(dataset, 8, ModeClusterPolicy(0))
        response = server.run(Query.full(space))
        assert sum(1 for row in response.rows if row[0] == 5) == 6

    def test_responses_deterministic(self):
        dataset = _numeric_dataset()
        for policy in (
            PriorityOrderPolicy(),
            RankByAttributePolicy(0),
            ModeClusterPolicy(0),
        ):
            server = AdversarialTopKServer(dataset, 8, policy)
            q = Query.full(dataset.space)
            assert server.run(q) == server.run(q)

    def test_resolved_queries_bypass_policy(self):
        dataset = _numeric_dataset()

        class ExplodingPolicy(ResponsePolicy):
            name = "exploding"

            def select(self, matching, k, query):  # pragma: no cover
                raise RuntimeError("must not be called for resolved queries")

        server = AdversarialTopKServer(dataset, 10**6, ExplodingPolicy())
        response = server.run(Query.full(dataset.space))
        assert response.resolved and len(response.rows) == dataset.n


class TestHonesty:
    """The server rejects policies that lie."""

    def test_wrong_cardinality_rejected(self):
        class ShortPolicy(ResponsePolicy):
            name = "short"

            def select(self, matching, k, query):
                return list(matching[: k - 1])

        dataset = _numeric_dataset()
        server = AdversarialTopKServer(dataset, 8, ShortPolicy())
        with pytest.raises(AlgorithmInvariantError):
            server.run(Query.full(dataset.space))

    def test_fabricated_tuples_rejected(self):
        class LiarPolicy(ResponsePolicy):
            name = "liar"

            def select(self, matching, k, query):
                return [(-999, -999)] * k

        dataset = _numeric_dataset()
        server = AdversarialTopKServer(dataset, 8, LiarPolicy())
        with pytest.raises(AlgorithmInvariantError):
            server.run(Query.full(dataset.space))

    def test_inflated_multiplicity_rejected(self):
        class DuplicatorPolicy(ResponsePolicy):
            name = "duplicator"

            def select(self, matching, k, query):
                return [matching[0]] * k

        space = DataSpace.numeric(1)
        dataset = Dataset(space, [(v,) for v in range(20)])
        server = AdversarialTopKServer(dataset, 8, DuplicatorPolicy())
        with pytest.raises(AlgorithmInvariantError):
            server.run(Query.full(space))

    def test_wrong_space_rejected(self):
        dataset = _numeric_dataset()
        server = AdversarialTopKServer(dataset, 8, PriorityOrderPolicy())
        other = DataSpace.numeric(2, names=["x", "y"])
        with pytest.raises(SchemaError):
            server.run(Query.full(other))


class TestBoundsSurviveAdversaries:
    """Theorem 1 holds for any k-subset choice the server makes."""

    @pytest.mark.parametrize(
        "policy_factory",
        [
            lambda: RankByAttributePolicy(0),
            lambda: RankByAttributePolicy(1, descending=True),
            lambda: ModeClusterPolicy(0),
        ],
    )
    def test_rank_shrink_bound_under_adversary(self, policy_factory):
        dataset = _numeric_dataset(seed=11, n=400)
        k = 16
        bound = upper_bound_for_dataset(dataset, k)
        server = AdversarialTopKServer(dataset, k, policy_factory())
        result = RankShrink(server, max_queries=bound).crawl()
        assert_complete(result, dataset)
        assert result.cost <= bound

    @given(instance=small_instances())
    @settings(max_examples=30, deadline=None)
    def test_random_instances_under_skewed_ranking(self, instance):
        dataset, k = instance
        policy = RankByAttributePolicy(dataset.space.dimensionality - 1)
        server = AdversarialTopKServer(dataset, k, policy)
        bound = upper_bound_for_dataset(dataset, k)
        if dataset.space.kind is SpaceKind.NUMERIC:
            crawler = RankShrink(server, max_queries=bound)
        elif dataset.space.kind is SpaceKind.CATEGORICAL:
            crawler = LazySliceCover(server, max_queries=bound)
        else:
            crawler = Hybrid(server, max_queries=bound)
        result = crawler.crawl()
        assert_complete(result, dataset)


class TestDuplicateHiding:
    @pytest.fixture
    def overloaded(self):
        space = DataSpace.mixed([("c", 3)], ["v"])
        rows = [(1, 7)] * 5 + [(2, 1), (2, 2), (3, 9)]
        return Dataset(space, rows)

    def test_requires_overloaded_point(self, overloaded):
        with pytest.raises(SchemaError):
            DuplicateHidingServer(overloaded, k=5, point=(1, 7))
        DuplicateHidingServer(overloaded, k=4, point=(1, 7))

    def test_point_query_never_reveals_all_copies(self, overloaded):
        server = DuplicateHidingServer(overloaded, k=4, point=(1, 7))
        q = point_query(overloaded.space, (1, 7))
        response = server.run(q)
        assert response.overflow
        assert sum(1 for row in response.rows if row == (1, 7)) == 4
        # Identical on repeat -- the copy is withheld forever.
        assert server.run(q) == response

    def test_covering_queries_also_withhold(self, overloaded):
        server = DuplicateHidingServer(overloaded, k=4, point=(1, 7))
        for q in [
            Query.full(overloaded.space),
            Query.full(overloaded.space).with_value(0, 1),
            Query.full(overloaded.space).with_range(1, 0, 100),
        ]:
            response = server.run(q)
            assert response.overflow
            copies = sum(1 for row in response.rows if row == (1, 7))
            assert copies <= 4
        assert server.max_copies_revealed <= 4

    def test_non_covering_queries_behave_normally(self, overloaded):
        server = DuplicateHidingServer(overloaded, k=4, point=(1, 7))
        q = Query.full(overloaded.space).with_value(0, 2)
        response = server.run(q)
        assert response.resolved
        assert sorted(response.rows) == [(2, 1), (2, 2)]

    def test_crawlers_detect_infeasibility(self, overloaded):
        server = DuplicateHidingServer(overloaded, k=4, point=(1, 7))
        with pytest.raises(InfeasibleCrawlError):
            Hybrid(server).crawl()

    def test_categorical_crawler_detects_infeasibility(self):
        space = DataSpace.categorical([3, 3])
        rows = [(1, 1)] * 4 + [(2, 2), (3, 3)]
        dataset = Dataset(space, rows)
        server = DuplicateHidingServer(dataset, k=3, point=(1, 1))
        with pytest.raises(InfeasibleCrawlError):
            DepthFirstSearch(server).crawl()
