"""Tests for the lower-bound proof machinery on real executions."""

import pytest

from repro.crawl.rank_shrink import RankShrink
from repro.crawl.slice_cover import LazySliceCover, SliceCover
from repro.crawl.verify import assert_complete
from repro.datasets.hard import theorem3_instance, theorem4_instance
from repro.query.query import Query, slice_query
from repro.server.client import CachingClient
from repro.server.server import TopKServer
from repro.theory import bounds
from repro.theory.hardness import (
    check_lemma5_cover,
    check_lemma7_diverse_resolves,
    check_lemma8_monotonic_width,
    classify_categorical_query,
    resolved_queries,
)


def crawl_log(client: CachingClient):
    return [(q, client.peek(q)) for q in client.history]


class TestTheorem3Execution:
    def test_rank_shrink_respects_the_envelope(self):
        k, d, m = 8, 4, 6
        instance = theorem3_instance(k, d, m)
        crawler = RankShrink(TopKServer(instance.dataset, k=k))
        result = crawler.crawl()
        assert_complete(result, instance.dataset)
        assert result.cost >= instance.lower_bound  # Theorem 3
        assert result.cost <= bounds.rank_shrink_upper_bound(
            instance.dataset.n, k, d
        )

    def test_lemma5_cover_on_execution(self):
        k, d, m = 8, 3, 5
        instance = theorem3_instance(k, d, m)
        crawler = RankShrink(TopKServer(instance.dataset, k=k))
        crawler.crawl()
        resolved_count = check_lemma5_cover(
            crawl_log(crawler.client), instance.non_diagonal_points
        )
        assert resolved_count >= instance.lower_bound

    def test_lemma5_detects_violations(self):
        instance = theorem3_instance(4, 2, 2)
        space = instance.dataset.space
        from repro.server.response import QueryResponse

        # A fake log with one giant resolved query covering everything.
        fake = [(Query.full(space), QueryResponse((), False))]
        with pytest.raises(AssertionError):
            check_lemma5_cover(fake, instance.non_diagonal_points)

    def test_lemma5_detects_uncovered_points(self):
        instance = theorem3_instance(4, 2, 2)
        with pytest.raises(AssertionError):
            check_lemma5_cover([], instance.non_diagonal_points)


class TestQueryTaxonomy:
    def test_classification(self):
        instance = theorem4_instance(3, 3, enforce_conditions=False)
        space = instance.dataset.space
        full = Query.full(space)
        assert classify_categorical_query(full) == "other"
        assert classify_categorical_query(slice_query(space, 0, 1)) == "other"
        diverse = full.with_value(0, 1).with_value(1, 2)
        assert classify_categorical_query(diverse) == "diverse"
        monotonic = full.with_value(0, 2).with_value(3, 2)
        assert classify_categorical_query(monotonic) == "monotonic"

    def test_rejects_numeric_queries(self):
        from repro.dataspace.space import DataSpace

        with pytest.raises(ValueError):
            classify_categorical_query(Query.full(DataSpace.numeric(1)))


class TestTheorem4Execution:
    @pytest.fixture(scope="class")
    def executed(self):
        k, U = 4, 3
        instance = theorem4_instance(k, U, enforce_conditions=False)
        crawler = LazySliceCover(TopKServer(instance.dataset, k=k))
        result = crawler.crawl()
        return instance, crawler, result

    def test_crawl_is_exact(self, executed):
        instance, _, result = executed
        assert_complete(result, instance.dataset)

    def test_lemma7_on_execution(self, executed):
        instance, crawler, _ = executed
        check_lemma7_diverse_resolves(crawl_log(crawler.client))

    def test_lemma8_on_execution(self, executed):
        instance, crawler, _ = executed
        check_lemma8_monotonic_width(crawl_log(crawler.client), instance.d)

    def test_cost_at_least_concrete_lower_bound(self):
        k, U = 16, 3  # valid Theorem 4 parameters (d=32, dU^2=288 <= 256? )
        # 2^(d/4) = 2^8 = 256 < 288, so widen k to stay in the regime.
        k = 20  # d = 40, dU^2 = 360 <= 2^10 = 1024
        instance = theorem4_instance(k, U)
        for cls in (SliceCover, LazySliceCover):
            crawler = cls(TopKServer(instance.dataset, k=k))
            result = crawler.crawl()
            assert_complete(result, instance.dataset)
            assert result.cost >= bounds.theorem4_lower_bound(instance.d, U)
            assert result.cost <= bounds.theorem4_upper_bound(k, U)

    def test_resolved_queries_helper(self, executed):
        _, crawler, _ = executed
        log = crawl_log(crawler.client)
        resolved = resolved_queries(log)
        assert all(crawler.client.peek(q).resolved for q in resolved)
        overflowed = sum(1 for _, r in log if r.overflow)
        assert len(resolved) + overflowed == len(log)
