"""Tests for the Theorem 1 / 3 / 4 bound formulas."""

import pytest

from repro.dataspace.space import DataSpace
from repro.datasets.synthetic import random_dataset
from repro.theory import bounds


class TestTrivialLowerBound:
    def test_ceiling(self):
        assert bounds.trivial_lower_bound(10, 3) == 4
        assert bounds.trivial_lower_bound(9, 3) == 3

    def test_empty(self):
        assert bounds.trivial_lower_bound(0, 5) == 1


class TestRankShrinkBound:
    def test_formula(self):
        # 20 * d * ceil(n/k) + 1
        assert bounds.rank_shrink_upper_bound(100, 10, 2) == 20 * 2 * 10 + 1

    def test_monotone_in_n_and_d(self):
        assert bounds.rank_shrink_upper_bound(
            200, 10, 2
        ) > bounds.rank_shrink_upper_bound(100, 10, 2)
        assert bounds.rank_shrink_upper_bound(
            100, 10, 3
        ) > bounds.rank_shrink_upper_bound(100, 10, 2)

    def test_inverse_in_k(self):
        assert bounds.rank_shrink_upper_bound(
            1000, 100, 2
        ) < bounds.rank_shrink_upper_bound(1000, 10, 2)


class TestSliceCoverBound:
    def test_one_dimensional_is_u1(self):
        # U1 + lazy root
        assert bounds.slice_cover_upper_bound(50, 5, [7]) == 8

    def test_general_formula(self):
        # sum U + ceil(n/k) * sum min(U, ceil(n/k)) + 1
        n, k = 100, 10  # ratio = 10
        value = bounds.slice_cover_upper_bound(n, k, [3, 20])
        assert value == (3 + 20) + 10 * (3 + 10) + 1

    def test_min_caps_large_domains(self):
        small_ratio = bounds.slice_cover_upper_bound(20, 10, [1000, 1000])
        # ratio = 2, so each domain contributes 2*2, not 2*1000
        assert small_ratio == 2000 + 2 * 4 + 1


class TestHybridBound:
    def test_cat_zero_delegates(self):
        assert bounds.hybrid_upper_bound(
            100, 10, [], 3
        ) == bounds.rank_shrink_upper_bound(100, 10, 3)

    def test_cat_one_special_case(self):
        value = bounds.hybrid_upper_bound(100, 10, [7], 3)
        assert value == 7 + 20 * 2 * 10 + 2

    def test_cat_many(self):
        value = bounds.hybrid_upper_bound(100, 10, [3, 4], 4)
        assert value == (3 + 4) + 10 * (3 + 4) + 20 * 2 * 10 + 2


class TestUpperBoundDispatch:
    def test_by_kind(self):
        numeric = random_dataset(DataSpace.numeric(2), 50, seed=0)
        categorical = random_dataset(DataSpace.categorical([3, 3]), 50, seed=0)
        mixed = random_dataset(DataSpace.mixed([("c", 3)], ["x"]), 50, seed=0)
        assert bounds.upper_bound_for_dataset(
            numeric, 5
        ) == bounds.rank_shrink_upper_bound(50, 5, 2)
        assert bounds.upper_bound_for_dataset(
            categorical, 5
        ) == bounds.slice_cover_upper_bound(50, 5, [3, 3])
        assert bounds.upper_bound_for_dataset(
            mixed, 5
        ) == bounds.hybrid_upper_bound(50, 5, [3], 2)


class TestTheorem3:
    def test_parameters(self):
        params = bounds.theorem3_parameters(k=8, d=4, m=10)
        assert params["n"] == 10 * 12
        assert params["non_diagonal"] == 40

    def test_rejects_d_above_k(self):
        with pytest.raises(ValueError):
            bounds.theorem3_parameters(k=2, d=3, m=1)

    def test_lower_bound(self):
        assert bounds.theorem3_lower_bound(4, 10) == 40


class TestTheorem4:
    def test_parameter_conditions(self):
        assert bounds.theorem4_parameters_valid(20, 3)
        assert not bounds.theorem4_parameters_valid(2, 3)  # k < 3
        assert not bounds.theorem4_parameters_valid(3, 50)  # dU^2 too big

    def test_lower_bound_positive(self):
        assert bounds.theorem4_lower_bound(40, 3) == (40 // 8) * 3

    def test_upper_bound_scales_quadratically(self):
        u3 = bounds.theorem4_upper_bound(16, 3)
        u6 = bounds.theorem4_upper_bound(16, 6)
        # d U (1 + 2U) + 1: quadrupling U should ~quadruple the quadratic term
        assert u6 > 3 * u3
