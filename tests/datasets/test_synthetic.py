"""Tests for the synthetic distribution helpers."""

import numpy as np
import pytest

from repro.datasets.synthetic import (
    clipped_normal_column,
    ensure_full_domain,
    lognormal_column,
    random_dataset,
    zero_inflated_column,
    zipf_column,
)
from repro.dataspace.space import DataSpace
from repro.exceptions import SchemaError


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestZipf:
    def test_range_and_skew(self, rng):
        col = zipf_column(rng, 5000, 20, s=1.2)
        assert col.min() >= 1 and col.max() <= 20
        counts = np.bincount(col, minlength=21)[1:]
        # Skewed: the most popular value dwarfs the median popularity.
        assert counts.max() > 4 * np.median(counts)

    def test_s_zero_is_uniformish(self, rng):
        col = zipf_column(rng, 20000, 10, s=0.0)
        counts = np.bincount(col, minlength=11)[1:]
        assert counts.min() > 0.7 * counts.max()


class TestNumericColumns:
    def test_clipped_normal(self, rng):
        col = clipped_normal_column(rng, 2000, mean=40, std=10, lo=17, hi=90)
        assert col.min() >= 17 and col.max() <= 90
        assert 35 < col.mean() < 45

    def test_zero_inflated(self, rng):
        col = zero_inflated_column(
            rng, 2000, zero_probability=0.9, mean=100, std=10, lo=50, hi=150
        )
        zero_fraction = float((col == 0).mean())
        assert 0.85 < zero_fraction < 0.95
        nonzero = col[col != 0]
        assert nonzero.min() >= 50

    def test_lognormal(self, rng):
        col = lognormal_column(
            rng, 2000, mean=10, sigma=0.5, lo=1000, hi=10**6
        )
        assert col.min() >= 1000 and col.max() <= 10**6
        # Heavy right tail: mean exceeds median.
        assert col.mean() > np.median(col)


class TestEnsureFullDomain:
    def test_patches_missing_values(self, rng):
        col = np.ones(50, dtype=np.int64)  # only value 1 present
        patched = ensure_full_domain(rng, col, 10)
        assert set(np.unique(patched)) == set(range(1, 11))

    def test_noop_when_complete(self, rng):
        col = np.arange(1, 11, dtype=np.int64)
        patched = ensure_full_domain(rng, col, 10)
        assert np.array_equal(patched, col)

    def test_rejects_impossible(self, rng):
        with pytest.raises(SchemaError):
            ensure_full_domain(rng, np.ones(3, dtype=np.int64), 10)


class TestRandomDataset:
    def test_shapes_and_domains(self):
        space = DataSpace.mixed([("c", 4)], ["x"])
        ds = random_dataset(space, 100, seed=1, numeric_range=(-5, 5))
        assert ds.n == 100
        assert ds.rows[:, 0].min() >= 1 and ds.rows[:, 0].max() <= 4
        assert ds.rows[:, 1].min() >= -5 and ds.rows[:, 1].max() <= 5

    def test_duplicate_factor(self):
        space = DataSpace.numeric(2)
        ds = random_dataset(
            space, 300, seed=1, numeric_range=(0, 1000), duplicate_factor=0.5
        )
        assert ds.max_multiplicity() >= 2

    def test_deterministic(self):
        space = DataSpace.categorical([5])
        assert random_dataset(space, 50, seed=9) == random_dataset(
            space, 50, seed=9
        )
