"""Tests for dataset CSV round-tripping."""

import pytest

from repro.datasets.io import load_csv, save_csv
from repro.datasets.synthetic import random_dataset
from repro.dataspace.dataset import Dataset
from repro.dataspace.space import DataSpace
from repro.exceptions import SchemaError


class TestRoundTrip:
    def test_mixed_dataset(self, tmp_path):
        space = DataSpace.mixed([("make", 5)], ["price", "year"])
        ds = random_dataset(space, 60, seed=2, numeric_range=(-100, 100))
        path = save_csv(ds, tmp_path / "cars.csv")
        loaded = load_csv(path)
        assert loaded == ds
        assert loaded.space == ds.space
        assert loaded.name == "cars"

    def test_bounded_numeric_attributes(self, tmp_path):
        space = DataSpace.numeric(2, bounds=[(0, 9), (-5, 5)])
        ds = random_dataset(space, 10, seed=1, numeric_range=(0, 5))
        loaded = load_csv(save_csv(ds, tmp_path / "n.csv"))
        assert loaded.space[0].lo == 0 and loaded.space[0].hi == 9
        assert loaded.space[1].lo == -5

    def test_empty_dataset(self, tmp_path):
        space = DataSpace.categorical([3])
        loaded = load_csv(save_csv(Dataset(space, []), tmp_path / "e.csv"))
        assert loaded.n == 0
        assert loaded.space == space

    def test_custom_name(self, tmp_path):
        ds = random_dataset(DataSpace.categorical([2]), 5, seed=0)
        loaded = load_csv(save_csv(ds, tmp_path / "x.csv"), name="mine")
        assert loaded.name == "mine"


class TestErrors:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(SchemaError):
            load_csv(path)

    def test_malformed_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("justaname\n1\n")
        with pytest.raises(SchemaError):
            load_csv(path)

    def test_bad_kind(self, tmp_path):
        path = tmp_path / "bad2.csv"
        path.write_text("a:widget:3\n1\n")
        with pytest.raises(SchemaError):
            load_csv(path)

    def test_bad_bounds_arity(self, tmp_path):
        path = tmp_path / "bad3.csv"
        path.write_text("a:num:3\n1\n")
        with pytest.raises(SchemaError):
            load_csv(path)

    def test_categorical_without_size(self, tmp_path):
        path = tmp_path / "bad4.csv"
        path.write_text("a:cat\n1\n")
        with pytest.raises(SchemaError):
            load_csv(path)
