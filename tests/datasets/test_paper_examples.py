"""Tests pinning the worked-example datasets to the paper's figures."""

from repro.datasets.paper_examples import (
    FIGURE3_K,
    FIGURE4_K,
    FIGURE5_K,
    figure3_dataset,
    figure3_server,
    figure4_dataset,
    figure4_server,
    figure5_dataset,
    figure5_server,
)
from repro.query.query import Query


class TestFigure3:
    def test_dataset_shape(self):
        ds = figure3_dataset()
        assert ds.n == 8
        assert ds.dimensionality == 1
        assert ds.multiset()[(55,)] == 3  # t6, t7, t8

    def test_server_first_response(self):
        """R1 = {t4, t6, t7, t8} with an overflow signal."""
        server = figure3_server()
        assert server.k == FIGURE3_K == 4
        resp = server.run(Query.full(server.space))
        assert resp.overflow
        assert sorted(resp.rows) == [(35,), (55,), (55,), (55,)]

    def test_server_second_response(self):
        """R2 = {t1, t2, t4, t5} for the query (-inf, 54]."""
        server = figure3_server()
        resp = server.run(Query.full(server.space).with_range(0, None, 54))
        assert resp.overflow
        assert sorted(resp.rows) == [(10,), (20,), (35,), (45,)]


class TestFigure4:
    def test_dataset_shape(self):
        ds = figure4_dataset()
        assert ds.n == 10
        assert ds.dimensionality == 2
        # Five tuples on the line A1 = 80.
        assert int((ds.rows[:, 0] == 80).sum()) == 5

    def test_first_response(self):
        """R1 = {t4, t7, t8, t9}."""
        server = figure4_server()
        assert server.k == FIGURE4_K == 4
        resp = server.run(Query.full(server.space))
        assert sorted(resp.rows) == [(40, 40), (80, 20), (80, 30), (80, 40)]

    def test_left_response(self):
        """R2 = {t2, t3, t4, t5} for A1 <= 79."""
        server = figure4_server()
        resp = server.run(Query.full(server.space).with_range(0, None, 79))
        assert resp.overflow
        assert sorted(resp.rows) == [(20, 35), (40, 40), (45, 70), (60, 20)]

    def test_line_response(self):
        """The 1-d sub-problem's root returns {t6, t7, t8, t9}."""
        server = figure4_server()
        resp = server.run(Query.full(server.space).with_range(0, 80, 80))
        assert resp.overflow
        assert sorted(resp.rows) == [(80, 10), (80, 20), (80, 30), (80, 40)]


class TestFigure5:
    def test_dataset_shape(self):
        ds = figure5_dataset()
        assert ds.n == 10
        assert ds.space.categorical_domain_sizes == (4, 4)
        assert ds.multiset()[(3, 3)] == 2  # t8 and t9

    def test_server_k(self):
        assert figure5_server().k == FIGURE5_K == 3

    def test_dfs_pruning_example(self):
        """query(u3) = (A1 = 2) resolves, returning only t5."""
        server = figure5_server()
        resp = server.run(Query.full(server.space).with_value(0, 2))
        assert resp.resolved
        assert resp.rows == ((2, 4),)
