"""Tests for the Theorem 3 / Theorem 4 hard-instance constructors."""

import numpy as np
import pytest

from repro.datasets.hard import theorem3_instance, theorem4_instance
from repro.exceptions import SchemaError


class TestTheorem3Instance:
    def test_structure(self):
        k, d, m = 5, 3, 4
        inst = theorem3_instance(k, d, m)
        assert inst.dataset.n == m * (k + d)
        assert inst.lower_bound == d * m
        assert len(inst.non_diagonal_points) == d * m

    def test_group_contents(self):
        inst = theorem3_instance(3, 2, 2)
        bag = inst.dataset.multiset()
        # Group 1: k=3 diagonal copies of (1,1), bumps (2,1) and (1,2).
        assert bag[(1, 1)] == 3
        assert bag[(2, 1)] == 1
        assert bag[(1, 2)] == 1
        # Group 2 likewise at (2,2).
        assert bag[(2, 2)] == 3
        assert bag[(3, 2)] == 1
        assert bag[(2, 3)] == 1

    def test_feasible_exactly_at_k(self):
        inst = theorem3_instance(4, 2, 3)
        assert inst.dataset.max_multiplicity() == 4

    def test_bounds_recorded_in_space(self):
        inst = theorem3_instance(4, 2, 3)
        assert inst.dataset.space[0].lo == 1
        assert inst.dataset.space[0].hi == 4  # m + 1

    def test_validation(self):
        with pytest.raises(SchemaError):
            theorem3_instance(2, 3, 1)  # d > k
        with pytest.raises(SchemaError):
            theorem3_instance(2, 1, 0)  # m < 1


class TestTheorem4Instance:
    def test_structure(self):
        inst = theorem4_instance(20, 3)
        assert inst.d == 40
        assert inst.dataset.n == 40 * 3
        assert inst.dataset.space.categorical_domain_sizes == (3,) * 40

    def test_group_contents(self):
        inst = theorem4_instance(3, 3, enforce_conditions=False)
        rows = inst.dataset.rows
        d, U = inst.d, inst.U
        # Group i occupies rows i*d .. (i+1)*d - 1; its j-th row bumps
        # attribute j to (i+1) mod U (all values shifted +1).
        for group in range(U):
            block = rows[group * d : (group + 1) * d]
            base = group + 1
            bump = (group + 1) % U + 1
            for j in range(d):
                row = block[j]
                assert row[j] == bump
                mask = np.ones(d, dtype=bool)
                mask[j] = False
                assert (row[mask] == base).all()

    def test_every_tuple_unique(self):
        inst = theorem4_instance(20, 3)
        assert inst.dataset.max_multiplicity() == 1

    def test_conditions_enforced(self):
        with pytest.raises(SchemaError):
            theorem4_instance(3, 3)  # dU^2 = 54 > 2^(6/4)
        with pytest.raises(SchemaError):
            theorem4_instance(20, 2)  # U < 3
        # Escape hatch for benchmarks:
        inst = theorem4_instance(3, 3, enforce_conditions=False)
        assert inst.dataset.n == 18
