"""Tests for the paper-lookalike dataset generators (Figure 9 shapes)."""

import numpy as np
import pytest

from repro.datasets.adult import ADULT_N, adult, adult_numeric
from repro.datasets.nsf import NSF_DOMAIN_SIZES, NSF_N, nsf
from repro.datasets.yahoo import YAHOO_DUPLICATES, YAHOO_N, yahoo_autos
from repro.dataspace.space import SpaceKind


class TestAdult:
    @pytest.fixture(scope="class")
    def small(self):
        return adult(n=4000, seed=11)

    def test_schema_matches_figure9(self, small):
        space = small.space
        assert space.kind is SpaceKind.MIXED
        assert space.dimensionality == 14
        assert space.cat == 8
        assert space.categorical_domain_sizes == (2, 5, 6, 6, 7, 8, 14, 41)
        assert space.names[8:] == (
            "Edu-num", "Age", "Wrk-hr", "Cap-loss", "Cap-gain", "Fnalwgt",
        )

    def test_default_cardinality_constant(self):
        assert ADULT_N == 45222

    def test_numeric_marginals(self, small):
        age = small.rows[:, small.space.index_of("Age")]
        assert age.min() >= 17 and age.max() <= 90
        cap_gain = small.rows[:, small.space.index_of("Cap-gain")]
        assert float((cap_gain == 0).mean()) > 0.85
        wrk = small.rows[:, small.space.index_of("Wrk-hr")]
        assert float((wrk == 40).mean()) > 0.3

    def test_fnalwgt_is_distinct_rich(self, small):
        """The Figure 10b premise: FNALWGT has the most distinct values."""
        counts = dict(zip(small.space.names, small.distinct_counts()))
        assert counts["Fnalwgt"] == max(counts.values())

    def test_adult_numeric_projection(self):
        mixed = adult(n=2000, seed=11)
        numeric = adult_numeric(n=2000, seed=11)
        assert numeric.space.kind is SpaceKind.NUMERIC
        assert numeric.space.dimensionality == 6
        # Same seed -> identical numeric columns in both datasets.
        assert np.array_equal(numeric.rows, mixed.rows[:, 8:])

    def test_deterministic(self):
        assert adult(n=500, seed=3) == adult(n=500, seed=3)


class TestNSF:
    @pytest.fixture(scope="class")
    def full(self):
        # Full domain coverage needs n >= max domain size (29042).
        return nsf()

    def test_schema_matches_figure9(self, full):
        assert full.space.kind is SpaceKind.CATEGORICAL
        assert full.space.categorical_domain_sizes == NSF_DOMAIN_SIZES
        assert full.n == NSF_N

    def test_every_attribute_realises_its_domain(self, full):
        """Paper: distinct values == domain size for every attribute."""
        assert full.distinct_counts() == NSF_DOMAIN_SIZES

    def test_pi_name_determines_org_mostly(self, full):
        """The planted functional dependency (with ~5% noise)."""
        pi = full.rows[:, full.space.index_of("PI-name")]
        org = full.rows[:, full.space.index_of("PI-org")]
        majority_matches = 0
        total = 0
        for name in np.unique(pi)[:300]:
            orgs = org[pi == name]
            if len(orgs) < 2:
                continue
            counts = np.bincount(orgs)
            majority_matches += counts.max()
            total += len(orgs)
        assert total > 0
        assert majority_matches / total > 0.8


class TestYahoo:
    @pytest.fixture(scope="class")
    def small(self):
        return yahoo_autos(n=5000, seed=5, duplicates=70)

    def test_schema_matches_figure9(self, small):
        assert small.space.kind is SpaceKind.MIXED
        assert small.space.cat == 3
        assert small.space.categorical_domain_sizes == (2, 7, 85)
        assert small.space.names == (
            "Owner", "Body-style", "Make", "Mileage", "Year", "Price",
        )

    def test_duplicate_plant_controls_feasibility(self, small):
        assert small.min_feasible_k() == 70

    def test_default_constants(self):
        assert YAHOO_N == 69768
        assert YAHOO_DUPLICATES == 100  # > 64: the paper's k=64 infeasibility

    def test_no_plant_when_disabled(self):
        ds = yahoo_autos(n=3000, seed=5, duplicates=0)
        assert ds.min_feasible_k() < 64

    def test_price_correlates_with_year(self, small):
        year = small.rows[:, small.space.index_of("Year")]
        price = small.rows[:, small.space.index_of("Price")]
        newer = price[year >= 2008].mean()
        older = price[year <= 1998].mean()
        assert newer > older

    def test_numeric_ranges(self, small):
        mileage = small.rows[:, small.space.index_of("Mileage")]
        assert mileage.min() >= 0
        year = small.rows[:, small.space.index_of("Year")]
        assert year.min() >= 1985 and year.max() <= 2012
