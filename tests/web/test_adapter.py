"""End-to-end adapter tests: crawling over HTML equals direct crawling."""

import numpy as np
import pytest

from repro.crawl.binary_shrink import BinaryShrink
from repro.crawl.dfs import DepthFirstSearch
from repro.crawl.hybrid import Hybrid
from repro.crawl.rank_shrink import RankShrink
from repro.crawl.slice_cover import LazySliceCover
from repro.crawl.verify import assert_complete
from repro.dataspace.dataset import Dataset
from repro.dataspace.space import DataSpace
from repro.exceptions import QueryBudgetExhausted, WebProtocolError
from repro.query.query import Query
from repro.server.client import CachingClient
from repro.server.limits import QueryBudget
from repro.server.server import TopKServer
from repro.web.adapter import WebSession
from repro.web.site import HiddenWebSite


def _mixed_dataset(seed: int = 7, n: int = 300) -> Dataset:
    rng = np.random.default_rng(seed)
    space = DataSpace.mixed(
        [("make", 5), ("body", 3)],
        ["price", "year"],
        numeric_bounds=[(0, 500), (1990, 2012)],
    )
    rows = np.column_stack(
        [
            rng.integers(1, 6, n),
            rng.integers(1, 4, n),
            rng.integers(0, 501, n),
            rng.integers(1990, 2013, n),
        ]
    ).astype(np.int64)
    return Dataset(space, rows)


@pytest.fixture
def dataset():
    return _mixed_dataset()


@pytest.fixture
def session(dataset):
    return WebSession(HiddenWebSite(TopKServer(dataset, k=16)))


class TestSchemaRecovery:
    def test_space_shape_recovered(self, session, dataset):
        assert session.space.names == dataset.space.names
        assert session.space.cat == dataset.space.cat
        assert (
            session.space.categorical_domain_sizes
            == dataset.space.categorical_domain_sizes
        )

    def test_k_recovered(self, session):
        assert session.k == 16

    def test_numeric_bounds_not_leaked(self, session):
        # The site did not advertise bounds; the crawler must not know them.
        assert not session.space[2].is_bounded

    def test_unusable_site_rejected(self, dataset):
        class BrokenSite:
            def get(self, url):
                from repro.web.site import WebPage

                return WebPage(500, "oops")

        with pytest.raises(WebProtocolError):
            WebSession(BrokenSite())


class TestQueryForwarding:
    def test_responses_match_direct_server(self, dataset, session):
        direct = TopKServer(dataset, k=16)
        queries = [
            Query.full(session.space),
            Query.full(session.space).with_value(0, 2),
            Query.full(session.space).with_range(2, 100, 200),
        ]
        for q in queries:
            via_web = session.run(q)
            # Rebuild against the server's own space (names match).
            direct_q = Query(q.predicates, direct.space)
            assert via_web == direct.run(direct_q)

    def test_budget_exhaustion_propagates(self, dataset):
        server = TopKServer(dataset, k=16, limits=[QueryBudget(1)])
        session = WebSession(HiddenWebSite(server))
        session.run(Query.full(session.space))
        with pytest.raises(QueryBudgetExhausted):
            session.run(Query.full(session.space).with_value(0, 1))

    def test_request_counter(self, session):
        assert session.requests == 0
        session.run(Query.full(session.space))
        assert session.requests == 1


class TestEndToEndCrawls:
    """Every crawler over HTML produces the direct crawl's exact outcome."""

    @pytest.mark.parametrize(
        "crawler_cls", [RankShrink, LazySliceCover, DepthFirstSearch, Hybrid]
    )
    def test_cost_and_bag_parity(self, dataset, crawler_cls):
        if crawler_cls in (LazySliceCover, DepthFirstSearch):
            # Categorical-only algorithms: project the categorical prefix.
            space = dataset.space.project([0, 1])
            data = Dataset(space, dataset.rows[:, :2])
        elif crawler_cls is RankShrink:
            # Numeric-only algorithm: project the numeric suffix.
            space = dataset.space.project([2, 3])
            data = Dataset(space, dataset.rows[:, 2:])
        else:
            data = dataset
        # The categorical projection concentrates 300 tuples on 15
        # points; k must exceed the worst multiplicity for Problem 1 to
        # be solvable at all.
        k = max(16, data.max_multiplicity() + 1)
        direct_result = crawler_cls(TopKServer(data, k=k)).crawl()
        session = WebSession(HiddenWebSite(TopKServer(data, k=k)))
        web_result = crawler_cls(CachingClient(session)).crawl()
        assert web_result.cost == direct_result.cost
        assert sorted(web_result.rows) == sorted(direct_result.rows)
        assert_complete(web_result, data)

    def test_binary_shrink_needs_advertised_bounds(self, dataset):
        from repro.exceptions import UnboundedDomainError

        numeric_space = dataset.space.project([2, 3])
        data = Dataset(numeric_space, dataset.rows[:, 2:])
        # Without advertised bounds the parsed schema is unbounded.
        session = WebSession(HiddenWebSite(TopKServer(data, k=16)))
        with pytest.raises(UnboundedDomainError):
            BinaryShrink(CachingClient(session)).crawl()
        # With bounds advertised the baseline can run.
        session = WebSession(
            HiddenWebSite(TopKServer(data, k=16), advertise_bounds=True)
        )
        result = BinaryShrink(CachingClient(session)).crawl()
        assert_complete(result, data)
