"""Test package (regular package so test-module names never collide)."""
