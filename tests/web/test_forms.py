"""Search-form tests: render/parse round trips and schema recovery."""

import pytest
from hypothesis import given, settings

from repro.dataspace.space import DataSpace
from repro.exceptions import WebProtocolError
from repro.web.forms import RangeField, SearchForm, SelectField
from tests.conftest import small_spaces


@pytest.fixture
def mixed_space():
    return DataSpace.mixed(
        [("make", 4), ("body", 2)],
        ["price", "year"],
        numeric_bounds=[(0, 99999), (1990, 2012)],
    )


class TestFields:
    def test_select_field_advertises_domain(self):
        field = SelectField("make", (1, 2, 3))
        attr = field.to_attribute()
        assert attr.is_categorical and attr.domain_size == 3

    def test_select_field_rejects_gappy_values(self):
        with pytest.raises(WebProtocolError):
            SelectField("make", (1, 3)).to_attribute()

    def test_range_field_unbounded_by_default(self):
        attr = RangeField("price").to_attribute()
        assert attr.is_numeric and not attr.is_bounded

    def test_range_field_with_bounds(self):
        attr = RangeField("price", 0, 10).to_attribute()
        assert (attr.lo, attr.hi) == (0, 10)

    def test_select_render_offers_any_first(self):
        html = SelectField("make", (1, 2)).render()
        assert html.index(">Any<") < html.index('value="1"')


class TestSearchForm:
    def test_from_space_field_order_matches_schema(self, mixed_space):
        form = SearchForm.from_space(mixed_space, 100)
        names = [f.name for f in form.fields]
        assert names == ["make", "body", "price", "year"]

    def test_bounds_hidden_by_default(self, mixed_space):
        form = SearchForm.from_space(mixed_space, 100)
        space = form.to_space()
        assert not space[2].is_bounded

    def test_bounds_advertised_on_request(self, mixed_space):
        form = SearchForm.from_space(mixed_space, 100, advertise_bounds=True)
        space = form.to_space()
        assert (space[2].lo, space[2].hi) == (0, 99999)
        assert (space[3].lo, space[3].hi) == (1990, 2012)

    def test_render_parse_round_trip(self, mixed_space):
        form = SearchForm.from_space(mixed_space, 256)
        parsed = SearchForm.parse(form.render())
        assert parsed == form

    def test_round_trip_with_bounds(self, mixed_space):
        form = SearchForm.from_space(mixed_space, 64, advertise_bounds=True)
        assert SearchForm.parse(form.render()) == form

    def test_parsed_space_matches_original_shape(self, mixed_space):
        form = SearchForm.from_space(mixed_space, 100)
        space = form.to_space()
        assert space.names == mixed_space.names
        assert space.cat == mixed_space.cat
        assert space.categorical_domain_sizes == (4, 2)

    def test_k_recovered_from_notice(self, mixed_space):
        form = SearchForm.from_space(mixed_space, 1024)
        assert SearchForm.parse(form.render()).k == 1024

    @given(space=small_spaces(max_dim=4, max_domain=6))
    @settings(max_examples=40, deadline=None)
    def test_round_trip_over_random_spaces(self, space):
        form = SearchForm.from_space(space, 10)
        parsed = SearchForm.parse(form.render())
        assert parsed == form
        recovered = parsed.to_space()
        assert recovered.names == space.names
        assert recovered.cat == space.cat


class TestParseErrors:
    def test_missing_form(self):
        with pytest.raises(WebProtocolError):
            SearchForm.parse("<html><body>nothing here</body></html>")

    def test_missing_result_limit(self):
        html = '<form id="search-form"></form>'
        with pytest.raises(WebProtocolError):
            SearchForm.parse(html)

    def test_unpaired_numeric_input(self):
        html = (
            '<form><input type="number" name="price_min" /></form>'
            "<p>at most 10 results</p>"
        )
        with pytest.raises(WebProtocolError):
            SearchForm.parse(html)

    def test_stray_number_input_name(self):
        html = (
            '<form><input type="number" name="price" /></form>'
            "<p>at most 10 results</p>"
        )
        with pytest.raises(WebProtocolError):
            SearchForm.parse(html)
