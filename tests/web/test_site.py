"""Website tests: routing, status codes, limits, information hiding."""

import numpy as np
import pytest

from repro.dataspace.dataset import Dataset
from repro.dataspace.space import DataSpace
from repro.server.limits import QueryBudget
from repro.server.server import TopKServer
from repro.web.forms import SearchForm
from repro.web.pages import parse_result_page
from repro.web.site import HiddenWebSite


@pytest.fixture
def space():
    return DataSpace.mixed([("make", 3)], ["price"])


@pytest.fixture
def dataset(space):
    rows = np.asarray(
        [[1, 10], [1, 20], [2, 30], [3, 40], [3, 40]], dtype=np.int64
    )
    return Dataset(space, rows)


@pytest.fixture
def site(dataset):
    return HiddenWebSite(TopKServer(dataset, k=2))


class TestRouting:
    def test_root_serves_search_form(self, site):
        page = site.get("/")
        assert page.ok
        form = SearchForm.parse(page.body)
        assert form.k == 2
        assert [f.name for f in form.fields] == ["make", "price"]

    def test_empty_path_serves_search_form(self, site):
        assert site.get("").ok

    def test_unknown_path_is_404(self, site):
        page = site.get("/admin")
        assert page.status == 404 and not page.ok

    def test_search_returns_results(self, site):
        page = site.get("/search?make=2")
        assert page.ok
        response = parse_result_page(page.body)
        assert response.rows == ((2, 30),) and not response.overflow

    def test_search_overflow(self, site):
        page = site.get("/search?")
        response = parse_result_page(page.body)
        assert response.overflow and len(response.rows) == 2


class TestErrors:
    def test_unknown_parameter_is_400(self, site):
        assert site.get("/search?colour=1").status == 400

    def test_out_of_domain_value_is_400(self, site):
        assert site.get("/search?make=17").status == 400

    def test_inverted_range_is_400(self, site):
        assert site.get("/search?price_min=9&price_max=1").status == 400

    def test_error_page_mentions_problem(self, site):
        page = site.get("/search?colour=1")
        assert "colour" in page.body

    def test_budget_exhaustion_is_429(self, dataset):
        server = TopKServer(dataset, k=2, limits=[QueryBudget(1)])
        site = HiddenWebSite(server)
        assert site.get("/search?make=1").ok
        assert site.get("/search?make=2").status == 429


class TestInformationHiding:
    def test_result_page_shows_only_k_rows_on_overflow(self, site):
        page = site.get("/search?")
        response = parse_result_page(page.body)
        assert len(response.rows) == 2  # k, not n

    def test_repeat_query_returns_same_page(self, site):
        first = site.get("/search?")
        second = site.get("/search?")
        assert first.body == second.body

    def test_pages_served_counts_everything(self, site):
        before = site.pages_served
        site.get("/")
        site.get("/search?make=1")
        site.get("/nope")
        assert site.pages_served == before + 3


class TestBoundsAdvertisement:
    def test_bounds_off_by_default(self, dataset):
        site = HiddenWebSite(TopKServer(dataset, k=2))
        form = SearchForm.parse(site.get("/").body)
        assert not form.to_space()[1].is_bounded

    def test_bounds_advertised_when_enabled(self, space):
        bounded = DataSpace.mixed(
            [("make", 3)], ["price"], numeric_bounds=[(10, 40)]
        )
        rows = np.asarray([[1, 10], [2, 40]], dtype=np.int64)
        server = TopKServer(Dataset(bounded, rows), k=2)
        site = HiddenWebSite(server, advertise_bounds=True)
        form = SearchForm.parse(site.get("/").body)
        attr = form.to_space()[1]
        assert (attr.lo, attr.hi) == (10, 40)
