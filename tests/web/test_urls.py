"""URL codec tests: loss-less round trips and strict error handling."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataspace.space import DataSpace
from repro.exceptions import WebProtocolError
from repro.query.query import Query
from repro.web.urls import check_encodable, decode_query, encode_query
from tests.conftest import small_spaces


@pytest.fixture
def mixed_space():
    return DataSpace.mixed([("make", 5), ("body", 3)], ["price", "year"])


class TestEncode:
    def test_full_query_encodes_empty(self, mixed_space):
        assert encode_query(Query.full(mixed_space)) == ""

    def test_categorical_value(self, mixed_space):
        q = Query.full(mixed_space).with_value(0, 3)
        assert encode_query(q) == "make=3"

    def test_numeric_bounds(self, mixed_space):
        q = Query.full(mixed_space).with_range(2, 100, 200)
        assert encode_query(q) == "price_min=100&price_max=200"

    def test_half_open_range_encodes_one_param(self, mixed_space):
        q = Query.full(mixed_space).with_range(3, None, 1999)
        assert encode_query(q) == "year_max=1999"
        q = Query.full(mixed_space).with_range(3, 2000, None)
        assert encode_query(q) == "year_min=2000"

    def test_combined_predicates(self, mixed_space):
        q = Query.full(mixed_space).with_value(1, 2).with_range(2, -5, 5)
        assert encode_query(q) == "body=2&price_min=-5&price_max=5"

    def test_names_are_percent_encoded(self):
        space = DataSpace.categorical([3], names=["body style"])
        q = Query.full(space).with_value(0, 1)
        assert encode_query(q) == "body+style=1"


class TestDecode:
    def test_empty_string_is_full_query(self, mixed_space):
        assert decode_query(mixed_space, "") == Query.full(mixed_space)

    def test_blank_value_is_wildcard(self, mixed_space):
        # An untouched menu may still submit "make=".
        assert decode_query(mixed_space, "make=") == Query.full(mixed_space)

    def test_unknown_parameter_rejected(self, mixed_space):
        with pytest.raises(WebProtocolError):
            decode_query(mixed_space, "colour=1")

    def test_min_suffix_on_categorical_rejected(self, mixed_space):
        with pytest.raises(WebProtocolError):
            decode_query(mixed_space, "make_min=1")

    def test_non_integer_value_rejected(self, mixed_space):
        with pytest.raises(WebProtocolError):
            decode_query(mixed_space, "make=abc")
        with pytest.raises(WebProtocolError):
            decode_query(mixed_space, "price_min=1.5")

    def test_repeated_parameter_rejected(self, mixed_space):
        with pytest.raises(WebProtocolError):
            decode_query(mixed_space, "make=1&make=2")

    def test_inverted_range_rejected(self, mixed_space):
        with pytest.raises(WebProtocolError):
            decode_query(mixed_space, "price_min=10&price_max=5")

    def test_out_of_domain_value_rejected(self, mixed_space):
        from repro.exceptions import SchemaError

        with pytest.raises(SchemaError):
            decode_query(mixed_space, "make=99")

    def test_error_carries_status_400(self, mixed_space):
        with pytest.raises(WebProtocolError) as excinfo:
            decode_query(mixed_space, "colour=1")
        assert excinfo.value.status == 400


class TestCollisions:
    def test_shadowed_name_rejected(self):
        from repro.dataspace.attribute import categorical, numeric

        space = DataSpace([categorical("price_min", 2), numeric("price")])
        with pytest.raises(WebProtocolError):
            check_encodable(space)

    def test_clean_space_accepted(self, mixed_space):
        check_encodable(mixed_space)


class TestRoundTrip:
    @given(space=small_spaces(), data=st.data())
    @settings(max_examples=80, deadline=None)
    def test_random_queries_round_trip(self, space, data):
        """decode(encode(q)) == q for arbitrary structured queries."""
        query = Query.full(space)
        for i, attr in enumerate(space):
            if attr.is_categorical:
                value = data.draw(
                    st.one_of(
                        st.none(), st.integers(1, attr.domain_size)
                    ),
                    label=f"value[{i}]",
                )
                if value is not None:
                    query = query.with_value(i, value)
            else:
                lo = data.draw(
                    st.one_of(st.none(), st.integers(-50, 50)),
                    label=f"lo[{i}]",
                )
                hi = data.draw(
                    st.one_of(st.none(), st.integers(-50, 50)),
                    label=f"hi[{i}]",
                )
                if lo is not None and hi is not None and lo > hi:
                    lo, hi = hi, lo
                if lo is not None or hi is not None:
                    query = query.with_range(i, lo, hi)
        assert decode_query(space, encode_query(query)) == query
