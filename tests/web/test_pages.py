"""Result-page tests: the render/scrape pair is loss-less."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataspace.space import DataSpace
from repro.exceptions import WebProtocolError
from repro.server.response import QueryResponse
from repro.web.pages import (
    parse_result_page,
    render_error_page,
    render_result_page,
)


@pytest.fixture
def space():
    return DataSpace.mixed([("make", 3)], ["price"])


class TestRoundTrip:
    def test_resolved_page(self, space):
        response = QueryResponse(((1, 100), (2, -5)), overflow=False)
        page = render_result_page(space, response)
        assert parse_result_page(page) == response

    def test_overflow_page(self, space):
        response = QueryResponse(((1, 100), (3, 0)), overflow=True)
        page = render_result_page(space, response)
        assert parse_result_page(page) == response

    def test_empty_result(self, space):
        response = QueryResponse((), overflow=False)
        page = render_result_page(space, response)
        parsed = parse_result_page(page)
        assert parsed.rows == () and not parsed.overflow

    def test_negative_values_survive(self, space):
        response = QueryResponse(((2, -12345),), overflow=False)
        page = render_result_page(space, response)
        assert parse_result_page(page) == response

    @given(
        rows=st.lists(
            st.tuples(st.integers(1, 3), st.integers(-10**6, 10**6)),
            max_size=25,
        ),
        overflow=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_random_responses_round_trip(self, rows, overflow):
        space = DataSpace.mixed([("make", 3)], ["price"])
        response = QueryResponse(tuple(rows), overflow)
        page = render_result_page(space, response)
        assert parse_result_page(page) == response


class TestPageContent:
    def test_overflow_banner_names_the_count(self, space):
        response = QueryResponse(((1, 1), (2, 2)), overflow=True)
        page = render_result_page(space, response)
        assert "first 2 matching records" in page

    def test_resolved_page_states_exact_count(self, space):
        response = QueryResponse(((1, 1),), overflow=False)
        page = render_result_page(space, response)
        assert "1 records match" in page

    def test_header_lists_attribute_names(self, space):
        page = render_result_page(space, QueryResponse((), False))
        assert "<th>make</th>" in page and "<th>price</th>" in page

    def test_error_page_escapes_message(self):
        page = render_error_page(400, "bad <script> value")
        assert "<script>" not in page
        assert "Error 400" in page


class TestParseErrors:
    def test_missing_table(self):
        with pytest.raises(WebProtocolError):
            parse_result_page("<html><body>down for maintenance</body></html>")

    def test_non_integer_cell(self):
        page = (
            '<table id="results"><tbody>'
            "<tr><td>oops</td></tr>"
            "</tbody></table>"
        )
        with pytest.raises(WebProtocolError):
            parse_result_page(page)

    def test_ragged_rows_rejected(self):
        page = (
            '<table id="results"><tbody>'
            "<tr><td>1</td></tr><tr><td>1</td><td>2</td></tr>"
            "</tbody></table>"
        )
        with pytest.raises(WebProtocolError):
            parse_result_page(page)
