"""ResultStore: durable regions, merge-ordered rows, exact charges."""

import threading

import numpy as np
import pytest

from repro.crawl.partition import crawl_partitioned, partition_space
from repro.dataspace.dataset import Dataset
from repro.dataspace.space import DataSpace
from repro.exceptions import SchemaError
from repro.server.server import TopKServer
from repro.service.store import ResultStore

SESSIONS = 2


def tiny_dataset(seed=3, n=120):
    rng = np.random.default_rng(seed)
    space = DataSpace.mixed(
        [("make", 4), ("body", 3)],
        ["price"],
        numeric_bounds=[(0, 199)],
    )
    rows = np.column_stack(
        [
            rng.integers(1, 5, n),
            rng.integers(1, 4, n),
            rng.integers(0, 200, n),
        ]
    ).astype(np.int64)
    return Dataset(space, rows)


@pytest.fixture(scope="module")
def dataset():
    return tiny_dataset()


@pytest.fixture(scope="module")
def plan(dataset):
    return partition_space(dataset.space, SESSIONS)


@pytest.fixture(scope="module")
def reference(dataset, plan):
    sources = [TopKServer(dataset, k=32) for _ in range(SESSIONS)]
    return crawl_partitioned(sources, plan)


@pytest.fixture
def store(tmp_path):
    with ResultStore(tmp_path / "test.db") as store:
        yield store


def file_all(store, job_id, plan, reference):
    for session in range(plan.sessions):
        for index, result in enumerate(reference.results[session]):
            store.region_done(job_id, (session, index), result)


class TestJobs:
    def test_open_job_creates_pending(self, store, plan):
        job_id, completed = store.open_job("acme", "demo", plan, 32)
        assert completed == {}
        status = store.job_status(job_id)
        assert status["status"] == "pending"
        assert status["regions_done"] == 0
        assert status["regions_total"] == len(plan.regions)
        assert status["tenant"] == "acme"
        assert status["name"] == "demo"

    def test_find_job(self, store, plan):
        job_id, _ = store.open_job("acme", "demo", plan, 32)
        assert store.find_job("acme", "demo") == job_id
        assert store.find_job("acme", "other") is None

    def test_reopen_returns_same_id(self, store, plan):
        job_id, _ = store.open_job("acme", "demo", plan, 32)
        again, _ = store.open_job("acme", "demo", plan, 32)
        assert again == job_id

    def test_reopen_resets_non_terminal_to_pending(self, store, plan):
        job_id, _ = store.open_job("acme", "demo", plan, 32)
        store.set_status(job_id, "failed", error="boom")
        store.open_job("acme", "demo", plan, 32)
        status = store.job_status(job_id)
        assert status["status"] == "pending"
        assert status["error"] is None

    def test_reopen_keeps_done(self, store, plan):
        job_id, _ = store.open_job("acme", "demo", plan, 32)
        store.set_status(job_id, "done")
        store.open_job("acme", "demo", plan, 32)
        assert store.job_status(job_id)["status"] == "done"

    def test_k_mismatch_raises(self, store, plan):
        store.open_job("acme", "demo", plan, 32)
        with pytest.raises(SchemaError, match="k="):
            store.open_job("acme", "demo", plan, 64)

    def test_plan_mismatch_raises(self, store, dataset, plan):
        store.open_job("acme", "demo", plan, 32)
        other = partition_space(dataset.space, SESSIONS + 1)
        with pytest.raises(SchemaError, match="partition plan"):
            store.open_job("acme", "demo", other, 32)

    def test_space_mismatch_raises(self, store, plan):
        store.open_job("acme", "demo", plan, 32)
        other_space = DataSpace.mixed([("make", 4)], ["price"])
        other = partition_space(other_space, SESSIONS)
        with pytest.raises(SchemaError, match="data space"):
            store.open_job("acme", "demo", other, 32)

    def test_same_name_different_tenants_are_distinct(self, store, plan):
        a, _ = store.open_job("acme", "demo", plan, 32)
        b, _ = store.open_job("umbrella", "demo", plan, 32)
        assert a != b

    def test_unknown_status_rejected(self, store, plan):
        job_id, _ = store.open_job("acme", "demo", plan, 32)
        with pytest.raises(ValueError, match="unknown job status"):
            store.set_status(job_id, "paused")

    def test_unknown_job_raises(self, store):
        with pytest.raises(KeyError):
            store.job_status(999)

    def test_list_jobs_filters_by_tenant(self, store, plan):
        store.open_job("acme", "demo", plan, 32)
        store.open_job("umbrella", "demo", plan, 32)
        assert len(store.list_jobs()) == 2
        acme = store.list_jobs("acme")
        assert [job["tenant"] for job in acme] == ["acme"]


class TestRegions:
    def test_completed_round_trips(self, store, plan, reference):
        job_id, _ = store.open_job("acme", "demo", plan, 32)
        file_all(store, job_id, plan, reference)
        completed = store.completed(job_id, plan)
        assert len(completed) == len(plan.regions)
        for session in range(plan.sessions):
            for index, result in enumerate(reference.results[session]):
                stored = completed[(session, index)]
                assert stored.rows == result.rows
                assert stored.cost == result.cost

    def test_resume_map_from_open_job(self, store, plan, reference):
        job_id, _ = store.open_job("acme", "demo", plan, 32)
        file_all(store, job_id, plan, reference)
        _, completed = store.open_job("acme", "demo", plan, 32)
        assert set(completed) == {
            (session, index)
            for session in range(plan.sessions)
            for index in range(len(reference.results[session]))
        }

    def test_rows_are_merge_ordered(self, store, plan, reference):
        """Stored rows read back byte-identical to the merged crawl."""
        job_id, _ = store.open_job("acme", "demo", plan, 32)
        file_all(store, job_id, plan, reference)
        assert store.rows(job_id) == list(reference.rows)

    def test_mid_crawl_rows_are_a_committed_prefix(
        self, store, plan, reference
    ):
        """Rows of a partially filed job == that prefix of the final."""
        job_id, _ = store.open_job("acme", "demo", plan, 32)
        first = reference.results[0]
        for index, result in enumerate(first):
            store.region_done(job_id, (0, index), result)
        expected = [
            tuple(row) for result in first for row in result.rows
        ]
        assert store.rows(job_id) == expected
        assert store.job_status(job_id)["regions_done"] == len(first)

    def test_refiling_is_idempotent(self, store, plan, reference):
        job_id, _ = store.open_job("acme", "demo", plan, 32)
        result = reference.results[0][0]
        store.region_done(job_id, (0, 0), result)
        store.region_done(job_id, (0, 0), result)
        assert store.rows(job_id) == [tuple(r) for r in result.rows]
        assert store.job_status(job_id)["regions_done"] == 1

    def test_status_aggregates_committed_cost(self, store, plan, reference):
        job_id, _ = store.open_job("acme", "demo", plan, 32)
        file_all(store, job_id, plan, reference)
        status = store.job_status(job_id)
        assert status["cost"] == reference.cost
        assert status["tuples"] == len(reference.rows)


class TestRowPagination:
    def test_pages_are_slices_of_the_merge_order(
        self, store, plan, reference
    ):
        job_id, _ = store.open_job("acme", "demo", plan, 32)
        file_all(store, job_id, plan, reference)
        full = store.rows(job_id)
        total = len(full)
        for offset in (0, 1, total // 2, total - 1, total, total + 5):
            for limit in (None, 0, 1, 7, total, total * 2):
                page = store.rows(job_id, offset=offset, limit=limit)
                stop = total if limit is None else offset + limit
                assert page == full[offset:stop], (offset, limit)

    def test_paging_reassembles_the_whole_bag(
        self, store, plan, reference
    ):
        job_id, _ = store.open_job("acme", "demo", plan, 32)
        file_all(store, job_id, plan, reference)
        full = store.rows(job_id)
        pages, offset = [], 0
        while True:
            page = store.rows(job_id, offset=offset, limit=7)
            if not page:
                break
            pages.extend(page)
            offset += len(page)
        assert pages == full

    def test_bad_offset_and_limit_rejected(self, store, plan):
        job_id, _ = store.open_job("acme", "demo", plan, 32)
        with pytest.raises(ValueError, match="offset"):
            store.rows(job_id, offset=-1)
        with pytest.raises(ValueError, match="limit"):
            store.rows(job_id, limit=-1)

    def test_pages_stay_consistent_under_a_concurrent_writer(
        self, store, plan, reference
    ):
        """Paging mid-crawl only ever sees committed-prefix slices.

        A writer thread commits the reference regions one transaction
        at a time while the main thread pages continuously.  Because
        ``region_done`` is one transaction and the merge order appends
        (sessions ascend, regions ascend within a session, rows keep
        file order), every page the reader observes must be exactly
        that window of the final merge order -- never a torn region,
        never rows out of order.
        """
        job_id, _ = store.open_job("acme", "demo", plan, 32)
        final = [
            tuple(row)
            for session in range(plan.sessions)
            for result in reference.results[session]
            for row in result.rows
        ]
        started = threading.Event()
        done = threading.Event()

        def writer():
            started.wait(10)
            for session in range(plan.sessions):
                for index, result in enumerate(
                    reference.results[session]
                ):
                    store.region_done(job_id, (session, index), result)
            done.set()

        thread = threading.Thread(target=writer)
        thread.start()
        started.set()
        limit = 9
        observed_any = False
        try:
            while not done.is_set():
                total = len(store.rows(job_id))
                offset = max(0, total - limit)
                page = store.rows(job_id, offset=offset, limit=limit)
                assert len(page) <= limit
                assert page == final[offset : offset + len(page)]
                observed_any = observed_any or bool(page)
        finally:
            thread.join(30)
        assert not thread.is_alive()
        assert store.rows(job_id) == final
        # The loop really raced the writer (the writer commits one
        # region per transaction, so mid-crawl reads were available).
        assert observed_any


class TestTenantCharges:
    def test_round_trip(self, store):
        charge = {"budget": {"max_queries": 50, "used": 7}, "daily": None}
        store.save_tenant_charge("acme", charge)
        assert store.tenant_charge("acme") == charge

    def test_unknown_tenant_is_none(self, store):
        assert store.tenant_charge("nobody") is None

    def test_charge_commits_with_region(self, store, plan, reference):
        """The region transaction lands the charge snapshot too."""
        job_id, _ = store.open_job("acme", "demo", plan, 32)
        charge = {"budget": {"max_queries": 50, "used": 9}, "daily": None}
        store.region_done(
            job_id,
            (0, 0),
            reference.results[0][0],
            tenant_charge=("acme", charge),
        )
        assert store.tenant_charge("acme") == charge


class TestPersistence:
    def test_reopen_the_file(self, tmp_path, plan, reference):
        """Everything committed survives closing the store."""
        path = tmp_path / "persist.db"
        with ResultStore(path) as store:
            job_id, _ = store.open_job("acme", "demo", plan, 32)
            file_all(store, job_id, plan, reference)
            store.set_status(job_id, "done")
        with ResultStore(path) as store:
            assert store.rows(job_id) == list(reference.rows)
            assert store.job_status(job_id)["status"] == "done"
            completed = store.completed(job_id, plan)
            assert len(completed) == len(plan.regions)
