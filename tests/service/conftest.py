"""Shared service-suite fixtures: the backend matrix knob.

The service tests run against the thread backend by default (fast,
in-process, the tier-1 shape).  Setting ``REPRO_SERVICE_BACKENDS`` to
a comma-separated subset of ``thread,process,async`` re-parametrizes
every test that takes the ``service_backend`` fixture -- CI's matrix
sets ``process`` to drive the same contracts through the worker-pool
path (coordinator-hosted tenant limits, pickled region units).
"""

import os

import pytest

SERVICE_BACKENDS = [
    backend.strip()
    for backend in os.environ.get(
        "REPRO_SERVICE_BACKENDS", "thread"
    ).split(",")
    if backend.strip()
]


@pytest.fixture(params=SERVICE_BACKENDS)
def service_backend(request):
    """Where the service under test crawls its region units."""
    return request.param
