"""Chaos suite: the job server under injected worker death.

Two fault shapes, each swept across the thread and process backends
(parametrized directly, not via the backend matrix fixture -- tier-1
always runs both):

* **Survivable departure** -- a worker departs at a region boundary
  mid-job.  The fleet requeues the unit, the job completes, and the
  books are indistinguishable from an undisturbed run: rows
  byte-identical to the standalone sequential crawl, the tenant
  charged exactly the standalone crawl's server queries.  The injector
  leaves a PID trail proving the fault really fired -- inside a pool
  worker process for the process backend.

* **Fatal crash, then restart** -- after ``kill_after`` healthy
  regions every attempt departs, the fleet burns its replacement cap
  and the job fails loudly.  The service is shut down ("killed"), a
  new one opens the same store, re-registers the tenant (restoring the
  dead server's exact charge snapshot) and resubmits: the job resumes
  from its committed regions, finishes byte-identical, and the
  tenant's lifetime charge equals the standalone crawl's queries
  exactly -- committed regions re-issued **zero** queries.

Departures are injected at crawler *construction* (mirroring the
executor fault suite), so a doomed attempt never issues a query and
charge arithmetic stays exact across the crash.
"""

import os
import threading

import numpy as np
import pytest

from repro.crawl.hybrid import Hybrid
from repro.crawl.partition import crawl_partitioned, partition_space
from repro.crawl.spec import CrawlSpec
from repro.dataspace.dataset import Dataset
from repro.dataspace.space import DataSpace
from repro.exceptions import WorkerDeparted
from repro.server.limits import QueryBudget
from repro.server.server import TopKServer
from repro.service.api import CrawlService
from repro.service.jobs import JobState
from repro.service.store import ResultStore

K = 32
SESSIONS = 3
BACKENDS = ("thread", "process")


# ----------------------------------------------------------------------
# Fault injectors (module level: the process backend pickles them)
# ----------------------------------------------------------------------
class DepartOnce:
    """Crawler factory: the ``nth`` construction departs, once.

    Every other attempt builds a plain ``Hybrid``.  Appends the
    departing worker's PID to ``marker`` so tests can prove where the
    fault fired.  Picklable; each pool worker's unpickled copy counts
    its own attempts.
    """

    def __init__(self, nth, marker):
        self.nth = int(nth)
        self.count = 0
        self.marker = str(marker)
        self._lock = threading.Lock()

    def __getstate__(self):
        return {"nth": self.nth, "count": self.count, "marker": self.marker}

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def __call__(self, view):
        with self._lock:
            self.count += 1
            departed = self.count == self.nth
        if departed:
            with open(self.marker, "a") as handle:
                handle.write(f"{os.getpid()}\n")
            raise WorkerDeparted(
                f"chaos: injected departure at attempt #{self.nth}"
            )
        return Hybrid(view)


class DieAfter:
    """Crawler factory: ``healthy`` good regions, then every attempt
    departs -- a crash the fleet's replacement cap cannot outlive."""

    def __init__(self, healthy, marker):
        self.healthy = int(healthy)
        self.count = 0
        self.marker = str(marker)
        self._lock = threading.Lock()

    def __getstate__(self):
        return {
            "healthy": self.healthy,
            "count": self.count,
            "marker": self.marker,
        }

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def __call__(self, view):
        with self._lock:
            self.count += 1
            departed = self.count > self.healthy
        if departed:
            with open(self.marker, "a") as handle:
                handle.write(f"{os.getpid()}\n")
            raise WorkerDeparted("chaos: the worker is gone for good")
        return Hybrid(view)


# ----------------------------------------------------------------------
# The ground truth: one standalone sequential crawl
# ----------------------------------------------------------------------
def chaos_dataset(seed=11, n=180):
    rng = np.random.default_rng(seed)
    space = DataSpace.mixed(
        [("make", 5), ("body", 3)],
        ["price"],
        numeric_bounds=[(0, 399)],
    )
    rows = np.column_stack(
        [
            rng.integers(1, 6, n),
            rng.integers(1, 4, n),
            rng.integers(0, 400, n),
        ]
    ).astype(np.int64)
    return Dataset(space, rows)


@pytest.fixture(scope="module")
def dataset():
    return chaos_dataset()


@pytest.fixture(scope="module")
def reference(dataset):
    plan = partition_space(dataset.space, SESSIONS)
    meter = QueryBudget(1_000_000)
    sources = [
        TopKServer(dataset, K, priority_seed=0, limits=[meter])
        for _ in range(SESSIONS)
    ]
    result = crawl_partitioned(sources, plan)
    return result, meter.used


@pytest.fixture(scope="module")
def standalone(reference):
    return reference[0]


@pytest.fixture(scope="module")
def standalone_queries(reference):
    return reference[1]


@pytest.mark.parametrize("backend", BACKENDS)
class TestSurvivableDeparture:
    def test_departure_mid_job_leaves_no_trace_in_the_books(
        self, tmp_path, dataset, standalone, standalone_queries, backend
    ):
        marker = tmp_path / "departures.log"
        with CrawlService(
            tmp_path / "crawl.db", workers=2, backend=backend
        ) as service:
            service.register_tenant("acme", budget=100_000)
            job = service.submit(
                "acme",
                dataset,
                K,
                name="demo",
                spec=CrawlSpec(crawler_factory=DepartOnce(2, marker)),
                sessions=SESSIONS,
            )
            status = service.wait(job, timeout=120)
            assert status.state is JobState.DONE
            assert status.regions_done == status.regions_total
            # Byte-identical rows, exact charge: the departed attempt
            # issued zero queries and its region was re-crawled.
            assert service.rows(job) == list(standalone.rows)
            assert (
                service.registry.budget("acme").used
                == standalone_queries
            )
        pids = [int(line) for line in marker.read_text().split()]
        assert pids, "the injected departure never fired"
        if backend == "process":
            # The fault fired inside a pool worker, not the parent.
            assert all(pid != os.getpid() for pid in pids)
        else:
            assert all(pid == os.getpid() for pid in pids)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("kill_after", (1, 2, 3))
class TestKillRestartSweep:
    def test_crash_then_restart_reissues_zero_queries(
        self,
        tmp_path,
        dataset,
        standalone,
        standalone_queries,
        backend,
        kill_after,
    ):
        budget = 100_000
        marker = tmp_path / "crash.log"
        store_path = tmp_path / "crawl.db"
        # One fleet worker: regions complete serially, so the crash
        # point is deterministic and the stored charge snapshot is
        # never smeared by a concurrent lease.
        with CrawlService(
            store_path, workers=1, backend=backend
        ) as service:
            service.register_tenant("acme", budget=budget)
            job = service.submit(
                "acme",
                dataset,
                K,
                name="demo",
                spec=CrawlSpec(
                    crawler_factory=DieAfter(kill_after, marker)
                ),
                sessions=SESSIONS,
            )
            status = service.wait(job, timeout=120)
            # The fleet burned its replacement cap and failed loudly.
            assert status.state is JobState.FAILED
            assert status.regions_done == kill_after
            assert "chaos" in status.error
        assert marker.read_text().strip(), "the crash never fired"

        with ResultStore(store_path) as store:
            snapshot = store.job_status(job)
            charge = store.tenant_charge("acme")
        assert snapshot["status"] == "failed"
        assert snapshot["regions_done"] == kill_after
        charged_at_crash = charge["budget"]["used"]
        assert 0 < charged_at_crash < standalone_queries

        # Restart: same store, same tenant declaration, healthy spec.
        with CrawlService(
            store_path, workers=2, backend=backend
        ) as revived:
            revived.register_tenant("acme", budget=budget)
            # The dead server's exact charge came back with the tenant.
            assert (
                revived.registry.budget("acme").used == charged_at_crash
            )
            resumed = revived.submit(
                "acme", dataset, K, name="demo", sessions=SESSIONS
            )
            final = revived.wait(resumed, timeout=120)
            assert final.state is JobState.DONE
            assert revived.rows(resumed) == list(standalone.rows)
            assert final.cost == standalone.cost
            # Zero re-issue: lifetime charge equals the standalone
            # crawl's server queries exactly -- the committed regions
            # cost nothing the second time around.
            assert (
                revived.registry.budget("acme").used
                == standalone_queries
            )
