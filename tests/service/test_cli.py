"""repro-serve: jobs files in, durable stores and status lines out."""

import json

import numpy as np
import pytest

from repro.crawl.partition import crawl_partitioned, partition_space
from repro.datasets.io import save_csv
from repro.dataspace.dataset import Dataset
from repro.dataspace.space import DataSpace
from repro.server.server import TopKServer
from repro.service.__main__ import main

K = 16
WORKERS = 2


def cli_dataset(seed=7, n=90):
    rng = np.random.default_rng(seed)
    space = DataSpace.mixed(
        [("make", 4), ("body", 2)],
        ["price"],
        numeric_bounds=[(0, 149)],
    )
    rows = np.column_stack(
        [
            rng.integers(1, 5, n),
            rng.integers(1, 3, n),
            rng.integers(0, 150, n),
        ]
    ).astype(np.int64)
    return Dataset(space, rows)


@pytest.fixture(scope="module")
def dataset():
    return cli_dataset()


@pytest.fixture(scope="module")
def standalone(dataset):
    plan = partition_space(dataset.space, WORKERS)
    sources = [
        TopKServer(dataset, K, priority_seed=0) for _ in range(WORKERS)
    ]
    return crawl_partitioned(sources, plan)


@pytest.fixture
def workdir(tmp_path, dataset):
    save_csv(dataset, tmp_path / "demo.csv")
    return tmp_path


def write_jobs(workdir, payload):
    path = workdir / "jobs.json"
    path.write_text(json.dumps(payload))
    return str(path)


def two_tenant_jobs(workdir):
    return write_jobs(
        workdir,
        {
            "tenants": {"acme": {"budget": 50_000}, "umbrella": {}},
            "jobs": [
                {
                    "tenant": tenant,
                    "name": "demo",
                    "csv": str(workdir / "demo.csv"),
                    "k": K,
                    "algorithm": "hybrid",
                    "workers": WORKERS,
                }
                for tenant in ("acme", "umbrella")
            ],
        },
    )


class TestRun:
    def test_run_completes_both_tenants(self, workdir, capsys):
        jobs = two_tenant_jobs(workdir)
        code = main(
            ["run", jobs, "--store", str(workdir / "crawl.db")]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "acme/demo: done" in out
        assert "umbrella/demo: done" in out

    def test_rerun_resumes_instantly(self, workdir, capsys):
        jobs = two_tenant_jobs(workdir)
        store = str(workdir / "crawl.db")
        assert main(["run", jobs, "--store", store]) == 0
        capsys.readouterr()
        assert main(["run", jobs, "--store", store]) == 0
        assert "done" in capsys.readouterr().out

    def test_failed_job_exits_nonzero(self, workdir, capsys):
        # DFS rejects mixed spaces: the job fails, the run reports it.
        jobs = write_jobs(
            workdir,
            {
                "tenants": {"acme": {}},
                "jobs": [
                    {
                        "tenant": "acme",
                        "name": "doomed",
                        "csv": str(workdir / "demo.csv"),
                        "k": K,
                        "algorithm": "dfs",
                    }
                ],
            },
        )
        code = main(
            ["run", jobs, "--store", str(workdir / "crawl.db")]
        )
        assert code == 1
        assert "acme/doomed: failed" in capsys.readouterr().out


class TestReadOnlyCommands:
    def test_status_lists_jobs(self, workdir, capsys):
        jobs = two_tenant_jobs(workdir)
        store = str(workdir / "crawl.db")
        assert main(["run", jobs, "--store", store]) == 0
        capsys.readouterr()
        assert main(["status", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "acme/demo: done" in out
        assert "umbrella/demo: done" in out
        assert main(["status", "--store", store, "--tenant", "acme"]) == 0
        assert "umbrella" not in capsys.readouterr().out

    def test_status_empty_store(self, workdir, capsys):
        assert (
            main(["status", "--store", str(workdir / "empty.db")]) == 0
        )
        assert "no jobs" in capsys.readouterr().out

    def test_rows_match_the_standalone_crawl(
        self, workdir, capsys, standalone
    ):
        jobs = two_tenant_jobs(workdir)
        store = str(workdir / "crawl.db")
        assert main(["run", jobs, "--store", store]) == 0
        capsys.readouterr()
        out_path = workdir / "rows.csv"
        code = main(
            [
                "rows",
                "--store",
                store,
                "--tenant",
                "acme",
                "--name",
                "demo",
                "--output",
                str(out_path),
            ]
        )
        assert code == 0
        written = [
            tuple(int(v) for v in line.split(","))
            for line in out_path.read_text().splitlines()
        ]
        assert written == list(standalone.rows)

    def test_rows_unknown_job(self, workdir, capsys):
        code = main(
            [
                "rows",
                "--store",
                str(workdir / "empty.db"),
                "--tenant",
                "ghost",
                "--name",
                "nope",
            ]
        )
        assert code == 2
        assert "no job" in capsys.readouterr().err


class TestBadInput:
    def test_missing_jobs_file(self, workdir, capsys):
        code = main(
            [
                "run",
                str(workdir / "absent.json"),
                "--store",
                str(workdir / "crawl.db"),
            ]
        )
        assert code == 2
        assert "cannot load" in capsys.readouterr().err

    def test_empty_jobs(self, workdir, capsys):
        jobs = write_jobs(workdir, {"tenants": {}, "jobs": []})
        code = main(
            ["run", jobs, "--store", str(workdir / "crawl.db")]
        )
        assert code == 2
        assert "declares no jobs" in capsys.readouterr().err

    def test_entry_missing_field(self, workdir, capsys):
        jobs = write_jobs(
            workdir,
            {
                "tenants": {"acme": {}},
                "jobs": [{"tenant": "acme", "name": "demo"}],
            },
        )
        code = main(
            ["run", jobs, "--store", str(workdir / "crawl.db")]
        )
        assert code == 2
        assert "missing" in capsys.readouterr().err

    def test_missing_csv(self, workdir, capsys):
        jobs = write_jobs(
            workdir,
            {
                "tenants": {"acme": {}},
                "jobs": [
                    {
                        "tenant": "acme",
                        "name": "demo",
                        "csv": str(workdir / "absent.csv"),
                        "k": K,
                    }
                ],
            },
        )
        code = main(
            ["run", jobs, "--store", str(workdir / "crawl.db")]
        )
        assert code == 2
        assert "cannot load" in capsys.readouterr().err
