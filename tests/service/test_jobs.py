"""The job server's acceptance contract, end to end.

Two concurrent tenants with separate budgets complete jobs whose
stored rows are byte-identical to standalone sequential crawls, with
exact per-tenant charges and zero cross-tenant admission; an exhausted
tenant fails only its own job; ``rows`` works mid-crawl; and a
killed-and-restarted server resumes from SQLite re-issuing zero
queries for committed regions.
"""

import threading

import numpy as np
import pytest

from repro.crawl.coordinator import TenantLimitRegistry
from repro.crawl.partition import crawl_partitioned, partition_space
from repro.crawl.spec import CrawlSpec
from repro.dataspace.dataset import Dataset
from repro.dataspace.space import DataSpace
from repro.exceptions import SchemaError
from repro.server.limits import QueryBudget
from repro.server.server import TopKServer
from repro.service.api import CrawlService
from repro.service.jobs import JobManager, JobState
from repro.service.store import ResultStore

K = 32
SESSIONS = 3


def service_dataset(seed=9, n=240):
    rng = np.random.default_rng(seed)
    space = DataSpace.mixed(
        [("make", 5), ("body", 3)],
        ["price"],
        numeric_bounds=[(0, 399)],
    )
    rows = np.column_stack(
        [
            rng.integers(1, 6, n),
            rng.integers(1, 4, n),
            rng.integers(0, 400, n),
        ]
    ).astype(np.int64)
    return Dataset(space, rows)


@pytest.fixture(scope="module")
def dataset():
    return service_dataset()


@pytest.fixture(scope="module")
def reference(dataset):
    """The sequential reference crawl, with its physical query count.

    ``result.cost`` is the paper's logical cost metric;
    ``queries`` meters what admission limits actually see -- the
    cache-miss queries that reach the server -- via a throwaway
    budget on the reference sources.
    """
    plan = partition_space(dataset.space, SESSIONS)
    meter = QueryBudget(1_000_000)
    sources = [
        TopKServer(dataset, K, priority_seed=0, limits=[meter])
        for _ in range(SESSIONS)
    ]
    result = crawl_partitioned(sources, plan)
    return result, meter.used


@pytest.fixture(scope="module")
def standalone(reference):
    return reference[0]


@pytest.fixture(scope="module")
def standalone_queries(reference):
    return reference[1]


def open_service(tmp_path, workers=2, name="crawl.db"):
    return CrawlService(tmp_path / name, workers=workers)


class TestLifecycle:
    def test_done_job_matches_standalone(
        self, tmp_path, dataset, standalone
    ):
        with open_service(tmp_path) as service:
            service.register_tenant("acme")
            job = service.submit(
                "acme", dataset, K, name="demo", sessions=SESSIONS
            )
            status = service.wait(job, timeout=60)
            assert status.state is JobState.DONE
            assert status.regions_done == status.regions_total
            assert status.cost == standalone.cost
            assert service.rows(job) == list(standalone.rows)
            merged = service.result(job)
            assert merged.rows == standalone.rows
            assert merged.cost == standalone.cost

    def test_status_transitions_reach_the_store(self, tmp_path, dataset):
        with open_service(tmp_path) as service:
            service.register_tenant("acme")
            job = service.submit(
                "acme", dataset, K, name="demo", sessions=SESSIONS
            )
            service.wait(job, timeout=60)
        with ResultStore(tmp_path / "crawl.db") as store:
            assert store.job_status(job)["status"] == "done"

    def test_resubmit_active_job_rejected(self, tmp_path, dataset):
        gate = threading.Event()
        release = threading.Event()

        def on_region(key, result):
            gate.set()
            release.wait(30)

        with open_service(tmp_path, workers=1) as service:
            service.register_tenant("acme")
            job = service.submit(
                "acme",
                dataset,
                K,
                name="demo",
                spec=CrawlSpec(on_region=on_region),
                sessions=SESSIONS,
            )
            assert gate.wait(30)
            with pytest.raises(ValueError, match="already active"):
                service.submit(
                    "acme", dataset, K, name="demo", sessions=SESSIONS
                )
            release.set()
            service.wait(job, timeout=60)

    def test_identity_drift_raises(self, tmp_path, dataset):
        with open_service(tmp_path) as service:
            service.register_tenant("acme")
            job = service.submit(
                "acme", dataset, K, name="demo", sessions=SESSIONS
            )
            service.wait(job, timeout=60)
            with pytest.raises(SchemaError):
                service.submit(
                    "acme", dataset, K * 2, name="demo", sessions=SESSIONS
                )

    def test_wait_timeout(self, tmp_path, dataset):
        gate = threading.Event()
        release = threading.Event()

        def on_region(key, result):
            gate.set()
            release.wait(30)

        with open_service(tmp_path, workers=1) as service:
            service.register_tenant("acme")
            job = service.submit(
                "acme",
                dataset,
                K,
                name="demo",
                spec=CrawlSpec(on_region=on_region),
                sessions=SESSIONS,
            )
            assert gate.wait(30)
            with pytest.raises(TimeoutError):
                service.wait(job, timeout=0.05)
            release.set()
            service.wait(job, timeout=60)


class TestMultiTenant:
    def test_concurrent_tenants_byte_identical_and_exactly_charged(
        self, tmp_path, dataset, standalone, standalone_queries
    ):
        """The headline contract: two tenants, one fleet, exact books."""
        with open_service(tmp_path, workers=3) as service:
            service.register_tenant("acme", budget=100_000)
            service.register_tenant("umbrella", budget=100_000)
            a = service.submit(
                "acme", dataset, K, name="demo", sessions=SESSIONS
            )
            b = service.submit(
                "umbrella", dataset, K, name="demo", sessions=SESSIONS
            )
            status_a = service.wait(a, timeout=60)
            status_b = service.wait(b, timeout=60)
            assert status_a.state is JobState.DONE
            assert status_b.state is JobState.DONE
            # Byte-identical to the standalone sequential crawl.
            assert service.rows(a) == list(standalone.rows)
            assert service.rows(b) == list(standalone.rows)
            # Exact per-tenant charges: each tenant's budget was hit
            # for precisely its own job's server queries, nobody
            # else's.
            assert (
                service.registry.budget("acme").used
                == standalone_queries
            )
            assert (
                service.registry.budget("umbrella").used
                == standalone_queries
            )

    def test_exhausted_tenant_never_blocks_another(
        self, tmp_path, dataset, standalone, standalone_queries
    ):
        """Tenant isolation: 'poor' runs dry, 'rich' is untouched."""
        with open_service(tmp_path, workers=2) as service:
            service.register_tenant("poor", budget=5)
            service.register_tenant("rich", budget=100_000)
            failing = service.submit(
                "poor", dataset, K, name="doomed", sessions=SESSIONS
            )
            fine = service.submit(
                "rich", dataset, K, name="demo", sessions=SESSIONS
            )
            status_poor = service.wait(failing, timeout=60)
            status_rich = service.wait(fine, timeout=60)
            assert status_poor.state is JobState.FAILED
            assert "budget" in status_poor.error.lower()
            assert status_rich.state is JobState.DONE
            assert service.rows(fine) == list(standalone.rows)
            # Zero cross-tenant admission: rich paid for exactly its
            # own crawl, poor for at most its 5 admitted queries.
            assert (
                service.registry.budget("rich").used
                == standalone_queries
            )
            assert service.registry.budget("poor").used <= 5

    def test_charges_persist_in_the_store(self, tmp_path, dataset):
        with open_service(tmp_path) as service:
            service.register_tenant("acme", budget=100_000)
            job = service.submit(
                "acme", dataset, K, name="demo", sessions=SESSIONS
            )
            service.wait(job, timeout=60)
            used = service.registry.budget("acme").used
        with ResultStore(tmp_path / "crawl.db") as store:
            charge = store.tenant_charge("acme")
        assert charge["budget"]["used"] == used


class TestMidCrawl:
    def test_rows_mid_crawl_are_the_committed_prefix(
        self, tmp_path, dataset, standalone
    ):
        """`rows` answers during the crawl with committed data only."""
        paused = threading.Event()
        release = threading.Event()
        committed = []

        def on_region(key, result):
            committed.append((key, result))
            if len(committed) == 2:
                paused.set()
                release.wait(30)

        with open_service(tmp_path, workers=1) as service:
            service.register_tenant("acme")
            job = service.submit(
                "acme",
                dataset,
                K,
                name="demo",
                spec=CrawlSpec(on_region=on_region),
                sessions=SESSIONS,
            )
            assert paused.wait(30)
            status = service.status(job)
            assert status.state is JobState.RUNNING
            assert status.regions_done == 2
            assert 0 < status.regions_total
            mid = service.rows(job)
            expected = sorted(
                (key, [tuple(row) for row in result.rows])
                for key, result in committed[:2]
            )
            assert mid == [row for _, rows in expected for row in rows]
            release.set()
            final = service.wait(job, timeout=60)
            assert final.state is JobState.DONE
            assert service.rows(job) == list(standalone.rows)

    def test_cancel_mid_crawl(self, tmp_path, dataset):
        paused = threading.Event()
        release = threading.Event()

        def on_region(key, result):
            paused.set()
            release.wait(30)

        with open_service(tmp_path, workers=1) as service:
            service.register_tenant("acme")
            job = service.submit(
                "acme",
                dataset,
                K,
                name="demo",
                spec=CrawlSpec(on_region=on_region),
                sessions=SESSIONS,
            )
            assert paused.wait(30)
            assert service.cancel(job) is True
            release.set()
            status = service.wait(job, timeout=60)
            assert status.state is JobState.CANCELLED
            assert status.regions_done < status.regions_total
            # Cancelling a terminal job is a no-op.
            assert service.cancel(job) is False
        with ResultStore(tmp_path / "crawl.db") as store:
            assert store.job_status(job)["status"] == "cancelled"


class TestKillAndResume:
    def test_restart_reissues_zero_queries(
        self, tmp_path, dataset, standalone, standalone_queries
    ):
        """Kill the server mid-crawl; the restart's books stay exact.

        The tenant's budget doubles as the query meter: after the
        resumed job completes, ``used`` equals the standalone crawl's
        total cost exactly -- the committed regions re-issued zero
        queries, the charge snapshot survived the kill.
        """
        budget = 100_000
        paused = threading.Event()
        release = threading.Event()
        commits = []

        def on_region(key, result):
            commits.append(key)
            if len(commits) == 2:
                paused.set()
                release.wait(30)

        service = open_service(tmp_path, workers=1)
        service.register_tenant("acme", budget=budget)
        job = service.submit(
            "acme",
            dataset,
            K,
            name="demo",
            spec=CrawlSpec(on_region=on_region),
            sessions=SESSIONS,
        )
        assert paused.wait(30)
        # "Kill": drain the fleet while the job is mid-crawl.  The
        # worker finishes its in-flight (already committed) region and
        # nothing further starts.
        killer = threading.Thread(target=service.shutdown)
        killer.start()
        release.set()
        killer.join(30)
        assert not killer.is_alive()

        with ResultStore(tmp_path / "crawl.db") as store:
            snapshot = store.job_status(job)
            charge = store.tenant_charge("acme")
        assert snapshot["status"] != "done"
        assert 0 < snapshot["regions_done"] < snapshot["regions_total"]
        assert 0 < snapshot["cost"] < standalone.cost
        charged_at_kill = charge["budget"]["used"]
        assert 0 < charged_at_kill < standalone_queries

        # Restart: same store path, same tenant declaration.
        with open_service(tmp_path, workers=2) as revived:
            revived.register_tenant("acme", budget=budget)
            # The dead server's exact charge was restored.
            assert (
                revived.registry.budget("acme").used == charged_at_kill
            )
            resumed = revived.submit(
                "acme", dataset, K, name="demo", sessions=SESSIONS
            )
            status = revived.wait(resumed, timeout=60)
            assert status.state is JobState.DONE
            assert revived.rows(resumed) == list(standalone.rows)
            assert status.cost == standalone.cost
            # Zero re-issue: the tenant's lifetime total equals the
            # standalone crawl's server queries exactly -- committed
            # regions cost nothing the second time around.
            assert (
                revived.registry.budget("acme").used
                == standalone_queries
            )

    def test_done_job_resubmits_instantly(
        self, tmp_path, dataset, standalone, standalone_queries
    ):
        """A finished job resumes as a no-op: zero queries, same rows."""
        with open_service(tmp_path) as service:
            service.register_tenant("acme", budget=100_000)
            job = service.submit(
                "acme", dataset, K, name="demo", sessions=SESSIONS
            )
            service.wait(job, timeout=60)
        with open_service(tmp_path) as revived:
            revived.register_tenant("acme", budget=100_000)
            again = revived.submit(
                "acme", dataset, K, name="demo", sessions=SESSIONS
            )
            status = revived.wait(again, timeout=60)
            assert status.state is JobState.DONE
            assert revived.rows(again) == list(standalone.rows)
            # Not one query issued beyond the first run's.
            assert (
                revived.registry.budget("acme").used
                == standalone_queries
            )


class TestFairness:
    def test_rotation_serves_every_tenant(self, tmp_path, dataset):
        """With a one-worker fleet, region grants alternate tenants."""
        grants = []
        lock = threading.Lock()
        both_submitted = threading.Event()

        def recorder(tenant):
            def on_region(key, result):
                with lock:
                    grants.append(tenant)
                    first = len(grants) == 1
                # Hold the one-worker fleet on its very first region
                # until the second tenant's job is queued too, so the
                # rotation has both tenants from the second grant on.
                if first:
                    both_submitted.wait(30)

            return on_region

        with open_service(tmp_path, workers=1) as service:
            service.register_tenant("acme")
            service.register_tenant("umbrella")
            jobs = [
                service.submit(
                    tenant,
                    dataset,
                    K,
                    name="demo",
                    spec=CrawlSpec(on_region=recorder(tenant)),
                    sessions=SESSIONS,
                )
                for tenant in ("acme", "umbrella")
            ]
            both_submitted.set()
            for job in jobs:
                service.wait(job, timeout=60)
        # Round-robin keeps the tenants in lock-step: at no point has
        # one tenant been granted more than two regions beyond the
        # other (greedy FIFO dispatch would drain one whole job first,
        # an imbalance equal to the region count).
        assert set(grants) == {"acme", "umbrella"}
        imbalance = 0
        for tenant in grants:
            imbalance += 1 if tenant == "acme" else -1
            assert abs(imbalance) <= 2, grants


class TestManagerGuards:
    def test_bad_worker_count(self, tmp_path):
        with ResultStore(tmp_path / "x.db") as store:
            with pytest.raises(ValueError, match="workers"):
                JobManager(store, TenantLimitRegistry(), workers=0)

    def test_submit_after_shutdown(self, tmp_path, dataset):
        service = open_service(tmp_path)
        service.register_tenant("acme")
        service.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            service.submit(
                "acme", dataset, K, name="demo", sessions=SESSIONS
            )

    def test_unknown_tenant_rejected(self, tmp_path, dataset):
        with open_service(tmp_path) as service:
            with pytest.raises(KeyError, match="unknown tenant"):
                service.submit(
                    "ghost", dataset, K, name="demo", sessions=SESSIONS
                )

    def test_result_requires_done(self, tmp_path, dataset):
        with open_service(tmp_path) as service:
            service.register_tenant("acme")
            with pytest.raises(KeyError):
                service.result(12345)
