"""The job server's acceptance contract, end to end.

Two concurrent tenants with separate budgets complete jobs whose
stored rows are byte-identical to standalone sequential crawls, with
exact per-tenant charges and zero cross-tenant admission; an exhausted
tenant fails only its own job; ``rows`` works mid-crawl; and a
killed-and-restarted server resumes from SQLite re-issuing zero
queries for committed regions.  The contracts are backend-agnostic:
tests taking the ``service_backend`` fixture re-run under the
process/async backends when ``REPRO_SERVICE_BACKENDS`` says so.

The admission layer (bounded per-tenant pending queues, priority
classes) is pinned by hypothesis property suites: arbitrary
submit/cancel interleavings never over-admit past the bound, the
rotation never starves a ready tenant of its class, and shutdown
drains to empty.
"""

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crawl.coordinator import TenantLimitRegistry
from repro.crawl.partition import crawl_partitioned, partition_space
from repro.crawl.spec import CrawlSpec
from repro.dataspace.dataset import Dataset
from repro.dataspace.space import DataSpace
from repro.exceptions import RetryAfter, SchemaError
from repro.server.limits import QueryBudget
from repro.server.server import TopKServer
from repro.service.api import CrawlService
from repro.service.jobs import JobManager, JobState, rotation_order
from repro.service.store import ResultStore

K = 32
SESSIONS = 3


def service_dataset(seed=9, n=240):
    rng = np.random.default_rng(seed)
    space = DataSpace.mixed(
        [("make", 5), ("body", 3)],
        ["price"],
        numeric_bounds=[(0, 399)],
    )
    rows = np.column_stack(
        [
            rng.integers(1, 6, n),
            rng.integers(1, 4, n),
            rng.integers(0, 400, n),
        ]
    ).astype(np.int64)
    return Dataset(space, rows)


@pytest.fixture(scope="module")
def dataset():
    return service_dataset()


@pytest.fixture(scope="module")
def reference(dataset):
    """The sequential reference crawl, with its physical query count.

    ``result.cost`` is the paper's logical cost metric;
    ``queries`` meters what admission limits actually see -- the
    cache-miss queries that reach the server -- via a throwaway
    budget on the reference sources.
    """
    plan = partition_space(dataset.space, SESSIONS)
    meter = QueryBudget(1_000_000)
    sources = [
        TopKServer(dataset, K, priority_seed=0, limits=[meter])
        for _ in range(SESSIONS)
    ]
    result = crawl_partitioned(sources, plan)
    return result, meter.used


@pytest.fixture(scope="module")
def standalone(reference):
    return reference[0]


@pytest.fixture(scope="module")
def standalone_queries(reference):
    return reference[1]


def open_service(
    tmp_path,
    workers=2,
    name="crawl.db",
    backend="thread",
    max_pending=None,
):
    return CrawlService(
        tmp_path / name,
        workers=workers,
        backend=backend,
        max_pending=max_pending,
    )


class TestLifecycle:
    def test_done_job_matches_standalone(
        self, tmp_path, dataset, standalone, service_backend
    ):
        with open_service(tmp_path, backend=service_backend) as service:
            service.register_tenant("acme")
            job = service.submit(
                "acme", dataset, K, name="demo", sessions=SESSIONS
            )
            status = service.wait(job, timeout=60)
            assert status.state is JobState.DONE
            assert status.regions_done == status.regions_total
            assert status.cost == standalone.cost
            assert service.rows(job) == list(standalone.rows)
            merged = service.result(job)
            assert merged.rows == standalone.rows
            assert merged.cost == standalone.cost

    def test_status_transitions_reach_the_store(
        self, tmp_path, dataset, service_backend
    ):
        with open_service(tmp_path, backend=service_backend) as service:
            service.register_tenant("acme")
            job = service.submit(
                "acme", dataset, K, name="demo", sessions=SESSIONS
            )
            service.wait(job, timeout=60)
        with ResultStore(tmp_path / "crawl.db") as store:
            assert store.job_status(job)["status"] == "done"

    def test_resubmit_active_job_rejected(self, tmp_path, dataset):
        gate = threading.Event()
        release = threading.Event()

        def on_region(key, result):
            gate.set()
            release.wait(30)

        with open_service(tmp_path, workers=1) as service:
            service.register_tenant("acme")
            job = service.submit(
                "acme",
                dataset,
                K,
                name="demo",
                spec=CrawlSpec(on_region=on_region),
                sessions=SESSIONS,
            )
            assert gate.wait(30)
            with pytest.raises(ValueError, match="already active"):
                service.submit(
                    "acme", dataset, K, name="demo", sessions=SESSIONS
                )
            release.set()
            service.wait(job, timeout=60)

    def test_spec_executor_overrides_service_backend(
        self, tmp_path, dataset, standalone
    ):
        """One job can opt into another backend via its spec."""
        with open_service(tmp_path) as service:
            service.register_tenant("acme")
            job = service.submit(
                "acme",
                dataset,
                K,
                name="demo",
                spec=CrawlSpec(executor="async"),
                sessions=SESSIONS,
            )
            status = service.wait(job, timeout=60)
            assert status.state is JobState.DONE
            assert service.rows(job) == list(standalone.rows)

    def test_identity_drift_raises(self, tmp_path, dataset):
        with open_service(tmp_path) as service:
            service.register_tenant("acme")
            job = service.submit(
                "acme", dataset, K, name="demo", sessions=SESSIONS
            )
            service.wait(job, timeout=60)
            with pytest.raises(SchemaError):
                service.submit(
                    "acme", dataset, K * 2, name="demo", sessions=SESSIONS
                )

    def test_wait_timeout(self, tmp_path, dataset):
        gate = threading.Event()
        release = threading.Event()

        def on_region(key, result):
            gate.set()
            release.wait(30)

        with open_service(tmp_path, workers=1) as service:
            service.register_tenant("acme")
            job = service.submit(
                "acme",
                dataset,
                K,
                name="demo",
                spec=CrawlSpec(on_region=on_region),
                sessions=SESSIONS,
            )
            assert gate.wait(30)
            with pytest.raises(TimeoutError):
                service.wait(job, timeout=0.05)
            release.set()
            service.wait(job, timeout=60)


class TestMultiTenant:
    def test_concurrent_tenants_byte_identical_and_exactly_charged(
        self, tmp_path, dataset, standalone, standalone_queries,
        service_backend,
    ):
        """The headline contract: two tenants, one fleet, exact books."""
        with open_service(
            tmp_path, workers=3, backend=service_backend
        ) as service:
            service.register_tenant("acme", budget=100_000)
            service.register_tenant("umbrella", budget=100_000)
            a = service.submit(
                "acme", dataset, K, name="demo", sessions=SESSIONS
            )
            b = service.submit(
                "umbrella", dataset, K, name="demo", sessions=SESSIONS
            )
            status_a = service.wait(a, timeout=60)
            status_b = service.wait(b, timeout=60)
            assert status_a.state is JobState.DONE
            assert status_b.state is JobState.DONE
            # Byte-identical to the standalone sequential crawl.
            assert service.rows(a) == list(standalone.rows)
            assert service.rows(b) == list(standalone.rows)
            # Exact per-tenant charges: each tenant's budget was hit
            # for precisely its own job's server queries, nobody
            # else's.
            assert (
                service.registry.budget("acme").used
                == standalone_queries
            )
            assert (
                service.registry.budget("umbrella").used
                == standalone_queries
            )

    def test_exhausted_tenant_never_blocks_another(
        self, tmp_path, dataset, standalone, standalone_queries,
        service_backend,
    ):
        """Tenant isolation: 'poor' runs dry, 'rich' is untouched."""
        with open_service(
            tmp_path, workers=2, backend=service_backend
        ) as service:
            service.register_tenant("poor", budget=5)
            service.register_tenant("rich", budget=100_000)
            failing = service.submit(
                "poor", dataset, K, name="doomed", sessions=SESSIONS
            )
            fine = service.submit(
                "rich", dataset, K, name="demo", sessions=SESSIONS
            )
            status_poor = service.wait(failing, timeout=60)
            status_rich = service.wait(fine, timeout=60)
            assert status_poor.state is JobState.FAILED
            assert "budget" in status_poor.error.lower()
            assert status_rich.state is JobState.DONE
            assert service.rows(fine) == list(standalone.rows)
            # Zero cross-tenant admission: rich paid for exactly its
            # own crawl, poor for at most its 5 admitted queries.
            assert (
                service.registry.budget("rich").used
                == standalone_queries
            )
            assert service.registry.budget("poor").used <= 5

    def test_charges_persist_in_the_store(
        self, tmp_path, dataset, service_backend
    ):
        with open_service(tmp_path, backend=service_backend) as service:
            service.register_tenant("acme", budget=100_000)
            job = service.submit(
                "acme", dataset, K, name="demo", sessions=SESSIONS
            )
            service.wait(job, timeout=60)
            used = service.registry.budget("acme").used
        with ResultStore(tmp_path / "crawl.db") as store:
            charge = store.tenant_charge("acme")
        assert charge["budget"]["used"] == used


class TestMidCrawl:
    def test_rows_mid_crawl_are_the_committed_prefix(
        self, tmp_path, dataset, standalone, service_backend
    ):
        """`rows` answers during the crawl with committed data only."""
        paused = threading.Event()
        release = threading.Event()
        committed = []

        # `on_region` runs parent-side for every backend (commits are
        # the parent's job), so this gate works under `process` too.
        def on_region(key, result):
            committed.append((key, result))
            if len(committed) == 2:
                paused.set()
                release.wait(30)

        with open_service(
            tmp_path, workers=1, backend=service_backend
        ) as service:
            service.register_tenant("acme")
            job = service.submit(
                "acme",
                dataset,
                K,
                name="demo",
                spec=CrawlSpec(on_region=on_region),
                sessions=SESSIONS,
            )
            assert paused.wait(30)
            status = service.status(job)
            assert status.state is JobState.RUNNING
            assert status.regions_done == 2
            assert 0 < status.regions_total
            mid = service.rows(job)
            expected = sorted(
                (key, [tuple(row) for row in result.rows])
                for key, result in committed[:2]
            )
            assert mid == [row for _, rows in expected for row in rows]
            release.set()
            final = service.wait(job, timeout=60)
            assert final.state is JobState.DONE
            assert service.rows(job) == list(standalone.rows)

    def test_cancel_mid_crawl(self, tmp_path, dataset):
        paused = threading.Event()
        release = threading.Event()

        def on_region(key, result):
            paused.set()
            release.wait(30)

        with open_service(tmp_path, workers=1) as service:
            service.register_tenant("acme")
            job = service.submit(
                "acme",
                dataset,
                K,
                name="demo",
                spec=CrawlSpec(on_region=on_region),
                sessions=SESSIONS,
            )
            assert paused.wait(30)
            assert service.cancel(job) is True
            release.set()
            status = service.wait(job, timeout=60)
            assert status.state is JobState.CANCELLED
            assert status.regions_done < status.regions_total
            # Cancelling a terminal job is a no-op.
            assert service.cancel(job) is False
        with ResultStore(tmp_path / "crawl.db") as store:
            assert store.job_status(job)["status"] == "cancelled"


class TestKillAndResume:
    def test_restart_reissues_zero_queries(
        self, tmp_path, dataset, standalone, standalone_queries,
        service_backend,
    ):
        """Kill the server mid-crawl; the restart's books stay exact.

        The tenant's budget doubles as the query meter: after the
        resumed job completes, ``used`` equals the standalone crawl's
        total cost exactly -- the committed regions re-issued zero
        queries, the charge snapshot survived the kill.
        """
        budget = 100_000
        paused = threading.Event()
        release = threading.Event()
        commits = []

        def on_region(key, result):
            commits.append(key)
            if len(commits) == 2:
                paused.set()
                release.wait(30)

        service = open_service(tmp_path, workers=1, backend=service_backend)
        service.register_tenant("acme", budget=budget)
        job = service.submit(
            "acme",
            dataset,
            K,
            name="demo",
            spec=CrawlSpec(on_region=on_region),
            sessions=SESSIONS,
        )
        assert paused.wait(30)
        # "Kill": drain the fleet while the job is mid-crawl.  The
        # worker finishes its in-flight (already committed) region and
        # nothing further starts.
        killer = threading.Thread(target=service.shutdown)
        killer.start()
        release.set()
        killer.join(30)
        assert not killer.is_alive()

        with ResultStore(tmp_path / "crawl.db") as store:
            snapshot = store.job_status(job)
            charge = store.tenant_charge("acme")
        assert snapshot["status"] != "done"
        assert 0 < snapshot["regions_done"] < snapshot["regions_total"]
        assert 0 < snapshot["cost"] < standalone.cost
        charged_at_kill = charge["budget"]["used"]
        assert 0 < charged_at_kill < standalone_queries

        # Restart: same store path, same tenant declaration.
        with open_service(
            tmp_path, workers=2, backend=service_backend
        ) as revived:
            revived.register_tenant("acme", budget=budget)
            # The dead server's exact charge was restored.
            assert (
                revived.registry.budget("acme").used == charged_at_kill
            )
            resumed = revived.submit(
                "acme", dataset, K, name="demo", sessions=SESSIONS
            )
            status = revived.wait(resumed, timeout=60)
            assert status.state is JobState.DONE
            assert revived.rows(resumed) == list(standalone.rows)
            assert status.cost == standalone.cost
            # Zero re-issue: the tenant's lifetime total equals the
            # standalone crawl's server queries exactly -- committed
            # regions cost nothing the second time around.
            assert (
                revived.registry.budget("acme").used
                == standalone_queries
            )

    def test_done_job_resubmits_instantly(
        self, tmp_path, dataset, standalone, standalone_queries,
        service_backend,
    ):
        """A finished job resumes as a no-op: zero queries, same rows."""
        with open_service(tmp_path, backend=service_backend) as service:
            service.register_tenant("acme", budget=100_000)
            job = service.submit(
                "acme", dataset, K, name="demo", sessions=SESSIONS
            )
            service.wait(job, timeout=60)
        with open_service(tmp_path, backend=service_backend) as revived:
            revived.register_tenant("acme", budget=100_000)
            again = revived.submit(
                "acme", dataset, K, name="demo", sessions=SESSIONS
            )
            status = revived.wait(again, timeout=60)
            assert status.state is JobState.DONE
            assert revived.rows(again) == list(standalone.rows)
            # Not one query issued beyond the first run's.
            assert (
                revived.registry.budget("acme").used
                == standalone_queries
            )


class TestFairness:
    def test_rotation_serves_every_tenant(self, tmp_path, dataset):
        """With a one-worker fleet, region grants alternate tenants."""
        grants = []
        lock = threading.Lock()
        both_submitted = threading.Event()

        def recorder(tenant):
            def on_region(key, result):
                with lock:
                    grants.append(tenant)
                    first = len(grants) == 1
                # Hold the one-worker fleet on its very first region
                # until the second tenant's job is queued too, so the
                # rotation has both tenants from the second grant on.
                if first:
                    both_submitted.wait(30)

            return on_region

        with open_service(tmp_path, workers=1) as service:
            service.register_tenant("acme")
            service.register_tenant("umbrella")
            jobs = [
                service.submit(
                    tenant,
                    dataset,
                    K,
                    name="demo",
                    spec=CrawlSpec(on_region=recorder(tenant)),
                    sessions=SESSIONS,
                )
                for tenant in ("acme", "umbrella")
            ]
            both_submitted.set()
            for job in jobs:
                service.wait(job, timeout=60)
        # Round-robin keeps the tenants in lock-step: at no point has
        # one tenant been granted more than two regions beyond the
        # other (greedy FIFO dispatch would drain one whole job first,
        # an imbalance equal to the region count).
        assert set(grants) == {"acme", "umbrella"}
        imbalance = 0
        for tenant in grants:
            imbalance += 1 if tenant == "acme" else -1
            assert abs(imbalance) <= 2, grants


class TestPriorities:
    def test_higher_class_drains_strictly_first(self, tmp_path, dataset):
        """A priority-5 arrival preempts the rotation, not the unit.

        With one worker and a low-priority job mid-flight, submitting a
        high-priority job redirects every subsequent grant to the high
        class until it drains completely -- strict priority between
        classes, not weighted interleaving.
        """
        grants = []
        lock = threading.Lock()
        low_committed = threading.Event()
        high_submitted = threading.Event()

        def on_low(key, result):
            with lock:
                grants.append("low")
                first = len(grants) == 1
            # Hold the one-worker fleet inside low's first commit until
            # the high-class job is queued, so the very next grant is
            # the dispatcher choosing between both classes.
            if first:
                low_committed.set()
                high_submitted.wait(30)

        def on_high(key, result):
            with lock:
                grants.append("high")

        with open_service(tmp_path, workers=1) as service:
            service.register_tenant("acme")
            low = service.submit(
                "acme",
                dataset,
                K,
                name="low",
                spec=CrawlSpec(on_region=on_low),
                sessions=SESSIONS,
            )
            assert low_committed.wait(30)
            high = service.submit(
                "acme",
                dataset,
                K,
                name="high",
                spec=CrawlSpec(on_region=on_high),
                sessions=SESSIONS,
                priority=5,
            )
            high_submitted.set()
            status_high = service.wait(high, timeout=60)
            status_low = service.wait(low, timeout=60)
        assert status_high.state is JobState.DONE
        assert status_low.state is JobState.DONE
        assert status_high.priority == 5
        assert status_low.priority == 0
        # One low region was already in flight when the high job
        # arrived; after it commits, the high class owns every grant
        # until its job is fully drained.
        total_high = status_high.regions_total
        assert grants[0] == "low"
        assert grants[1 : 1 + total_high] == ["high"] * total_high

    def test_priority_survives_in_the_store(self, tmp_path, dataset):
        with open_service(tmp_path) as service:
            service.register_tenant("acme")
            job = service.submit(
                "acme",
                dataset,
                K,
                name="demo",
                sessions=SESSIONS,
                priority=7,
            )
            service.wait(job, timeout=60)
        with ResultStore(tmp_path / "crawl.db") as store:
            assert store.job_status(job)["priority"] == 7


class TestBackpressure:
    def test_refusal_carries_the_books(self, tmp_path, dataset):
        """A full tenant queue refuses with depth/bound, admits nothing."""
        gate = threading.Event()
        release = threading.Event()

        def on_region(key, result):
            gate.set()
            release.wait(30)

        with open_service(
            tmp_path, workers=1, max_pending=1
        ) as service:
            service.register_tenant("acme")
            service.register_tenant("umbrella")
            job = service.submit(
                "acme",
                dataset,
                K,
                name="one",
                spec=CrawlSpec(on_region=on_region),
                sessions=SESSIONS,
            )
            assert gate.wait(30)
            assert service.queue_depth("acme") == 1
            with pytest.raises(RetryAfter) as refused:
                service.submit(
                    "acme", dataset, K, name="two", sessions=SESSIONS
                )
            assert refused.value.tenant == "acme"
            assert refused.value.depth == 1
            assert refused.value.bound == 1
            # The refusal admitted nothing: no depth, no durable row.
            assert service.queue_depth("acme") == 1
            assert service.store.find_job("acme", "two") is None
            # Other tenants are untouched by acme's full queue.
            other = service.submit(
                "umbrella", dataset, K, name="two", sessions=SESSIONS
            )
            assert not service.wait_for_slot("acme", timeout=0.05)
            release.set()
            service.wait(job, timeout=60)
            service.wait(other, timeout=60)
            assert service.wait_for_slot("acme", timeout=10)
            assert service.queue_depth("acme") == 0
            # With a free slot the resubmit is admitted normally.
            redo = service.submit(
                "acme", dataset, K, name="two", sessions=SESSIONS
            )
            status = service.wait(redo, timeout=60)
            assert status.state is JobState.DONE

    def test_unbounded_service_never_refuses(self, tmp_path, dataset):
        with open_service(tmp_path, workers=2) as service:
            service.register_tenant("acme")
            jobs = [
                service.submit(
                    "acme",
                    dataset,
                    K,
                    name=f"burst-{index}",
                    sessions=2,
                )
                for index in range(6)
            ]
            for job in jobs:
                assert service.wait(job, timeout=60).state is JobState.DONE


class TestAdmissionProperties:
    """Hypothesis: the admission layer under arbitrary traffic."""

    @settings(max_examples=8, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["acme", "umbrella", "wayne"]),
                st.integers(min_value=0, max_value=1),
                st.booleans(),
            ),
            min_size=1,
            max_size=10,
        ),
        bound=st.integers(min_value=1, max_value=3),
    )
    def test_interleavings_never_over_admit(
        self, tmp_path_factory, ops, bound
    ):
        """Submit/cancel interleavings respect the bound, always.

        Every admitted job counts against its tenant's depth until
        terminal, a refusal reports ``depth >= bound`` and admits
        nothing (no store row), and draining the admitted jobs returns
        every tenant's depth to zero before shutdown.
        """
        tenants = ("acme", "umbrella", "wayne")
        dataset = service_dataset(seed=4, n=60)
        root = tmp_path_factory.mktemp("admission")
        admitted = []
        with open_service(
            root, workers=2, max_pending=bound
        ) as service:
            for tenant in tenants:
                service.register_tenant(tenant)
            for index, (tenant, priority, cancel) in enumerate(ops):
                name = f"job-{index}"
                try:
                    job = service.submit(
                        tenant,
                        dataset,
                        K,
                        name=name,
                        sessions=2,
                        priority=priority,
                    )
                except RetryAfter as refusal:
                    assert refusal.tenant == tenant
                    assert refusal.bound == bound
                    assert refusal.depth >= bound
                    assert service.store.find_job(tenant, name) is None
                else:
                    admitted.append(job)
                    if cancel:
                        service.cancel(job)
                assert service.queue_depth(tenant) <= bound
            final = [
                service.wait(job, timeout=60) for job in admitted
            ]
            assert all(
                status.state in (JobState.DONE, JobState.CANCELLED)
                for status in final
            )
            for tenant in tenants:
                assert service.queue_depth(tenant) == 0


class TestRotationProperties:
    """Hypothesis: the pure rotation helper the dispatcher runs on."""

    @given(
        tenants=st.lists(
            st.text(min_size=1, max_size=3),
            min_size=1,
            max_size=6,
            unique=True,
        ),
        cursor=st.integers(min_value=0, max_value=100),
    )
    def test_rotation_is_a_cyclic_permutation(self, tenants, cursor):
        order = rotation_order(tenants, cursor)
        start = cursor % len(tenants)
        assert order == tenants[start:] + tenants[:start]
        assert sorted(order) == sorted(tenants)

    def test_empty_rotation(self):
        assert rotation_order([], 7) == []

    @given(
        n_tenants=st.integers(min_value=1, max_value=5),
        rounds=st.integers(min_value=1, max_value=40),
    )
    def test_all_ready_rotation_never_starves(self, n_tenants, rounds):
        """Grant counts spread at most 1 at every prefix.

        Simulates the dispatcher's cursor update (grant the head, bump
        the cursor) with every tenant permanently ready: no tenant
        falls more than one grant behind any other, ever -- the
        bounded-prefix-imbalance guarantee the threaded fairness test
        observes end to end.
        """
        tenants = [f"t{index}" for index in range(n_tenants)]
        counts = dict.fromkeys(tenants, 0)
        cursor = 0
        for _ in range(rounds):
            tenant = rotation_order(tenants, cursor)[0]
            counts[tenant] += 1
            cursor = (cursor % n_tenants + 1) % n_tenants
            spread = max(counts.values()) - min(counts.values())
            assert spread <= 1


class TestManagerGuards:
    def test_bad_worker_count(self, tmp_path):
        with ResultStore(tmp_path / "x.db") as store:
            with pytest.raises(ValueError, match="workers"):
                JobManager(store, TenantLimitRegistry(), workers=0)

    def test_unknown_backend_rejected(self, tmp_path):
        with ResultStore(tmp_path / "x.db") as store:
            with pytest.raises(ValueError, match="unknown backend"):
                JobManager(
                    store, TenantLimitRegistry(), backend="fiber"
                )

    def test_bad_max_pending(self, tmp_path):
        with ResultStore(tmp_path / "x.db") as store:
            with pytest.raises(ValueError, match="max_pending"):
                JobManager(
                    store, TenantLimitRegistry(), max_pending=0
                )

    def test_unknown_spec_executor_rejected(self, tmp_path, dataset):
        with open_service(tmp_path) as service:
            service.register_tenant("acme")
            with pytest.raises(ValueError, match="unknown executor"):
                service.submit(
                    "acme",
                    dataset,
                    K,
                    name="demo",
                    spec=CrawlSpec(executor="fiber"),
                    sessions=SESSIONS,
                )

    def test_rehost_with_active_jobs_rejected(self, tmp_path, dataset):
        """A tenant's limits cannot move to the coordinator mid-job.

        Jobs admitting against the in-process limit objects would
        strand their charges if the authoritative copy moved; the
        per-job process override is refused until the tenant drains.
        """
        gate = threading.Event()
        release = threading.Event()

        def on_region(key, result):
            gate.set()
            release.wait(30)

        with open_service(tmp_path, workers=1) as service:
            service.register_tenant("acme", budget=100_000)
            job = service.submit(
                "acme",
                dataset,
                K,
                name="one",
                spec=CrawlSpec(on_region=on_region),
                sessions=SESSIONS,
            )
            assert gate.wait(30)
            with pytest.raises(ValueError, match="coordinator while"):
                service.submit(
                    "acme",
                    dataset,
                    K,
                    name="two",
                    spec=CrawlSpec(executor="process"),
                    sessions=SESSIONS,
                )
            release.set()
            service.wait(job, timeout=60)

    def test_submit_after_shutdown(self, tmp_path, dataset):
        service = open_service(tmp_path)
        service.register_tenant("acme")
        service.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            service.submit(
                "acme", dataset, K, name="demo", sessions=SESSIONS
            )

    def test_unknown_tenant_rejected(self, tmp_path, dataset):
        with open_service(tmp_path) as service:
            with pytest.raises(KeyError, match="unknown tenant"):
                service.submit(
                    "ghost", dataset, K, name="demo", sessions=SESSIONS
                )

    def test_result_requires_done(self, tmp_path, dataset):
        with open_service(tmp_path) as service:
            service.register_tenant("acme")
            with pytest.raises(KeyError):
                service.result(12345)
