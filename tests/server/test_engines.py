"""Engine tests: correctness of both engines and their equivalence."""

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest
from hypothesis import given, settings

from repro.query.query import Query
from repro.server.engines import (
    IndexedEngine,
    LinearScanEngine,
    VectorEngine,
    make_engine,
)
from tests.conftest import small_instances


@pytest.fixture
def matrix():
    # Already in "priority order": earlier rows are returned first.
    return np.asarray(
        [[1, 10], [2, 20], [1, 30], [2, 40], [1, 50]], dtype=np.int64
    )


@pytest.fixture
def space():
    from repro.dataspace.space import DataSpace

    return DataSpace.mixed([("c", 2)], ["v"])


@pytest.mark.parametrize(
    "engine_cls", [LinearScanEngine, VectorEngine, IndexedEngine]
)
class TestEngines:
    def test_full_query_overflow(self, engine_cls, matrix, space):
        engine = engine_cls(matrix)
        rows, overflow = engine.top(Query.full(space), 3)
        assert overflow
        assert rows == [(1, 10), (2, 20), (1, 30)]

    def test_full_query_resolved(self, engine_cls, matrix, space):
        engine = engine_cls(matrix)
        rows, overflow = engine.top(Query.full(space), 5)
        assert not overflow
        assert len(rows) == 5

    def test_equality_filter(self, engine_cls, matrix, space):
        engine = engine_cls(matrix)
        q = Query.full(space).with_value(0, 1)
        rows, overflow = engine.top(q, 10)
        assert not overflow
        assert rows == [(1, 10), (1, 30), (1, 50)]

    def test_range_filter(self, engine_cls, matrix, space):
        engine = engine_cls(matrix)
        q = Query.full(space).with_range(1, 20, 40)
        rows, overflow = engine.top(q, 10)
        assert rows == [(2, 20), (1, 30), (2, 40)]
        assert not overflow

    def test_half_open_ranges(self, engine_cls, matrix, space):
        engine = engine_cls(matrix)
        low = Query.full(space).with_range(1, None, 20)
        rows, _ = engine.top(low, 10)
        assert rows == [(1, 10), (2, 20)]
        high = Query.full(space).with_range(1, 40, None)
        rows, _ = engine.top(high, 10)
        assert rows == [(2, 40), (1, 50)]

    def test_point_range(self, engine_cls, matrix, space):
        engine = engine_cls(matrix)
        q = Query.full(space).with_range(1, 30, 30)
        rows, overflow = engine.top(q, 1)
        assert rows == [(1, 30)]
        assert not overflow

    def test_empty_result(self, engine_cls, matrix, space):
        engine = engine_cls(matrix)
        q = Query.full(space).with_range(1, 1000, None)
        rows, overflow = engine.top(q, 3)
        assert rows == []
        assert not overflow

    def test_overflow_returns_exactly_k(self, engine_cls, matrix, space):
        engine = engine_cls(matrix)
        q = Query.full(space).with_value(0, 1)
        rows, overflow = engine.top(q, 2)
        assert overflow
        assert rows == [(1, 10), (1, 30)]

    def test_empty_matrix(self, engine_cls, space):
        engine = engine_cls(np.empty((0, 2), dtype=np.int64))
        rows, overflow = engine.top(Query.full(space), 3)
        assert rows == [] and not overflow


class TestFactory:
    def test_make_engine(self, matrix):
        assert isinstance(make_engine("linear", matrix), LinearScanEngine)
        assert isinstance(make_engine("vector", matrix), VectorEngine)
        assert isinstance(make_engine("indexed", matrix), IndexedEngine)
        with pytest.raises(ValueError):
            make_engine("gpu", matrix)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            VectorEngine(np.zeros(3, dtype=np.int64))


class TestEquivalence:
    """Property: the reference, vector and indexed engines agree."""

    @given(instance=small_instances())
    @settings(max_examples=60, deadline=None)
    def test_engines_agree_on_structured_queries(self, instance):
        dataset, k = instance
        linear = LinearScanEngine(dataset.rows)
        vector = VectorEngine(dataset.rows)
        indexed = IndexedEngine(dataset.rows)
        queries = [Query.full(dataset.space)]
        # Probe a few single-attribute refinements of each kind.
        for i, attr in enumerate(dataset.space):
            if attr.is_categorical:
                for v in range(1, attr.domain_size + 1):
                    queries.append(queries[0].with_value(i, v))
            else:
                queries.append(queries[0].with_range(i, 0, 5))
                queries.append(queries[0].with_range(i, None, -1))
                queries.append(queries[0].with_range(i, 2, None))
                queries.append(queries[0].with_range(i, 3, 3))
        for q in queries:
            expected = linear.top(q, k)
            assert vector.top(q, k) == expected
            assert indexed.top(q, k) == expected

    @given(instance=small_instances())
    @settings(max_examples=15, deadline=None)
    def test_engines_agree_under_concurrent_top(self, instance):
        """Racing top() calls (lazy indexes built mid-race) stay exact.

        Fresh vector/indexed engines are hammered by several threads at
        once, so the lazily built per-value and per-column indexes are
        constructed *during* the race; every response must still equal
        the single-threaded linear-scan reference.
        """
        dataset, k = instance
        queries = [Query.full(dataset.space)]
        for i, attr in enumerate(dataset.space):
            if attr.is_categorical:
                for v in range(1, attr.domain_size + 1):
                    queries.append(queries[0].with_value(i, v))
            else:
                queries.append(queries[0].with_range(i, 0, 5))
                queries.append(queries[0].with_range(i, None, -1))
                queries.append(queries[0].with_range(i, 2, None))
        linear = LinearScanEngine(dataset.rows)
        expected = [linear.top(q, k) for q in queries]
        for engine in (
            VectorEngine(dataset.rows),
            IndexedEngine(dataset.rows),
        ):
            with ThreadPoolExecutor(max_workers=4) as pool:
                futures = [
                    pool.submit(engine.top, q, k)
                    for _ in range(4)
                    for q in queries
                ]
                answers = [f.result() for f in futures]
            assert answers == expected * 4


class TestBatchSeam:
    """``top_batch`` answers exactly like a per-query ``top`` loop."""

    @pytest.mark.parametrize(
        "engine_cls", [LinearScanEngine, VectorEngine, IndexedEngine]
    )
    def test_empty_batch(self, engine_cls, matrix):
        assert engine_cls(matrix).top_batch([], 3) == []

    @pytest.mark.parametrize(
        "engine_cls", [LinearScanEngine, VectorEngine, IndexedEngine]
    )
    def test_sibling_slices(self, engine_cls, matrix, space):
        engine = engine_cls(matrix)
        queries = [Query.full(space).with_value(0, v) for v in (1, 2)]
        queries += [
            Query.full(space).with_value(0, v).with_range(1, 15, 45)
            for v in (1, 2)
        ]
        assert engine.top_batch(queries, 2) == [
            engine.top(q, 2) for q in queries
        ]

    @pytest.mark.parametrize(
        "engine_cls", [LinearScanEngine, VectorEngine, IndexedEngine]
    )
    def test_repeated_queries_share_cached_work(
        self, engine_cls, matrix, space
    ):
        # The same query twice in one batch must hit the context's
        # mask/candidate cache and still answer identically.
        engine = engine_cls(matrix)
        query = Query.full(space).with_value(0, 1).with_range(1, 10, 50)
        first, second = engine.top_batch([query, query], 2)
        assert first == second == engine.top(query, 2)

    @given(instance=small_instances())
    @settings(max_examples=40, deadline=None)
    def test_batch_agrees_across_engines(self, instance):
        dataset, k = instance
        queries = [Query.full(dataset.space)]
        for i, attr in enumerate(dataset.space):
            if attr.is_categorical:
                for v in range(1, attr.domain_size + 1):
                    queries.append(queries[0].with_value(i, v))
            else:
                queries.append(queries[0].with_range(i, 0, 5))
                queries.append(queries[0].with_range(i, 3, 3))
        linear = LinearScanEngine(dataset.rows)
        expected = [linear.top(q, k) for q in queries]
        for engine in (
            LinearScanEngine(dataset.rows),
            VectorEngine(dataset.rows),
            IndexedEngine(dataset.rows),
        ):
            assert engine.top_batch(queries, k) == expected
