"""Tests for TopKServer: the Section 1.1 interface contract."""

import pytest

from repro.dataspace.dataset import Dataset
from repro.dataspace.space import DataSpace
from repro.exceptions import QueryBudgetExhausted, SchemaError
from repro.query.query import Query
from repro.server.limits import QueryBudget
from repro.server.server import TopKServer
from tests.conftest import make_dataset


@pytest.fixture
def space():
    return DataSpace.categorical([3])


@pytest.fixture
def dataset(space):
    return make_dataset(space, [[1]] * 5 + [[2]] * 2 + [[3]])


class TestContract:
    def test_resolved_query_returns_everything(self, dataset):
        server = TopKServer(dataset, k=10)
        resp = server.run(Query.full(dataset.space))
        assert resp.resolved
        assert len(resp.rows) == 8

    def test_overflow_returns_exactly_k_and_flag(self, dataset):
        server = TopKServer(dataset, k=3)
        resp = server.run(Query.full(dataset.space))
        assert resp.overflow
        assert len(resp.rows) == 3

    def test_repeating_a_query_returns_the_same_response(self, dataset):
        """Crucial: re-issuing an overflowing query never reveals more."""
        server = TopKServer(dataset, k=3)
        q = Query.full(dataset.space)
        first = server.run(q)
        for _ in range(5):
            assert server.run(q) == first

    def test_determinism_across_server_instances(self, dataset):
        q = Query.full(dataset.space)
        a = TopKServer(dataset, k=3, priority_seed=42).run(q)
        b = TopKServer(dataset, k=3, priority_seed=42).run(q)
        assert a == b

    def test_different_seeds_may_return_different_tuples(self, dataset):
        q = Query.full(dataset.space).with_value(0, 1)
        responses = {
            TopKServer(dataset, k=3, priority_seed=seed).run(q).rows
            for seed in range(20)
        }
        # 5 identical tuples at value 1 are indistinguishable; probe a
        # mixed query instead.
        q2 = Query.full(dataset.space)
        responses = {
            TopKServer(dataset, k=3, priority_seed=seed).run(q2).rows
            for seed in range(20)
        }
        assert len(responses) > 1

    def test_explicit_priorities(self, dataset):
        # Highest priority wins; row order breaks ties.
        priorities = [0, 1, 2, 3, 4, 10, 11, 12]
        server = TopKServer(dataset, k=3, priorities=priorities)
        resp = server.run(Query.full(dataset.space))
        assert resp.rows == ((3,), (2,), (2,))

    def test_priority_length_validated(self, dataset):
        with pytest.raises(SchemaError):
            TopKServer(dataset, k=3, priorities=[1, 2])

    def test_k_validated(self, dataset):
        with pytest.raises(SchemaError):
            TopKServer(dataset, k=0)

    def test_space_mismatch_rejected(self, dataset):
        server = TopKServer(dataset, k=3)
        other = Query.full(DataSpace.categorical([4]))
        with pytest.raises(SchemaError):
            server.run(other)


class TestAccounting:
    def test_stats_count_queries(self, dataset):
        server = TopKServer(dataset, k=3)
        q = Query.full(dataset.space)
        server.run(q)
        server.run(q.with_value(0, 3))
        assert server.stats.queries == 2
        assert server.stats.overflowed == 1
        assert server.stats.resolved == 1

    def test_budget_enforced_and_query_not_counted(self, dataset):
        server = TopKServer(dataset, k=3, limits=[QueryBudget(1)])
        server.run(Query.full(dataset.space))
        with pytest.raises(QueryBudgetExhausted):
            server.run(Query.full(dataset.space).with_value(0, 1))
        assert server.stats.queries == 1

    def test_engines_give_same_answers(self, dataset):
        q = Query.full(dataset.space).with_value(0, 1)
        vec = TopKServer(dataset, k=3, engine="vector").run(q)
        lin = TopKServer(dataset, k=3, engine="linear").run(q)
        assert vec == lin

    def test_empty_dataset(self, space):
        server = TopKServer(Dataset(space, []), k=3)
        resp = server.run(Query.full(space))
        assert resp.resolved and resp.rows == ()
