"""PatientClient tests: sleeping through quotas, end-to-end crawls."""

import numpy as np
import pytest

from repro.crawl.hybrid import Hybrid
from repro.crawl.verify import assert_complete
from repro.dataspace.dataset import Dataset
from repro.dataspace.space import DataSpace
from repro.exceptions import QueryBudgetExhausted
from repro.server.client import PatientClient
from repro.server.limits import DailyRateLimit, QueryBudget, SimulatedClock
from repro.server.server import TopKServer


@pytest.fixture
def dataset():
    rng = np.random.default_rng(5)
    space = DataSpace.mixed([("c", 4)], ["v"])
    rows = np.column_stack(
        [rng.integers(1, 5, 200), rng.integers(0, 500, 200)]
    ).astype(np.int64)
    return Dataset(space, rows)


class TestSleeping:
    def test_crawl_completes_across_days(self, dataset):
        clock = SimulatedClock()
        per_day = 10
        server = TopKServer(
            dataset, k=8, limits=[DailyRateLimit(per_day, clock)]
        )
        client = PatientClient(server, clock)
        result = Hybrid(client).crawl()
        assert_complete(result, dataset)
        # cost queries at per_day a day need ceil(cost/per_day) days,
        # i.e. that many minus one sleeps.
        assert client.days_slept == -(-result.cost // per_day) - 1

    def test_no_sleep_when_quota_suffices(self, dataset):
        clock = SimulatedClock()
        server = TopKServer(
            dataset, k=8, limits=[DailyRateLimit(10_000, clock)]
        )
        client = PatientClient(server, clock)
        Hybrid(client).crawl()
        assert client.days_slept == 0

    def test_max_days_cap_reraises(self, dataset):
        clock = SimulatedClock()
        server = TopKServer(dataset, k=8, limits=[DailyRateLimit(5, clock)])
        client = PatientClient(server, clock, max_days=1)
        with pytest.raises(QueryBudgetExhausted):
            Hybrid(client).crawl()
        assert client.days_slept == 1

    def test_hard_budget_is_not_slept_through(self, dataset):
        # A QueryBudget never resets; patience must not loop forever.
        clock = SimulatedClock()
        server = TopKServer(dataset, k=8, limits=[QueryBudget(5)])
        client = PatientClient(server, clock, max_days=3)
        with pytest.raises(QueryBudgetExhausted):
            Hybrid(client).crawl()
        assert client.days_slept == 3  # capped, then re-raised


class TestOverWeb:
    def test_patience_spans_http_429(self, dataset):
        from repro.web.adapter import WebSession
        from repro.web.site import HiddenWebSite

        clock = SimulatedClock()
        server = TopKServer(dataset, k=8, limits=[DailyRateLimit(10, clock)])
        session = WebSession(HiddenWebSite(server))
        client = PatientClient(session, clock)
        result = Hybrid(client).crawl()
        assert result.complete
        assert sorted(result.rows) == sorted(dataset.iter_rows())
        assert client.days_slept > 0
