"""Tests for the provider-side workload report."""

import pytest

from repro.crawl.hybrid import Hybrid
from repro.datasets.synthetic import random_dataset
from repro.dataspace.dataset import Dataset
from repro.dataspace.space import DataSpace
from repro.server.server import TopKServer
from repro.server.workload import workload_report


@pytest.fixture
def dataset():
    space = DataSpace.mixed([("c", 4)], ["x"])
    return random_dataset(space, 500, seed=6, numeric_range=(0, 99))


class TestWorkloadReport:
    def test_counters_match_server_stats(self, dataset):
        server = TopKServer(dataset, k=16)
        Hybrid(server).crawl()
        report = workload_report(server)
        assert report.queries == server.stats.queries
        assert report.resolved + report.overflowed == report.queries
        assert report.tuples_shipped == server.stats.tuples_returned

    def test_ship_factor_small_constant(self, dataset):
        """The paper's provider-burden claim: a few x the database."""
        server = TopKServer(dataset, k=16)
        Hybrid(server).crawl()
        report = workload_report(server)
        # Every tuple must be shipped at least once...
        assert report.ship_factor >= 1.0
        # ... and an efficient crawl stays within a small constant.
        assert report.ship_factor < 6.0

    def test_tuples_per_query_bounded_by_k(self, dataset):
        server = TopKServer(dataset, k=16)
        Hybrid(server).crawl()
        report = workload_report(server)
        assert 0 < report.tuples_per_query <= 16

    def test_empty_server(self):
        space = DataSpace.categorical([3])
        server = TopKServer(Dataset(space, []), k=4)
        report = workload_report(server)
        assert report.queries == 0
        assert report.ship_factor == 0.0
        assert report.tuples_per_query == 0.0

    def test_summary_text(self, dataset):
        server = TopKServer(dataset, k=16)
        Hybrid(server).crawl()
        text = workload_report(server).summary()
        assert "tuples/query" in text
        assert "x the database" in text
