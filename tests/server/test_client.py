"""Tests for CachingClient: memoisation is the cost model."""

import pytest

from repro.dataspace.space import DataSpace
from repro.query.query import Query, slice_query
from repro.server.client import CachingClient
from repro.server.server import TopKServer
from tests.conftest import make_dataset


@pytest.fixture
def server():
    space = DataSpace.categorical([3, 3])
    dataset = make_dataset(
        space, [[i % 3 + 1, (i // 3) % 3 + 1] for i in range(12)]
    )
    return TopKServer(dataset, k=4)


class TestCaching:
    def test_miss_then_hit(self, server):
        client = CachingClient(server)
        q = Query.full(server.space)
        first = client.run(q)
        assert client.cost == 1
        second = client.run(q)
        assert second == first
        assert client.cost == 1  # cache hit: free
        assert server.stats.queries == 1  # server saw it once

    def test_structurally_equal_queries_share_entries(self, server):
        client = CachingClient(server)
        a = Query.full(server.space).with_value(0, 2)
        b = slice_query(server.space, 0, 2)
        client.run(a)
        assert client.peek(b) is not None
        client.run(b)
        assert client.cost == 1

    def test_peek_never_queries(self, server):
        client = CachingClient(server)
        q = Query.full(server.space)
        assert client.peek(q) is None
        assert client.cost == 0
        assert server.stats.queries == 0

    def test_history_records_misses_in_order(self, server):
        client = CachingClient(server)
        q1 = Query.full(server.space)
        q2 = q1.with_value(0, 1)
        client.run(q1)
        client.run(q2)
        client.run(q1)
        assert client.history == (q1, q2)

    def test_listener_fires_on_miss_only(self, server):
        client = CachingClient(server)
        seen = []
        client.add_listener(lambda q, r: seen.append(q))
        q = Query.full(server.space)
        client.run(q)
        client.run(q)
        assert len(seen) == 1

    def test_store_local_is_free(self, server):
        from repro.server.response import QueryResponse

        client = CachingClient(server)
        q = Query.full(server.space).with_value(0, 3)
        client._store_local(q, QueryResponse((), False))
        assert client.run(q).rows == ()
        assert client.cost == 0

    def test_phases(self, server):
        client = CachingClient(server)
        client.begin_phase("warmup")
        client.run(Query.full(server.space))
        client.end_phase()
        client.run(Query.full(server.space).with_value(0, 1))
        assert client.stats.phase_costs == {"warmup": 1}

    def test_exposes_interface_facts(self, server):
        client = CachingClient(server)
        assert client.k == server.k
        assert client.space == server.space


class TestRunBatch:
    """run_batch ≡ a run() loop, with or without a server batch seam."""

    def queries(self, server):
        return [slice_query(server.space, 0, v) for v in (1, 2, 3)]

    def test_equals_per_query_loop(self, server):
        batched = CachingClient(server)
        responses = batched.run_batch(self.queries(server))
        reference = CachingClient(TopKServer(server.dataset, k=server.k))
        expected = [reference.run(q) for q in self.queries(server)]
        assert responses == expected
        assert batched.cost == reference.cost == 3
        assert batched.history == reference.history

    def test_second_batch_is_free(self, server):
        client = CachingClient(server)
        first = client.run_batch(self.queries(server))
        assert client.run_batch(self.queries(server)) == first
        assert client.cost == 3

    def test_stats_and_listeners_fire_per_miss(self, server):
        client = CachingClient(server)
        seen = []
        client.add_listener(lambda q, r: seen.append(q))
        client.run_batch(self.queries(server))
        assert seen == list(self.queries(server))
        assert client.stats.queries == 3

    def test_source_without_batch_context_falls_back(self, server):
        # Sources that are not TopKServers (web sessions, adversaries)
        # expose no batch_context; run_batch degrades to the loop.
        class PlainSource:
            space = server.space
            k = server.k

            def run(self, query):
                return server.run(query)

        client = CachingClient(PlainSource())
        responses = client.run_batch(self.queries(server))
        assert [len(r.rows) for r in responses] == [4, 4, 4]
        assert client.cost == 3

    def test_server_run_batch_matches_run(self, server):
        fresh = TopKServer(server.dataset, k=server.k)
        expected = [fresh.run(q) for q in self.queries(server)]
        assert server.run_batch(self.queries(server)) == expected

    def profiled_phases(self, source, exercise):
        from repro.server import profiling

        client = CachingClient(source)
        with profiling.profile() as prof:
            exercise(client)
        return {
            name: stat.calls for name, stat in prof.phases().items()
        }, client

    def test_profile_identical_batched_vs_looped(self, server):
        """--profile tables match between run_batch and a run() loop."""

        def batched(client):
            client.run_batch(self.queries(server))

        def looped(client):
            for query in self.queries(server):
                client.run(query)

        batch_calls, batch_client = self.profiled_phases(
            TopKServer(server.dataset, k=server.k), batched
        )
        loop_calls, loop_client = self.profiled_phases(
            TopKServer(server.dataset, k=server.k), looped
        )
        assert batch_calls == loop_calls
        assert batch_client.stats.state() == loop_client.stats.state()

    def test_profile_identical_on_fallback_source(self, server):
        """The non-server fallback records the same profile phases too."""

        class PlainSource:
            space = server.space
            k = server.k

            def run(self, query):
                return server.run(query)

        def batched(client):
            client.run_batch(self.queries(server))

        plain_calls, plain_client = self.profiled_phases(
            PlainSource(), batched
        )
        server_calls, server_client = self.profiled_phases(
            TopKServer(server.dataset, k=server.k), batched
        )
        assert plain_calls == server_calls
        assert plain_client.stats.state() == server_client.stats.state()

    def test_cost_exact_inside_epoch(self, server):
        """Per-query cost deltas read identically mid-epoch."""
        client = CachingClient(server)
        deltas = []
        with client.batch():
            for query in self.queries(server):
                before = client.cost
                client.run(query)
                deltas.append(client.cost - before)
        assert deltas == [1, 1, 1]
        assert client.cost == 3
        assert client.stats.queries == 3  # merged at the epoch boundary

    def test_nested_epochs_join_the_outer(self, server):
        client = CachingClient(server)
        with client.batch():
            with client.batch():
                client.run(self.queries(server)[0])
            # Inner exit must not flush or clear the outer buffer.
            client.run(self.queries(server)[1])
            assert client.cost == 2
        assert client.stats.queries == 2
