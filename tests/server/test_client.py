"""Tests for CachingClient: memoisation is the cost model."""

import pytest

from repro.dataspace.space import DataSpace
from repro.query.query import Query, slice_query
from repro.server.client import CachingClient
from repro.server.server import TopKServer
from tests.conftest import make_dataset


@pytest.fixture
def server():
    space = DataSpace.categorical([3, 3])
    dataset = make_dataset(
        space, [[i % 3 + 1, (i // 3) % 3 + 1] for i in range(12)]
    )
    return TopKServer(dataset, k=4)


class TestCaching:
    def test_miss_then_hit(self, server):
        client = CachingClient(server)
        q = Query.full(server.space)
        first = client.run(q)
        assert client.cost == 1
        second = client.run(q)
        assert second == first
        assert client.cost == 1  # cache hit: free
        assert server.stats.queries == 1  # server saw it once

    def test_structurally_equal_queries_share_entries(self, server):
        client = CachingClient(server)
        a = Query.full(server.space).with_value(0, 2)
        b = slice_query(server.space, 0, 2)
        client.run(a)
        assert client.peek(b) is not None
        client.run(b)
        assert client.cost == 1

    def test_peek_never_queries(self, server):
        client = CachingClient(server)
        q = Query.full(server.space)
        assert client.peek(q) is None
        assert client.cost == 0
        assert server.stats.queries == 0

    def test_history_records_misses_in_order(self, server):
        client = CachingClient(server)
        q1 = Query.full(server.space)
        q2 = q1.with_value(0, 1)
        client.run(q1)
        client.run(q2)
        client.run(q1)
        assert client.history == (q1, q2)

    def test_listener_fires_on_miss_only(self, server):
        client = CachingClient(server)
        seen = []
        client.add_listener(lambda q, r: seen.append(q))
        q = Query.full(server.space)
        client.run(q)
        client.run(q)
        assert len(seen) == 1

    def test_store_local_is_free(self, server):
        from repro.server.response import QueryResponse

        client = CachingClient(server)
        q = Query.full(server.space).with_value(0, 3)
        client._store_local(q, QueryResponse((), False))
        assert client.run(q).rows == ()
        assert client.cost == 0

    def test_phases(self, server):
        client = CachingClient(server)
        client.begin_phase("warmup")
        client.run(Query.full(server.space))
        client.end_phase()
        client.run(Query.full(server.space).with_value(0, 1))
        assert client.stats.phase_costs == {"warmup": 1}

    def test_exposes_interface_facts(self, server):
        client = CachingClient(server)
        assert client.k == server.k
        assert client.space == server.space
