"""Concurrency stress tests: exact accounting under thread contention.

The serving stack claims to be safe for concurrent crawl sessions:

* a :class:`CachingClient` issues each distinct query to the server
  *exactly once* -- racing threads on a cold query never double-charge,
  and cache hits cost zero;
* :class:`QueryStats` totals stay exact (``queries == resolved +
  overflowed``, tuple counts consistent) however calls interleave;
* limits never over-admit: exactly ``per_day`` / ``max_queries``
  admissions succeed no matter how many threads race on ``admit``.

Every test here uses a fixed seed and a thread barrier so the workload
(which queries, from how many threads) is deterministic even though the
interleaving is not; the assertions hold for *every* interleaving.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.dataspace.dataset import Dataset
from repro.dataspace.space import DataSpace
from repro.exceptions import QueryBudgetExhausted
from repro.query.query import Query
from repro.server.client import CachingClient
from repro.server.limits import DailyRateLimit, QueryBudget, SimulatedClock
from repro.server.server import TopKServer

THREADS = 8
SEED = 1234


def stress_dataset(n=600, seed=SEED):
    rng = np.random.default_rng(seed)
    space = DataSpace.mixed(
        [("make", 9), ("body", 4)],
        ["price"],
        numeric_bounds=[(0, 499)],
    )
    rows = np.column_stack(
        [
            rng.integers(1, 10, n),
            rng.integers(1, 5, n),
            rng.integers(0, 500, n),
        ]
    ).astype(np.int64)
    return Dataset(space, rows)


def query_pool(space, seed=SEED):
    """A deterministic pool of distinct queries over ``space``."""
    rng = np.random.default_rng(seed)
    root = Query.full(space)
    queries = [root]
    for make in range(1, 10):
        queries.append(root.with_value(0, make))
        for body in range(1, 5):
            queries.append(root.with_value(0, make).with_value(1, body))
    for _ in range(40):
        lo = int(rng.integers(0, 450))
        queries.append(root.with_range(2, lo, lo + int(rng.integers(1, 80))))
    # Distinctness matters: the cache-exactness assertion counts them.
    assert len(set(queries)) == len(queries)
    return queries


def hammer(worker, threads=THREADS):
    """Run ``worker(thread_index)`` on a barrier-synchronised pool."""
    barrier = threading.Barrier(threads)

    def run(i):
        barrier.wait()
        return worker(i)

    with ThreadPoolExecutor(max_workers=threads) as pool:
        tasks = [pool.submit(run, i) for i in range(threads)]
        return [task.result() for task in tasks]


class TestCachingClientExactlyOnce:
    def test_racing_threads_never_double_charge(self):
        dataset = stress_dataset()
        server = TopKServer(dataset, k=16)
        client = CachingClient(server)
        queries = query_pool(dataset.space)

        # Every thread runs the whole pool in a thread-specific order,
        # so every query is raced by all 8 threads.
        def worker(i):
            order = np.random.default_rng(SEED + i).permutation(len(queries))
            return [client.run(queries[j]) for j in order]

        hammer(worker)

        # Exactly one server round trip per distinct query.
        assert client.cost == len(queries)
        assert server.stats.queries == len(queries)
        assert len(client.history) == len(queries)
        assert set(client.history) == set(queries)

        # Re-running the pool now costs nothing: all hits.
        before = client.cost
        for q in queries:
            client.run(q)
        assert client.cost == before

    def test_responses_match_single_threaded_reference(self):
        dataset = stress_dataset()
        queries = query_pool(dataset.space)
        reference = {q: TopKServer(dataset, k=16).run(q) for q in queries}
        client = CachingClient(TopKServer(dataset, k=16))

        def worker(i):
            order = np.random.default_rng(SEED + i).permutation(len(queries))
            return {queries[j]: client.run(queries[j]) for j in order}

        for answers in hammer(worker):
            assert answers == reference

    def test_stats_totals_are_exact(self):
        dataset = stress_dataset()
        server = TopKServer(dataset, k=16)
        client = CachingClient(server)
        queries = query_pool(dataset.space)

        def worker(i):
            order = np.random.default_rng(SEED + i).permutation(len(queries))
            for j in order:
                client.run(queries[j])

        hammer(worker)
        for stats in (client.stats, server.stats):
            assert stats.queries == len(queries)
            assert stats.resolved + stats.overflowed == stats.queries
        expected_tuples = sum(len(client.peek(q).rows) for q in queries)
        assert client.stats.tuples_returned == expected_tuples
        assert server.stats.tuples_returned == expected_tuples


class TestBareServerExactness:
    def test_server_counts_every_concurrent_query(self):
        dataset = stress_dataset()
        server = TopKServer(dataset, k=16)
        queries = query_pool(dataset.space)

        def worker(i):
            for q in queries:
                server.run(q)

        hammer(worker)
        assert server.stats.queries == THREADS * len(queries)
        assert (
            server.stats.resolved + server.stats.overflowed
            == server.stats.queries
        )


class TestLimitsNeverOverAdmit:
    def test_query_budget_admits_exactly_max(self):
        budget = QueryBudget(100)
        admitted = []

        def worker(i):
            count = 0
            for _ in range(40):
                try:
                    budget.admit()
                    count += 1
                except QueryBudgetExhausted:
                    pass
            admitted.append(count)

        hammer(worker)
        assert sum(admitted) == 100
        assert budget.remaining == 0 and budget.used == 100

    def test_daily_rate_limit_admits_exactly_per_day(self):
        clock = SimulatedClock()
        limit = DailyRateLimit(50, clock)
        results = []

        def worker(i):
            count = 0
            for _ in range(20):
                try:
                    limit.admit()
                    count += 1
                except QueryBudgetExhausted:
                    pass
            results.append(count)

        hammer(worker)
        assert sum(results) == 50
        assert limit.remaining_today == 0

        # The quota resets atomically on the day boundary.
        clock.sleep_until_next_day()
        results.clear()
        hammer(worker)
        assert sum(results) == 50
