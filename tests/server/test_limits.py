"""Tests for query budgets, simulated clock, and daily rate limits."""

import pytest

from repro.exceptions import QueryBudgetExhausted
from repro.server.limits import DailyRateLimit, QueryBudget, SimulatedClock


class TestQueryBudget:
    def test_admits_up_to_max(self):
        budget = QueryBudget(3)
        for _ in range(3):
            budget.admit()
        assert budget.remaining == 0
        assert budget.used == 3

    def test_exhaustion(self):
        budget = QueryBudget(1)
        budget.admit()
        with pytest.raises(QueryBudgetExhausted) as info:
            budget.admit()
        assert info.value.issued == 1

    def test_zero_budget(self):
        with pytest.raises(QueryBudgetExhausted):
            QueryBudget(0).admit()

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            QueryBudget(-1)

    def test_refill(self):
        budget = QueryBudget(1)
        budget.admit()
        budget.refill(2)
        budget.admit()
        assert budget.remaining == 1
        with pytest.raises(ValueError):
            budget.refill(-1)


class TestSimulatedClock:
    def test_advances(self):
        clock = SimulatedClock()
        assert clock.day == 0
        assert clock.sleep_until_next_day() == 1
        assert clock.day == 1


class TestDailyRateLimit:
    def test_daily_quota(self):
        clock = SimulatedClock()
        limit = DailyRateLimit(2, clock)
        limit.admit()
        limit.admit()
        assert limit.remaining_today == 0
        with pytest.raises(QueryBudgetExhausted):
            limit.admit()

    def test_resets_on_new_day(self):
        clock = SimulatedClock()
        limit = DailyRateLimit(1, clock)
        limit.admit()
        with pytest.raises(QueryBudgetExhausted):
            limit.admit()
        clock.sleep_until_next_day()
        limit.admit()  # fresh quota
        assert limit.used_today == 1

    def test_validates_per_day(self):
        with pytest.raises(ValueError):
            DailyRateLimit(0, SimulatedClock())


class TestLeasing:
    """LimitLease: chunked admission with exact give-back semantics."""

    def test_budget_lease_charges_upfront_and_release_returns_unused(self):
        from repro.server.limits import LimitLease

        budget = QueryBudget(10)
        lease = budget.lease(4)
        assert isinstance(lease, LimitLease)
        assert (lease.granted, lease.unused) == (4, 4)
        assert budget.used == 4  # charged at lease time
        assert lease.take() and lease.take()
        assert lease.unused == 2
        budget.release(lease)
        assert budget.used == 2  # exactly the consumed units remain

    def test_partial_grant_when_less_remains_than_requested(self):
        budget = QueryBudget(3)
        lease = budget.lease(8)
        assert lease.granted == 3
        assert budget.remaining == 0

    def test_refused_lease_raises_with_budget_fully_charged(self):
        budget = QueryBudget(2)
        held = budget.lease(2)
        with pytest.raises(QueryBudgetExhausted) as excinfo:
            budget.lease(1)
        assert excinfo.value.issued == 2
        # Terminal exhaustion: releasing after a refusal is void, so
        # the budget keeps reading fully charged -- the observable
        # state per-query admission would have left behind.
        budget.release(held)
        assert budget.used == 2
        assert budget.remaining == 0

    def test_refill_reopens_a_refused_budget(self):
        budget = QueryBudget(1)
        budget.admit()
        with pytest.raises(QueryBudgetExhausted):
            budget.admit()
        budget.refill(2)
        lease = budget.lease(2)
        assert lease.granted == 2
        budget.release(lease)
        assert budget.used == 1  # releases apply again after refill

    def test_lease_rejects_nonpositive_sizes(self):
        with pytest.raises(ValueError):
            QueryBudget(5).lease(0)

    def test_default_lease_is_per_query(self):
        """Limits without a chunk semantics degrade to admit()-per-call:
        exact at any chunk size a client asks for."""
        clock = SimulatedClock()
        daily = DailyRateLimit(2, clock)
        lease = daily.lease(10)  # base-class default
        assert lease.granted == 1
        assert daily.used_today == 1
        daily.release(lease)  # no-op: the unit is consumed by contract
        assert daily.used_today == 1

    def test_take_runs_dry(self):
        from repro.server.limits import LimitLease

        lease = LimitLease(2)
        assert lease.take() and lease.take()
        assert not lease.take()
        assert lease.unused == 0
        assert "used=2" in repr(lease)

    def test_release_is_idempotent(self):
        budget = QueryBudget(10)
        lease = budget.lease(4)
        lease.take()
        lease.take()
        budget.release(lease)
        budget.release(lease)  # a second release returns nothing twice
        assert budget.used == 2
        assert lease.unused == 0

    def test_refused_flag_survives_the_state_round_trip(self):
        exhausted = QueryBudget(2)
        held = exhausted.lease(2)
        with pytest.raises(QueryBudgetExhausted):
            exhausted.lease(1)
        clone = QueryBudget(2)
        clone.restore_state(exhausted.state())
        clone.release(held)  # still terminally refused: void
        assert clone.used == 2
        healthy = QueryBudget(5)
        healthy.restore_state({"max_queries": 5, "used": 1})
        lease = healthy.lease(2)
        healthy.release(lease)  # legacy snapshot: not refused, applies
        assert healthy.used == 1
