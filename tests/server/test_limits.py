"""Tests for query budgets, simulated clock, and daily rate limits."""

import pytest

from repro.exceptions import QueryBudgetExhausted
from repro.server.limits import DailyRateLimit, QueryBudget, SimulatedClock


class TestQueryBudget:
    def test_admits_up_to_max(self):
        budget = QueryBudget(3)
        for _ in range(3):
            budget.admit()
        assert budget.remaining == 0
        assert budget.used == 3

    def test_exhaustion(self):
        budget = QueryBudget(1)
        budget.admit()
        with pytest.raises(QueryBudgetExhausted) as info:
            budget.admit()
        assert info.value.issued == 1

    def test_zero_budget(self):
        with pytest.raises(QueryBudgetExhausted):
            QueryBudget(0).admit()

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            QueryBudget(-1)

    def test_refill(self):
        budget = QueryBudget(1)
        budget.admit()
        budget.refill(2)
        budget.admit()
        assert budget.remaining == 1
        with pytest.raises(ValueError):
            budget.refill(-1)


class TestSimulatedClock:
    def test_advances(self):
        clock = SimulatedClock()
        assert clock.day == 0
        assert clock.sleep_until_next_day() == 1
        assert clock.day == 1


class TestDailyRateLimit:
    def test_daily_quota(self):
        clock = SimulatedClock()
        limit = DailyRateLimit(2, clock)
        limit.admit()
        limit.admit()
        assert limit.remaining_today == 0
        with pytest.raises(QueryBudgetExhausted):
            limit.admit()

    def test_resets_on_new_day(self):
        clock = SimulatedClock()
        limit = DailyRateLimit(1, clock)
        limit.admit()
        with pytest.raises(QueryBudgetExhausted):
            limit.admit()
        clock.sleep_until_next_day()
        limit.admit()  # fresh quota
        assert limit.used_today == 1

    def test_validates_per_day(self):
        with pytest.raises(ValueError):
            DailyRateLimit(0, SimulatedClock())
