"""Tests for query statistics accounting."""

from repro.server.response import QueryResponse
from repro.server.stats import QueryStats, StatsDelta


def resolved(n=2):
    return QueryResponse(tuple((i,) for i in range(n)), False)


def overflowed(k=3):
    return QueryResponse(tuple((i,) for i in range(k)), True)


class TestQueryStats:
    def test_record(self):
        stats = QueryStats()
        stats.record(resolved(2))
        stats.record(overflowed(3))
        assert stats.queries == 2
        assert stats.resolved == 1
        assert stats.overflowed == 1
        assert stats.tuples_returned == 5

    def test_phases(self):
        stats = QueryStats()
        stats.begin_phase("prep")
        stats.record(resolved())
        stats.record(resolved())
        stats.end_phase()
        stats.record(resolved())
        assert stats.phase_costs == {"prep": 2}

    def test_phase_registered_even_if_empty(self):
        stats = QueryStats()
        stats.begin_phase("idle")
        stats.end_phase()
        assert stats.phase_costs == {"idle": 0}

    def test_snapshot_is_independent(self):
        stats = QueryStats()
        stats.record(resolved())
        snap = stats.snapshot()
        stats.record(resolved())
        assert snap.queries == 1
        assert stats.queries == 2

    def test_str(self):
        stats = QueryStats()
        stats.record(resolved())
        text = str(stats)
        assert "1 queries" in text
        assert "1 resolved" in text


class TestStatsDelta:
    """Deferred recording merges to the exact per-query counters."""

    def test_flush_equals_direct_recording(self):
        direct = QueryStats()
        direct.begin_phase("prep")
        direct.record(resolved(2))
        direct.record(overflowed(3))
        direct.end_phase()

        deferred = QueryStats()
        deferred.begin_phase("prep")
        delta = StatsDelta()
        delta.record_counts(False, 2, deferred.current_phase)
        delta.record_counts(True, 3, deferred.current_phase)
        delta.flush_into(deferred)
        deferred.end_phase()

        assert deferred.state() == direct.state()

    def test_empty_delta_flushes_nothing(self):
        stats = QueryStats()
        before = stats.state()
        StatsDelta().flush_into(stats)
        assert stats.state() == before

    def test_phaseless_records_have_no_phase_costs(self):
        delta = StatsDelta()
        delta.record_counts(False, 1, None)
        assert delta.state()["phase_costs"] == {}
        stats = QueryStats()
        delta.flush_into(stats)
        assert stats.queries == 1
        assert stats.phase_costs == {}


class TestQueryResponse:
    def test_len_and_str(self):
        resp = overflowed(3)
        assert len(resp) == 3
        assert "overflow" in str(resp)
        assert not resp.resolved
        assert "resolved" in str(resolved())
