"""The public API surface: imports, exceptions, version."""

import pytest

import repro


class TestExports:
    def test_all_names_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_quickstart_docstring_is_runnable_shape(self):
        """The README/docstring example's names all exist."""
        from repro import Hybrid, TopKServer, assert_complete  # noqa: F401
        from repro.datasets import yahoo_autos  # noqa: F401


class TestDocstrings:
    """Every exported crawl-API name carries a usage-level docstring."""

    def test_crawl_exports_are_documented(self):
        import repro.crawl as crawl

        undocumented = []
        for name in crawl.__all__:
            obj = getattr(crawl, name)
            doc = getattr(obj, "__doc__", None)
            if callable(obj) or isinstance(obj, type):
                if not doc or not doc.strip():
                    undocumented.append(name)
        assert not undocumented, (
            "exported names without docstrings: " f"{undocumented}"
        )

    def test_named_apis_carry_usage_examples(self):
        """The five load-bearing entry points show example usage."""
        from repro.crawl import (
            CrawlExecutor,
            PartitionPlan,
            WorkStealingScheduler,
            crawl_partitioned,
            crawl_partitioned_parallel,
        )

        for obj in (
            crawl_partitioned,
            crawl_partitioned_parallel,
            PartitionPlan,
            CrawlExecutor,
            WorkStealingScheduler,
        ):
            doc = obj.__doc__ or ""
            assert (
                ">>>" in doc or "::" in doc or "Examples" in doc
            ), f"{obj.__name__} lacks a usage example in its docstring"

    def test_runtime_api_carries_usage_examples(self):
        """The runtime core's public surface shows example usage too."""
        from repro.crawl import (
            AggregatorFeed,
            GridSink,
            LocalUnitRunner,
            ShardPolicy,
            UnitRunner,
            drive_futures,
            drive_session,
            drive_stealing,
        )
        from repro.server import LimitLease

        for obj in (
            AggregatorFeed,
            UnitRunner,
            LocalUnitRunner,
            GridSink,
            ShardPolicy,
            drive_session,
            drive_stealing,
            drive_futures,
            LimitLease,
        ):
            doc = obj.__doc__ or ""
            assert (
                ">>>" in doc or "::" in doc or "Examples" in doc
            ), f"{obj.__name__} lacks a usage example in its docstring"

    def test_spec_and_service_carry_usage_examples(self):
        """The service-era entry points show example usage as well."""
        from repro.crawl import (
            CrawlSpec,
            TenantLimitRegistry,
            run_region,
            spec_from_args,
        )
        from repro.service import CrawlService, JobManager, ResultStore

        for obj in (
            CrawlSpec,
            spec_from_args,
            run_region,
            TenantLimitRegistry,
            CrawlService,
            JobManager,
            ResultStore,
        ):
            doc = obj.__doc__ or ""
            assert (
                ">>>" in doc or "::" in doc or "Examples" in doc
            ), f"{obj.__name__} lacks a usage example in its docstring"

    def test_service_exports_are_documented(self):
        import repro.service as service

        for name in service.__all__:
            obj = getattr(service, name)
            doc = getattr(obj, "__doc__", None)
            assert doc and doc.strip(), f"service.{name} lacks a docstring"

    def test_hot_path_surface_carries_usage_examples(self):
        """The profiling seam and batch/compile APIs show example usage."""
        from repro.crawl import profiling
        from repro.query import compile_matcher, compile_predicate
        from repro.server.client import CachingClient
        from repro.server.engines import BatchTopK, QueryEngine
        from repro.server.server import TopKServer

        for obj in (
            profiling.Profiler,
            profiling.profile,
            compile_predicate,
            compile_matcher,
            BatchTopK,
            QueryEngine.top_batch,
            TopKServer.run_batch,
            CachingClient.run_batch,
        ):
            doc = obj.__doc__ or ""
            assert (
                ">>>" in doc or "::" in doc or "Examples" in doc
            ), f"{obj.__qualname__} lacks a usage example in its docstring"
        assert profiling.__doc__ and ">>>" in profiling.__doc__


class TestExceptionHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        from repro import (
            AlgorithmInvariantError,
            InfeasibleCrawlError,
            QueryBudgetExhausted,
            ReproError,
            SchemaError,
            UnboundedDomainError,
        )

        for exc in (
            SchemaError,
            UnboundedDomainError,
            InfeasibleCrawlError,
            QueryBudgetExhausted,
            AlgorithmInvariantError,
        ):
            assert issubclass(exc, ReproError)

    def test_schema_error_is_value_error(self):
        from repro import SchemaError

        assert issubclass(SchemaError, ValueError)

    def test_unbounded_is_schema_error(self):
        from repro import SchemaError, UnboundedDomainError

        assert issubclass(UnboundedDomainError, SchemaError)

    def test_infeasible_carries_point(self):
        from repro import InfeasibleCrawlError

        exc = InfeasibleCrawlError("boom", point=(1, 2))
        assert exc.point == (1, 2)
        assert InfeasibleCrawlError("x").point is None

    def test_budget_carries_issued(self):
        from repro import QueryBudgetExhausted

        assert QueryBudgetExhausted("x", issued=7).issued == 7

    def test_one_catch_all(self):
        from repro import InfeasibleCrawlError, ReproError

        with pytest.raises(ReproError):
            raise InfeasibleCrawlError("caught by the base class")


class TestAlgorithmNames:
    def test_names_are_the_papers(self):
        from repro import (
            BinaryShrink,
            DepthFirstSearch,
            Hybrid,
            LazySliceCover,
            RankShrink,
            SliceCover,
        )

        assert BinaryShrink.name == "binary-shrink"
        assert RankShrink.name == "rank-shrink"
        assert DepthFirstSearch.name == "DFS"
        assert SliceCover.name == "slice-cover"
        assert LazySliceCover.name == "lazy-slice-cover"
        assert Hybrid.name == "hybrid"
