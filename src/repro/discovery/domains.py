"""Categorical domain discovery (extension; the paper defers to [15]).

The crawling algorithms assume the categorical domains are known -- for
many sites they are printed in the search form's pull-down menus, and
for the rest the paper points at the dedicated domain-discovery work of
Jin, Zhang and Das (SIGMOD 2011, reference [15]).  So that this library
runs end-to-end even when domains are *not* supplied, this module ships
a simple sampling-based harvester in the spirit of that line of work.

The idea: tuples returned by any query reveal attribute values.  Start
from the all-wildcard query, then repeatedly *drill into* known values
(issuing slice-like probes) to surface tuples from other regions, until
a full sweep discovers nothing new.  The result is a lower bound of each
domain -- exact for every value that occurs in the data at least once,
which is all a crawler can ever observe and all the crawl needs (a value
occurring in no tuple contributes nothing to the crawl's result, and
only wasted slice queries to its cost).

This is a heuristic: it never proves completeness (the top-k interface
has no negation), and :class:`DiscoveryReport.saturated` only says a
whole sweep added nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dataspace.space import DataSpace
from repro.exceptions import QueryBudgetExhausted, SchemaError
from repro.query.query import Query
from repro.server.client import CachingClient
from repro.server.server import TopKServer

__all__ = ["DiscoveryReport", "discover_domains"]


@dataclass
class DiscoveryReport:
    """Outcome of a domain-discovery session."""

    #: Discovered values per categorical attribute index.
    values: dict[int, set[int]]
    #: Queries spent on discovery.
    cost: int
    #: Whether the final sweep discovered nothing new (fixpoint reached).
    saturated: bool
    #: Per-attribute discovered counts, for quick reporting.
    counts: dict[int, int] = field(init=False)

    def __post_init__(self) -> None:
        self.counts = {i: len(vals) for i, vals in self.values.items()}

    def coverage(self, space: DataSpace) -> dict[int, float]:
        """Discovered fraction of each true domain (needs the schema)."""
        out = {}
        for i, vals in self.values.items():
            size = space[i].domain_size
            assert size is not None
            out[i] = len(vals) / size
        return out


def discover_domains(
    source: TopKServer | CachingClient,
    *,
    max_queries: int = 1000,
    max_sweeps: int = 10,
) -> DiscoveryReport:
    """Harvest categorical domain values by querying the interface.

    Parameters
    ----------
    source:
        The hidden database (or a shared caching client).
    max_queries:
        Probe budget; discovery stops cleanly when it is spent.
    max_sweeps:
        Maximum number of drill-down sweeps over the discovered values.

    Raises
    ------
    SchemaError
        If the space has no categorical attribute to discover.
    """
    client = (
        source if isinstance(source, CachingClient) else CachingClient(source)
    )
    space = client.space
    cat_indices = [i for i in range(space.cat)]
    if not cat_indices:
        raise SchemaError("the data space has no categorical attributes")

    discovered: dict[int, set[int]] = {i: set() for i in cat_indices}
    start_cost = client.cost
    saturated = False

    def harvest(rows) -> int:
        added = 0
        for row in rows:
            for i in cat_indices:
                if row[i] not in discovered[i]:
                    discovered[i].add(row[i])
                    added += 1
        return added

    def spend(query: Query):
        if client.cost - start_cost >= max_queries:
            raise QueryBudgetExhausted(
                "domain-discovery probe budget spent",
                issued=client.cost - start_cost,
            )
        return client.run(query)

    root = Query.full(space)
    try:
        harvest(spend(root).rows)
        for _ in range(max_sweeps):
            added_this_sweep = 0
            # Drill into every known value: tuples co-occurring with it
            # reveal values of the other attributes.
            for i in cat_indices:
                for value in sorted(discovered[i]):
                    probe = root.with_value(i, value)
                    added_this_sweep += harvest(spend(probe).rows)
            if added_this_sweep == 0:
                saturated = True
                break
    except QueryBudgetExhausted:
        saturated = False

    return DiscoveryReport(
        values=discovered,
        cost=client.cost - start_cost,
        saturated=saturated,
    )
