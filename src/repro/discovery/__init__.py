"""Extensions beyond the paper's core: categorical domain discovery."""

from repro.discovery.domains import DiscoveryReport, discover_domains

__all__ = ["DiscoveryReport", "discover_domains"]
