"""repro -- Optimal Algorithms for Crawling a Hidden Database in the Web.

A faithful, self-contained reproduction of Sheng, Zhang, Tao and Jin,
PVLDB 5(11), 2012.  The package provides:

* the *hidden database* substrate: data spaces, bag datasets, the
  deterministic top-``k`` query server, cost accounting and query limits
  (:mod:`repro.dataspace`, :mod:`repro.query`, :mod:`repro.server`);
* the paper's algorithms, baselines included: ``binary-shrink``,
  ``rank-shrink``, ``DFS``, ``slice-cover``, ``lazy-slice-cover`` and
  ``hybrid`` (:mod:`repro.crawl`);
* the theory layer: Theorem 1 cost bounds, recursion-tree analysis and
  lower-bound machinery (:mod:`repro.theory`);
* dataset generators matching the paper's evaluation data and hard
  instances (:mod:`repro.datasets`);
* the experiment harness regenerating every figure of Section 6
  (:mod:`repro.experiments`; CLI: ``python -m repro.experiments``).

Quickstart::

    from repro import Hybrid, TopKServer, assert_complete
    from repro.datasets import yahoo_autos

    dataset = yahoo_autos()
    server = TopKServer(dataset, k=1024)
    result = Hybrid(server).crawl()
    assert_complete(result, dataset)
    print(result.cost, "queries for", result.tuples_extracted, "tuples")
"""

from repro.crawl import (
    BinaryShrink,
    CostEstimator,
    Crawler,
    CrawlExecutor,
    CrawlResult,
    CrawlSpec,
    DependencyFilteringClient,
    DepthFirstSearch,
    Hybrid,
    LazySliceCover,
    PairwiseDependencyOracle,
    PartitionedResult,
    PartitionPlan,
    ProgressAggregator,
    RankShrink,
    RegionShardPlan,
    SessionState,
    ShardPolicy,
    SliceCover,
    SubspaceView,
    SubtreeScheduler,
    SubtreeShard,
    WorkStealingScheduler,
    assert_complete,
    crawl_partitioned,
    crawl_partitioned_parallel,
    crawl_shard,
    make_executor,
    merge_region_shards,
    partition_space,
    presplit_region,
    verify_complete,
)
from repro.dataspace import Attribute, DataSpace, Dataset, SpaceKind
from repro.exceptions import (
    AlgorithmInvariantError,
    InfeasibleCrawlError,
    QueryBudgetExhausted,
    ReproError,
    SchemaError,
    UnboundedDomainError,
)
from repro.query import Query, full_query, point_query, slice_query
from repro.server import (
    AsyncLatencySource,
    AwaitableClient,
    CachingClient,
    DailyRateLimit,
    LatencySource,
    LimitLease,
    PatientClient,
    QueryBudget,
    QueryResponse,
    SimulatedClock,
    TopKServer,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # crawlers
    "BinaryShrink",
    "Crawler",
    "CrawlResult",
    "CostEstimator",
    "CrawlExecutor",
    "CrawlSpec",
    "DependencyFilteringClient",
    "DepthFirstSearch",
    "Hybrid",
    "LazySliceCover",
    "PairwiseDependencyOracle",
    "PartitionedResult",
    "PartitionPlan",
    "ProgressAggregator",
    "RankShrink",
    "RegionShardPlan",
    "SessionState",
    "SliceCover",
    "ShardPolicy",
    "SubspaceView",
    "SubtreeScheduler",
    "SubtreeShard",
    "WorkStealingScheduler",
    "assert_complete",
    "crawl_partitioned",
    "crawl_partitioned_parallel",
    "crawl_shard",
    "make_executor",
    "merge_region_shards",
    "partition_space",
    "presplit_region",
    "verify_complete",
    # data model
    "Attribute",
    "DataSpace",
    "Dataset",
    "SpaceKind",
    # queries
    "Query",
    "full_query",
    "point_query",
    "slice_query",
    # server
    "AsyncLatencySource",
    "AwaitableClient",
    "CachingClient",
    "PatientClient",
    "DailyRateLimit",
    "LatencySource",
    "LimitLease",
    "QueryBudget",
    "QueryResponse",
    "SimulatedClock",
    "TopKServer",
    # errors
    "AlgorithmInvariantError",
    "InfeasibleCrawlError",
    "QueryBudgetExhausted",
    "ReproError",
    "SchemaError",
    "UnboundedDomainError",
]
