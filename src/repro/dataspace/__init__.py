"""Data-space substrate: attributes, schemas and datasets.

This package models Section 1.1 of the paper: a data space is the
Cartesian product of per-attribute domains, numeric attributes are
totally ordered integer domains, categorical attributes are unordered
domains ``1 .. U``, and a hidden database is a *bag* of tuples (points
of the space, possibly duplicated).
"""

from repro.dataspace.attribute import (
    Attribute,
    AttributeKind,
    categorical,
    numeric,
)
from repro.dataspace.dataset import Dataset
from repro.dataspace.space import DataSpace, SpaceKind

__all__ = [
    "Attribute",
    "AttributeKind",
    "categorical",
    "numeric",
    "DataSpace",
    "SpaceKind",
    "Dataset",
]
