"""The data space ``D = dom(A1) x ... x dom(Ad)`` (paper Section 1.1).

A :class:`DataSpace` is an ordered schema of :class:`Attribute` objects.
Following the paper's convention for *mixed* spaces, all categorical
attributes must precede all numeric ones; the number of categorical
attributes is ``cat`` and the space's :class:`SpaceKind` is derived from
it (``cat == 0`` numeric, ``cat == d`` categorical, otherwise mixed).
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Iterator, Sequence

from repro.dataspace.attribute import Attribute
from repro.dataspace.attribute import categorical as _cat
from repro.dataspace.attribute import numeric as _num
from repro.exceptions import SchemaError

__all__ = ["SpaceKind", "DataSpace"]


class SpaceKind(enum.Enum):
    """Classification of a data space used throughout the paper."""

    NUMERIC = "numeric"
    CATEGORICAL = "categorical"
    MIXED = "mixed"


class DataSpace:
    """An immutable schema: the Cartesian product of attribute domains.

    Examples
    --------
    >>> space = DataSpace.mixed([("make", 85), ("body", 7)],
    ...                         ["price", "mileage"])
    >>> space.dimensionality, space.cat, space.kind
    (4, 2, <SpaceKind.MIXED: 'mixed'>)
    """

    __slots__ = ("_attributes", "_cat")

    def __init__(self, attributes: Iterable[Attribute]):
        attrs = tuple(attributes)
        if not attrs:
            raise SchemaError("a data space needs at least one attribute")
        names = [a.name for a in attrs]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate attribute names in {names}")
        cat = 0
        for a in attrs:
            if a.is_categorical:
                if cat != attrs.index(a):
                    raise SchemaError(
                        "categorical attributes must precede numeric ones "
                        "(the paper's Section 1.1 convention); "
                        f"offending attribute: {a.name!r}"
                    )
                cat += 1
        self._attributes = attrs
        self._cat = cat

    # ------------------------------------------------------------------
    # Alternative constructors
    # ------------------------------------------------------------------
    @classmethod
    def numeric(
        cls,
        d: int,
        bounds: Sequence[tuple[int, int]] | None = None,
        names: Sequence[str] | None = None,
    ) -> "DataSpace":
        """A purely numeric ``d``-dimensional space.

        ``bounds`` optionally attaches ``(lo, hi)`` metadata per attribute.
        """
        if d < 1:
            raise SchemaError("dimensionality must be at least 1")
        if names is None:
            names = [f"A{i + 1}" for i in range(d)]
        if len(names) != d:
            raise SchemaError(f"expected {d} names, got {len(names)}")
        attrs = []
        for i in range(d):
            lo, hi = (None, None) if bounds is None else bounds[i]
            attrs.append(_num(names[i], lo, hi))
        return cls(attrs)

    @classmethod
    def categorical(
        cls, domain_sizes: Sequence[int], names: Sequence[str] | None = None
    ) -> "DataSpace":
        """A purely categorical space with the given domain sizes."""
        if names is None:
            names = [f"A{i + 1}" for i in range(len(domain_sizes))]
        if len(names) != len(domain_sizes):
            raise SchemaError("names and domain_sizes lengths differ")
        return cls(_cat(n, u) for n, u in zip(names, domain_sizes))

    @classmethod
    def mixed(
        cls,
        categorical_attrs: Sequence[tuple[str, int]],
        numeric_names: Sequence[str],
        numeric_bounds: Sequence[tuple[int, int]] | None = None,
    ) -> "DataSpace":
        """A mixed space: ``categorical_attrs`` first, then numeric ones."""
        attrs = [_cat(name, size) for name, size in categorical_attrs]
        for i, name in enumerate(numeric_names):
            lo, hi = (
                (None, None) if numeric_bounds is None else numeric_bounds[i]
            )
            attrs.append(_num(name, lo, hi))
        return cls(attrs)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def attributes(self) -> tuple[Attribute, ...]:
        """The schema, in attribute order ``A1 .. Ad``."""
        return self._attributes

    @property
    def dimensionality(self) -> int:
        """``d``, the number of attributes."""
        return len(self._attributes)

    @property
    def cat(self) -> int:
        """The number of categorical attributes (they come first)."""
        return self._cat

    @property
    def num(self) -> int:
        """The number of numeric attributes (they come last)."""
        return len(self._attributes) - self._cat

    @property
    def kind(self) -> SpaceKind:
        """Numeric, categorical, or mixed, per the paper's taxonomy."""
        if self._cat == 0:
            return SpaceKind.NUMERIC
        if self._cat == len(self._attributes):
            return SpaceKind.CATEGORICAL
        return SpaceKind.MIXED

    @property
    def categorical_domain_sizes(self) -> tuple[int, ...]:
        """``(U1, .., Ucat)`` for the categorical prefix."""
        sizes = []
        for a in self._attributes[: self._cat]:
            assert a.domain_size is not None
            sizes.append(a.domain_size)
        return tuple(sizes)

    @property
    def names(self) -> tuple[str, ...]:
        """Attribute names in order."""
        return tuple(a.name for a in self._attributes)

    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __getitem__(self, index: int) -> Attribute:
        return self._attributes[index]

    def index_of(self, name: str) -> int:
        """Position of the attribute called ``name``.

        Raises
        ------
        SchemaError
            If no attribute has that name.
        """
        for i, a in enumerate(self._attributes):
            if a.name == name:
                return i
        raise SchemaError(f"no attribute named {name!r} in {self.names}")

    def validate_point(self, point: Sequence[int]) -> tuple[int, ...]:
        """Check ``point`` lies in the space and return it as a tuple."""
        if len(point) != self.dimensionality:
            raise SchemaError(
                f"point has {len(point)} coordinates, space has "
                f"{self.dimensionality}"
            )
        for value, attr in zip(point, self._attributes):
            if not attr.contains(int(value)):
                raise SchemaError(
                    f"value {value} outside domain of attribute {attr.name!r}"
                )
        return tuple(int(v) for v in point)

    def project(self, indices: Sequence[int]) -> "DataSpace":
        """A sub-space keeping only the attributes at ``indices``.

        The relative attribute order is preserved, so a valid
        (categorical-first) space projects to a valid space.  Used by the
        Figure 10b / 11b experiments, which vary dimensionality by taking
        subsets of a dataset's attributes.
        """
        if not indices:
            raise SchemaError("projection needs at least one attribute")
        ordered = sorted(set(indices))
        if ordered != list(indices):
            raise SchemaError(
                "projection indices must be strictly increasing to preserve "
                f"the attribute order, got {list(indices)}"
            )
        return DataSpace(self._attributes[i] for i in ordered)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DataSpace):
            return NotImplemented
        return self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash(self._attributes)

    def __repr__(self) -> str:
        inner = ", ".join(str(a) for a in self._attributes)
        return f"DataSpace({inner})"
