"""Dataset container: the hidden database's content as a bag of tuples.

A :class:`Dataset` couples a :class:`~repro.dataspace.space.DataSpace`
with an ``(n, d)`` integer matrix of tuples.  Bag (multiset) semantics
are first-class because the paper allows duplicate tuples -- indeed the
solvability condition of Problem 1 is about the maximum number of
duplicates at a single point.

The container is immutable; transformation methods (projection,
sampling) return new datasets.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Sequence

import numpy as np

from repro.dataspace.space import DataSpace
from repro.exceptions import SchemaError

__all__ = ["Dataset"]

Row = tuple[int, ...]


class Dataset:
    """An immutable bag of ``n`` tuples in a data space.

    Parameters
    ----------
    space:
        The schema the tuples live in.
    rows:
        An ``(n, d)`` array-like of integers.  Categorical coordinates
        are validated against their domains; numeric coordinates may be
        any integer.
    name:
        Optional label used in reports (for example ``"NSF"``).
    """

    __slots__ = ("_space", "_rows", "_name")

    def __init__(
        self,
        space: DataSpace,
        rows: Iterable[Sequence[int]] | np.ndarray,
        *,
        name: str = "",
        validate: bool = True,
    ):
        matrix = np.asarray(rows, dtype=np.int64)
        if matrix.size == 0:
            matrix = matrix.reshape(0, space.dimensionality)
        if matrix.ndim != 2 or matrix.shape[1] != space.dimensionality:
            raise SchemaError(
                f"rows must form an (n, {space.dimensionality}) matrix, got "
                f"shape {matrix.shape}"
            )
        if validate and matrix.shape[0]:
            for j in range(space.cat):
                size = space[j].domain_size
                assert size is not None
                column = matrix[:, j]
                if column.min() < 1 or column.max() > size:
                    raise SchemaError(
                        f"column {space[j].name!r} has values outside its "
                        f"categorical domain [1, {size}]"
                    )
        matrix.setflags(write=False)
        self._space = space
        self._rows = matrix
        self._name = name

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def space(self) -> DataSpace:
        """The schema of the dataset."""
        return self._space

    @property
    def rows(self) -> np.ndarray:
        """Read-only ``(n, d)`` int64 view of the tuples."""
        return self._rows

    @property
    def n(self) -> int:
        """Number of tuples (with multiplicity)."""
        return int(self._rows.shape[0])

    @property
    def dimensionality(self) -> int:
        """Number of attributes ``d``."""
        return self._space.dimensionality

    @property
    def name(self) -> str:
        """Report label of the dataset."""
        return self._name

    def __len__(self) -> int:
        return self.n

    def row(self, i: int) -> Row:
        """The ``i``-th tuple as a plain Python tuple."""
        return tuple(int(v) for v in self._rows[i])

    def iter_rows(self) -> Iterable[Row]:
        """Iterate over all tuples as Python tuples (with multiplicity)."""
        for i in range(self.n):
            yield self.row(i)

    # ------------------------------------------------------------------
    # Bag semantics
    # ------------------------------------------------------------------
    def multiset(self) -> Counter[Row]:
        """The bag as a :class:`collections.Counter` keyed by tuple."""
        counter: Counter[Row] = Counter()
        for row in self.iter_rows():
            counter[row] += 1
        return counter

    def max_multiplicity(self) -> int:
        """The largest number of identical tuples at any point.

        Problem 1 is solvable at retrieval limit ``k`` iff this value is
        at most ``k`` (paper Section 1.1).
        """
        if self.n == 0:
            return 0
        _, counts = np.unique(self._rows, axis=0, return_counts=True)
        return int(counts.max())

    def min_feasible_k(self) -> int:
        """Smallest retrieval limit at which a complete crawl exists."""
        return max(1, self.max_multiplicity())

    def distinct_counts(self) -> tuple[int, ...]:
        """Per-attribute number of distinct values present in the data.

        The paper's Figure 10b / 11b experiments rank attributes by this
        statistic when building lower-dimensional variants of a dataset.
        """
        return tuple(
            int(np.unique(self._rows[:, j]).size) if self.n else 0
            for j in range(self.dimensionality)
        )

    # ------------------------------------------------------------------
    # Derived datasets
    # ------------------------------------------------------------------
    def project(self, indices: Sequence[int]) -> "Dataset":
        """Keep only the attributes at ``indices`` (strictly increasing)."""
        sub_space = self._space.project(indices)
        matrix = self._rows[:, list(indices)]
        return Dataset(sub_space, matrix, name=self._name, validate=False)

    def top_distinct_projection(self, d: int) -> "Dataset":
        """The ``d``-attribute dataset used by Figures 10b and 11b.

        Selects the ``d`` attributes with the most distinct values (ties
        broken by original position) and keeps them in their original
        relative order, as the paper describes for Adult-numeric ("the
        attribute with the most distinct values is FNALWGT, ...").
        """
        if not 1 <= d <= self.dimensionality:
            raise SchemaError(
                f"d must be in [1, {self.dimensionality}], got {d}"
            )
        counts = self.distinct_counts()
        ranked = sorted(
            range(self.dimensionality), key=lambda j: (-counts[j], j)
        )
        chosen = sorted(ranked[:d])
        return self.project(chosen)

    def sample_fraction(self, fraction: float, *, seed: int = 0) -> "Dataset":
        """Independent Bernoulli sample of the tuples (Figures 10c / 11c).

        Each tuple is kept with probability ``fraction``, matching the
        paper: "a 20% dataset corresponds to a random sample set ... by
        independently sampling each of its tuples with a 20% probability".
        """
        if not 0.0 <= fraction <= 1.0:
            raise SchemaError(f"fraction must be in [0, 1], got {fraction}")
        if fraction == 1.0:
            return self
        rng = np.random.default_rng(seed)
        keep = rng.random(self.n) < fraction
        label = f"{self._name}@{fraction:.0%}" if self._name else ""
        return Dataset(
            self._space, self._rows[keep], name=label, validate=False
        )

    def with_bounds_from_data(self) -> "Dataset":
        """Attach observed min/max bounds to every numeric attribute.

        ``binary-shrink`` needs finite extents; experiment harnesses call
        this once on generated data, mirroring the fact that a real
        crawler would read plausible bounds off the search form.
        """
        attrs = []
        for j, attr in enumerate(self._space):
            if attr.is_numeric and self.n:
                column = self._rows[:, j]
                attrs.append(
                    attr.with_bounds(int(column.min()), int(column.max()))
                )
            else:
                attrs.append(attr)
        return Dataset(
            DataSpace(attrs), self._rows, name=self._name, validate=False
        )

    def concat(self, other: "Dataset") -> "Dataset":
        """Bag union of two datasets over the same space."""
        if other.space != self._space:
            raise SchemaError("cannot concatenate datasets over different spaces")
        matrix = np.vstack([self._rows, other._rows])
        return Dataset(self._space, matrix, name=self._name, validate=False)

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        """Bag equality: same space and same multiset of tuples."""
        if not isinstance(other, Dataset):
            return NotImplemented
        if self._space != other._space or self.n != other.n:
            return False
        if self.n == 0:
            return True
        mine = self._rows[np.lexsort(self._rows.T[::-1])]
        theirs = other._rows[np.lexsort(other._rows.T[::-1])]
        return bool(np.array_equal(mine, theirs))

    def __hash__(self) -> int:  # pragma: no cover - datasets are not dict keys
        return hash((self._space, self.n))

    def __repr__(self) -> str:
        label = f" {self._name!r}" if self._name else ""
        return (
            f"Dataset({label} n={self.n}, d={self.dimensionality}, "
            f"kind={self._space.kind.value})"
        )
