"""Attribute model: the columns of a hidden database's data space.

The paper (Section 1.1) distinguishes two kinds of attribute:

* **numeric** -- a totally ordered integer domain; the query interface
  supports range predicates ``Ai in [x, y]``.  The domain is conceptually
  the set of all integers, so bounds are optional metadata (generators
  record the min/max they produced; ``binary-shrink`` needs them).
* **categorical** -- an unordered domain of ``U`` distinct values, which
  we represent as the integers ``1 .. U`` purely for convenience; the
  interface supports equality predicates ``Ai = x`` and the wildcard
  ``Ai = *``.

An :class:`Attribute` is an immutable value object; a
:class:`~repro.dataspace.space.DataSpace` is a tuple of them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.exceptions import SchemaError

__all__ = ["AttributeKind", "Attribute", "numeric", "categorical"]


class AttributeKind(enum.Enum):
    """Whether an attribute's domain is ordered (numeric) or not."""

    NUMERIC = "numeric"
    CATEGORICAL = "categorical"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AttributeKind.{self.name}"


@dataclass(frozen=True, slots=True)
class Attribute:
    """One dimension of the data space.

    Parameters
    ----------
    name:
        Human-readable attribute name (for reports and error messages).
    kind:
        :attr:`AttributeKind.NUMERIC` or :attr:`AttributeKind.CATEGORICAL`.
    domain_size:
        For categorical attributes, the number ``U`` of distinct domain
        values; values are the integers ``1 .. U``.  Must be ``None`` for
        numeric attributes.
    lo, hi:
        Optional inclusive bounds for numeric attributes.  They are
        metadata, not constraints on queries: the conceptual numeric
        domain remains all integers, and ``rank-shrink`` never consults
        bounds.  ``binary-shrink`` refuses to run without them.
    """

    name: str
    kind: AttributeKind
    domain_size: int | None = None
    lo: int | None = None
    hi: int | None = None

    def __post_init__(self) -> None:
        if self.kind is AttributeKind.CATEGORICAL:
            if self.domain_size is None or self.domain_size < 1:
                raise SchemaError(
                    f"categorical attribute {self.name!r} needs a positive "
                    f"domain_size, got {self.domain_size!r}"
                )
            if self.lo is not None or self.hi is not None:
                raise SchemaError(
                    f"categorical attribute {self.name!r} must not carry "
                    "numeric bounds"
                )
        else:
            if self.domain_size is not None:
                raise SchemaError(
                    f"numeric attribute {self.name!r} must not carry a "
                    "domain_size (its domain is all integers)"
                )
            if (
                self.lo is not None
                and self.hi is not None
                and self.lo > self.hi
            ):
                raise SchemaError(
                    f"numeric attribute {self.name!r} has lo={self.lo} > "
                    f"hi={self.hi}"
                )

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def is_numeric(self) -> bool:
        """``True`` iff the attribute has an ordered integer domain."""
        return self.kind is AttributeKind.NUMERIC

    @property
    def is_categorical(self) -> bool:
        """``True`` iff the attribute has an unordered finite domain."""
        return self.kind is AttributeKind.CATEGORICAL

    @property
    def is_bounded(self) -> bool:
        """Whether finite bounds are known for every domain value.

        Categorical domains are always bounded (``1 .. U``); numeric ones
        only when both ``lo`` and ``hi`` were recorded.
        """
        if self.is_categorical:
            return True
        return self.lo is not None and self.hi is not None

    def contains(self, value: int) -> bool:
        """Whether ``value`` is a legal domain value of this attribute.

        Numeric attributes accept every integer regardless of the
        advisory bounds; categorical ones accept exactly ``1 .. U``.
        """
        if self.is_categorical:
            assert self.domain_size is not None
            return 1 <= value <= self.domain_size
        return True

    def domain_values(self) -> range:
        """The finite domain as a ``range`` (categorical or bounded numeric).

        Raises
        ------
        SchemaError
            If the attribute is numeric and unbounded.
        """
        if self.is_categorical:
            assert self.domain_size is not None
            return range(1, self.domain_size + 1)
        if self.lo is None or self.hi is None:
            raise SchemaError(
                f"numeric attribute {self.name!r} has no finite bounds"
            )
        return range(self.lo, self.hi + 1)

    def with_bounds(self, lo: int, hi: int) -> "Attribute":
        """Return a copy of a numeric attribute with bounds attached."""
        if self.is_categorical:
            raise SchemaError(
                f"cannot attach numeric bounds to categorical {self.name!r}"
            )
        return Attribute(self.name, self.kind, None, lo, hi)

    def __str__(self) -> str:
        if self.is_categorical:
            return f"{self.name}:cat[{self.domain_size}]"
        if self.is_bounded:
            return f"{self.name}:num[{self.lo},{self.hi}]"
        return f"{self.name}:num"


def numeric(
    name: str, lo: int | None = None, hi: int | None = None
) -> Attribute:
    """Convenience constructor for a numeric attribute."""
    return Attribute(name, AttributeKind.NUMERIC, None, lo, hi)


def categorical(name: str, domain_size: int) -> Attribute:
    """Convenience constructor for a categorical attribute with ``U`` values."""
    return Attribute(name, AttributeKind.CATEGORICAL, domain_size)
