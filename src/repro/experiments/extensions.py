"""Extension experiments: beyond the paper's Section 6 figures.

Three experiment definitions exercising the library's extension
modules, in the same :class:`~repro.experiments.runner.FigureResult`
format as the paper figures so the CLI, reporting and benchmark
plumbing apply unchanged:

=============  =======================================================
ext-adversary  rank-shrink cost under adversarial response policies
               (Theorem 1 is choice-independent; measure the spread)
ext-sampling   sampling error vs crawled fraction per query budget
               (the Section 1.4 positioning, quantified)
ext-partition  total and max-per-session cost vs session count
               (multi-identity crawling against per-IP quotas)
=============  =======================================================
"""

from __future__ import annotations

from repro.analytics.compare import compare_at_budgets
from repro.crawl.hybrid import Hybrid
from repro.crawl.partition import crawl_partitioned, partition_space
from repro.crawl.rank_shrink import RankShrink
from repro.crawl.verify import assert_complete
from repro.datasets.adult import adult_numeric
from repro.datasets.yahoo import yahoo_autos
from repro.experiments.runner import FigureResult, measure_crawl
from repro.server.server import TopKServer
from repro.theory.adversary import (
    AdversarialTopKServer,
    ModeClusterPolicy,
    RankByAttributePolicy,
)
from repro.theory.bounds import rank_shrink_upper_bound

__all__ = [
    "extension_adversarial",
    "extension_sampling",
    "extension_partition",
]


def _scaled(dataset, scale: float, seed: int):
    if scale >= 1.0:
        return dataset
    return dataset.sample_fraction(scale, seed=seed)


def extension_adversarial(
    *, scale: float = 1.0, k: int = 256, seed: int = 0
) -> FigureResult:
    """Rank-shrink under the server's freedom of response choice.

    One bar per response policy; the Lemma 2 envelope is attached as a
    note.  Every cost must sit under the same bound -- the proofs never
    assume anything about which ``k``-subset comes back.
    """
    figure = FigureResult(
        "ext-adversary",
        f"Rank-shrink vs adversarial response policies (Adult-numeric, k={k})",
        "response policy",
        "number of queries",
    )
    dataset = _scaled(adult_numeric(), scale, seed)
    d = dataset.space.dimensionality
    bound = rank_shrink_upper_bound(dataset.n, k, d)
    figure.note(f"n = {dataset.n}, scale = {scale:g}")
    figure.note(f"Lemma 2 envelope: 20*d*n/k = {bound} queries")
    series = figure.new_series("rank-shrink")
    servers = [
        ("neutral (priorities)", TopKServer(dataset, k, priority_seed=seed)),
        (
            "rank asc on A1",
            AdversarialTopKServer(dataset, k, RankByAttributePolicy(0)),
        ),
        (
            "rank desc on A1",
            AdversarialTopKServer(
                dataset, k, RankByAttributePolicy(0, descending=True)
            ),
        ),
        (
            "mode cluster on A1",
            AdversarialTopKServer(dataset, k, ModeClusterPolicy(0)),
        ),
    ]
    for label, server in servers:
        result = RankShrink(server, max_queries=bound).crawl()
        assert_complete(result, dataset)
        series.add(label, result.cost)
    return figure


def extension_sampling(
    *, scale: float = 1.0, k: int = 256, seed: int = 0
) -> FigureResult:
    """Sampling accuracy vs crawling coverage at equal query budgets."""
    figure = FigureResult(
        "ext-sampling",
        f"Sampling vs crawling per query budget (Yahoo, k={k})",
        "query budget",
        "relative error / crawled fraction",
    )
    dataset = _scaled(
        yahoo_autos(duplicates=0), scale, seed
    ).with_bounds_from_data()
    budgets = [25, 50, 100, 200, 400, 800]
    report = compare_at_budgets(dataset, k, budgets, seed=seed)
    figure.note(f"n = {dataset.n}, scale = {scale:g}")
    figure.note(
        f"full hybrid crawl finishes in {report.crawl_full_cost} queries"
    )
    size_err = figure.new_series("sampling size rel. error")
    sum_err = figure.new_series("sampling sum rel. error")
    crawled = figure.new_series("crawled fraction")
    for point in report.points:
        size_err.add(point.budget, round(point.sample_size_error, 4))
        sum_err.add(point.budget, round(point.sample_sum_error, 4))
        crawled.add(
            point.budget,
            round(point.crawl_fraction, 4),
            complete=point.crawl_complete,
        )
    return figure


def extension_partition(
    *, scale: float = 1.0, k: int = 256, seed: int = 0
) -> FigureResult:
    """Partitioned crawling: session count vs total and peak cost."""
    figure = FigureResult(
        "ext-partition",
        f"Partitioned crawling on Yahoo (k={k})",
        "sessions",
        "number of queries",
    )
    dataset = _scaled(yahoo_autos(duplicates=0), scale, seed)
    figure.note(f"n = {dataset.n}, scale = {scale:g}")
    total_series = figure.new_series("total queries")
    peak_series = figure.new_series("max per-session queries")
    for sessions in (1, 2, 4, 8):
        if sessions == 1:
            result = measure_crawl(dataset, k, Hybrid, priority_seed=seed)
            total, peak = result.cost, result.cost
        else:
            plan = partition_space(dataset.space, sessions)
            sources = [
                TopKServer(dataset, k, priority_seed=seed)
                for _ in range(sessions)
            ]
            merged = crawl_partitioned(sources, plan)
            assert merged.complete and merged.tuples_extracted == dataset.n
            total, peak = merged.cost, max(merged.session_costs())
        total_series.add(sessions, total)
        peak_series.add(sessions, peak)
    return figure
