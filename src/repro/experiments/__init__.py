"""Experiment harness: one definition per paper figure, plus reporting."""

from repro.experiments.figures import (
    DEFAULT_KS,
    FIGURES,
    ablation_ordering,
    ablation_split_threshold,
    figure_9,
    figure_10a,
    figure_10b,
    figure_10c,
    figure_11a,
    figure_11b,
    figure_11c,
    figure_12,
    figure_13,
    theorem_3_check,
    theorem_4_check,
)
from repro.experiments.reporting import format_figure, format_markdown
from repro.experiments.runner import (
    FigureResult,
    Series,
    SeriesPoint,
    measure_crawl,
    try_measure_crawl,
)

__all__ = [
    "DEFAULT_KS",
    "FIGURES",
    "ablation_ordering",
    "ablation_split_threshold",
    "figure_9",
    "figure_10a",
    "figure_10b",
    "figure_10c",
    "figure_11a",
    "figure_11b",
    "figure_11c",
    "figure_12",
    "figure_13",
    "theorem_3_check",
    "theorem_4_check",
    "format_figure",
    "format_markdown",
    "FigureResult",
    "Series",
    "SeriesPoint",
    "measure_crawl",
    "try_measure_crawl",
]
