"""Text rendering of reproduced figures.

The paper's figures are line charts; in a terminal we print the same
data as aligned tables -- one row per x-value, one column per series --
plus the figure's notes.  :func:`format_figure` gives a plain-text
table; :func:`format_markdown` emits the same content as a Markdown
table for EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.experiments.runner import FigureResult

__all__ = ["format_figure", "format_markdown", "figure_rows"]


def figure_rows(figure: FigureResult) -> tuple[list[str], list[list[str]]]:
    """Tabulate a figure: (header, rows) with string cells.

    Series may have different x supports (e.g. an infeasible point was
    skipped); missing cells render as ``-``.
    """
    xs: list = []
    for series in figure.series:
        for x in series.xs():
            if x not in xs:
                xs.append(x)
    if all(isinstance(x, (int, float)) for x in xs):
        xs.sort()
    header = [figure.xlabel] + [series.name for series in figure.series]
    lookup = [
        {point.x: point.y for point in series.points}
        for series in figure.series
    ]
    rows = []
    for x in xs:
        row = [str(x)]
        for table in lookup:
            value = table.get(x)
            row.append("-" if value is None else _format_value(value))
        rows.append(row)
    return header, rows


def _format_value(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.4f}"
    return str(int(value))


def format_figure(figure: FigureResult) -> str:
    """Aligned plain-text table (for the CLI and examples)."""
    header, rows = figure_rows(figure)
    widths = [
        max(len(header[i]), *(len(row[i]) for row in rows))
        if rows
        else len(header[i])
        for i in range(len(header))
    ]
    lines = [f"== {figure.figure_id}: {figure.title} =="]
    lines.append(
        "  ".join(header[i].rjust(widths[i]) for i in range(len(header)))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(row[i].rjust(widths[i]) for i in range(len(row)))
        )
    lines.append(f"(y-axis: {figure.ylabel})")
    for note in figure.notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def format_markdown(figure: FigureResult) -> str:
    """Markdown table (for EXPERIMENTS.md)."""
    header, rows = figure_rows(figure)
    lines = [
        f"**{figure.figure_id}** — {figure.title} (y: {figure.ylabel})",
        "",
    ]
    lines.append("| " + " | ".join(header) + " |")
    lines.append("|" + "|".join("---" for _ in header) + "|")
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    for note in figure.notes:
        lines.append(f"- note: {note}")
    return "\n".join(lines)
