"""One experiment definition per figure of the paper (Section 6).

Every public function regenerates one figure (or theorem check) and
returns a :class:`~repro.experiments.runner.FigureResult` whose series
carry the same quantities the paper plots.  The ``scale`` parameter
Bernoulli-subsamples the dataset (1.0 = the paper's full cardinality),
so the same definitions serve the quick benchmarks and the full
EXPERIMENTS.md runs.

Index (see DESIGN.md Section 4):

=========  ==========================================================
fig10a     numeric cost vs k        (Adult-numeric, binary vs rank)
fig10b     numeric cost vs d        (top-d distinct attributes)
fig10c     numeric cost vs n        (Bernoulli samples)
fig11a     categorical cost vs k    (NSF, DFS vs slice-cover vs lazy)
fig11b     categorical cost vs d
fig11c     categorical cost vs n
fig12      hybrid cost vs k         (Yahoo + Adult; Yahoo infeasible @64)
fig13      hybrid progressiveness   (tuples% vs queries%)
thm3       rank-shrink vs the d*m lower bound on the hard instance
thm4       slice-cover vs the Omega(dU^2) shape on the hard instance
abl_order  attribute orderings      (lazy-slice-cover on NSF)
abl_split  rank-shrink split-threshold divisor sweep
=========  ==========================================================
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.crawl.binary_shrink import BinaryShrink
from repro.crawl.dfs import DepthFirstSearch
from repro.crawl.hybrid import Hybrid
from repro.crawl.ordering import order_by_domain_size
from repro.crawl.rank_shrink import RankShrink
from repro.crawl.slice_cover import LazySliceCover, SliceCover
from repro.datasets.adult import adult, adult_numeric
from repro.datasets.hard import theorem3_instance, theorem4_instance
from repro.datasets.nsf import nsf
from repro.datasets.yahoo import yahoo_autos
from repro.dataspace.dataset import Dataset
from repro.experiments.runner import (
    FigureResult,
    measure_crawl,
    try_measure_crawl,
)
from repro.theory import bounds

__all__ = [
    "DEFAULT_KS",
    "figure_9",
    "figure_10a",
    "figure_10b",
    "figure_10c",
    "figure_11a",
    "figure_11b",
    "figure_11c",
    "figure_12",
    "figure_13",
    "theorem_3_check",
    "theorem_4_check",
    "ablation_ordering",
    "ablation_split_threshold",
    "FIGURES",
]

#: The paper's k sweep: 64, 128, 256, 512, 1024.
DEFAULT_KS = (64, 128, 256, 512, 1024)

_NUMERIC_ALGOS = (("binary-shrink", BinaryShrink), ("rank-shrink", RankShrink))
_CATEGORICAL_ALGOS = (
    ("DFS", DepthFirstSearch),
    ("slice-cover", SliceCover),
    ("lazy-slice-cover", LazySliceCover),
)


def _scaled(dataset: Dataset, scale: float, seed: int) -> Dataset:
    if scale >= 1.0:
        return dataset
    return dataset.sample_fraction(scale, seed=seed)


# ----------------------------------------------------------------------
# Figure 9: the evaluation datasets (schema/cardinality table)
# ----------------------------------------------------------------------
def figure_9(*, scale: float = 1.0, seed: int = 0) -> FigureResult:
    """Figure 9: attributes and domain sizes of the deployed datasets.

    Regenerates the paper's dataset-statistics table from our generators
    so EXPERIMENTS.md can compare schema, cardinality and per-attribute
    distinct counts side by side with the paper's.
    """
    figure = FigureResult(
        "fig9",
        "Attributes and domain sizes of the datasets deployed",
        "dataset",
        "n / per-attribute distinct values",
    )
    n_series = figure.new_series("n")
    for dataset in (yahoo_autos(), nsf(), adult(), adult_numeric()):
        dataset = _scaled(dataset, scale, seed)
        n_series.add(dataset.name, dataset.n)
        described = ", ".join(
            f"{attr.name}({attr.domain_size if attr.is_categorical else 'num'})"
            f"={distinct}"
            for attr, distinct in zip(dataset.space, dataset.distinct_counts())
        )
        figure.note(f"{dataset.name}: {described}")
    return figure


# ----------------------------------------------------------------------
# Figure 10: numeric algorithms on Adult-numeric
# ----------------------------------------------------------------------
def figure_10a(
    *, scale: float = 1.0, ks: Sequence[int] = DEFAULT_KS, seed: int = 0
) -> FigureResult:
    """Figure 10a: query cost vs k (d = 6)."""
    figure = FigureResult(
        "fig10a",
        "Query cost of numeric algorithms vs k (Adult-numeric, d=6)",
        "k",
        "number of queries",
    )
    dataset = _scaled(adult_numeric(), scale, seed).with_bounds_from_data()
    figure.note(f"n = {dataset.n}, scale = {scale:g}")
    for name, algo in _NUMERIC_ALGOS:
        series = figure.new_series(name)
        for k in ks:
            result = measure_crawl(dataset, k, algo, priority_seed=seed)
            series.add(k, result.cost)
    return figure


def figure_10b(
    *,
    scale: float = 1.0,
    k: int = 256,
    dims: Sequence[int] = (3, 4, 5, 6),
    seed: int = 0,
) -> FigureResult:
    """Figure 10b: query cost vs dimensionality (k = 256).

    The d-dimensional variants keep the d attributes of Adult-numeric
    with the most distinct values, in their original order.
    """
    figure = FigureResult(
        "fig10b",
        "Query cost of numeric algorithms vs d (Adult-numeric, k=256)",
        "dimensionality d",
        "number of queries",
    )
    base = _scaled(adult_numeric(), scale, seed)
    figure.note(f"n = {base.n}, scale = {scale:g}, k = {k}")
    for name, algo in _NUMERIC_ALGOS:
        series = figure.new_series(name)
        for d in dims:
            dataset = base.top_distinct_projection(d).with_bounds_from_data()
            result = measure_crawl(dataset, k, algo, priority_seed=seed)
            series.add(d, result.cost)
    return figure


def figure_10c(
    *,
    scale: float = 1.0,
    k: int = 256,
    fractions: Sequence[float] = (0.2, 0.4, 0.6, 0.8, 1.0),
    seed: int = 0,
) -> FigureResult:
    """Figure 10c: query cost vs dataset size (k = 256, d = 6)."""
    figure = FigureResult(
        "fig10c",
        "Query cost of numeric algorithms vs n (Adult-numeric, k=256, d=6)",
        "dataset size (fraction of full)",
        "number of queries",
    )
    base = _scaled(adult_numeric(), scale, seed)
    figure.note(f"full n = {base.n}, scale = {scale:g}, k = {k}")
    for name, algo in _NUMERIC_ALGOS:
        series = figure.new_series(name)
        for fraction in fractions:
            dataset = base.sample_fraction(
                fraction, seed=seed + 1
            ).with_bounds_from_data()
            result = measure_crawl(dataset, k, algo, priority_seed=seed)
            series.add(fraction, result.cost, n=dataset.n)
    return figure


# ----------------------------------------------------------------------
# Figure 11: categorical algorithms on NSF
# ----------------------------------------------------------------------
def figure_11a(
    *, scale: float = 1.0, ks: Sequence[int] = DEFAULT_KS, seed: int = 0
) -> FigureResult:
    """Figure 11a: query cost vs k (NSF, d = 9)."""
    figure = FigureResult(
        "fig11a",
        "Query cost of categorical algorithms vs k (NSF, d=9)",
        "k",
        "number of queries",
    )
    dataset = _scaled(nsf(), scale, seed)
    figure.note(f"n = {dataset.n}, scale = {scale:g}")
    for name, algo in _CATEGORICAL_ALGOS:
        series = figure.new_series(name)
        for k in ks:
            result = measure_crawl(dataset, k, algo, priority_seed=seed)
            series.add(k, result.cost)
    return figure


def figure_11b(
    *,
    scale: float = 1.0,
    k: int = 256,
    dims: Sequence[int] = (5, 6, 7, 8, 9),
    seed: int = 0,
) -> FigureResult:
    """Figure 11b: query cost vs dimensionality (NSF, k = 256)."""
    figure = FigureResult(
        "fig11b",
        "Query cost of categorical algorithms vs d (NSF, k=256)",
        "dimensionality d",
        "number of queries",
    )
    base = _scaled(nsf(), scale, seed)
    figure.note(f"n = {base.n}, scale = {scale:g}, k = {k}")
    for name, algo in _CATEGORICAL_ALGOS:
        series = figure.new_series(name)
        for d in dims:
            dataset = base.top_distinct_projection(d)
            result = measure_crawl(dataset, k, algo, priority_seed=seed)
            series.add(d, result.cost)
    return figure


def figure_11c(
    *,
    scale: float = 1.0,
    k: int = 256,
    fractions: Sequence[float] = (0.2, 0.4, 0.6, 0.8, 1.0),
    seed: int = 0,
) -> FigureResult:
    """Figure 11c: query cost vs dataset size (NSF, k = 256, d = 9)."""
    figure = FigureResult(
        "fig11c",
        "Query cost of categorical algorithms vs n (NSF, k=256, d=9)",
        "dataset size (fraction of full)",
        "number of queries",
    )
    base = _scaled(nsf(), scale, seed)
    figure.note(f"full n = {base.n}, scale = {scale:g}, k = {k}")
    for name, algo in _CATEGORICAL_ALGOS:
        series = figure.new_series(name)
        for fraction in fractions:
            dataset = base.sample_fraction(fraction, seed=seed + 1)
            result = measure_crawl(dataset, k, algo, priority_seed=seed)
            series.add(fraction, result.cost, n=dataset.n)
    return figure


# ----------------------------------------------------------------------
# Figures 12 and 13: the hybrid algorithm on the mixed datasets
# ----------------------------------------------------------------------
def figure_12(
    *, scale: float = 1.0, ks: Sequence[int] = DEFAULT_KS, seed: int = 0
) -> FigureResult:
    """Figure 12: hybrid's query cost vs k on Yahoo and Adult.

    Yahoo contains a point with more than 64 identical tuples, so the
    k = 64 measurement is infeasible and recorded as a note -- exactly
    the paper's "no reported value for Yahoo at k = 64".
    """
    figure = FigureResult(
        "fig12",
        "Query cost of the mixed algorithm hybrid vs k",
        "k",
        "number of queries",
    )
    for dataset in (yahoo_autos(), adult()):
        dataset = _scaled(dataset, scale, seed)
        series = figure.new_series(dataset.name)
        figure.note(
            f"{dataset.name}: n = {dataset.n}, "
            f"min feasible k = {dataset.min_feasible_k()}"
        )
        for k in ks:
            result = try_measure_crawl(dataset, k, Hybrid, priority_seed=seed)
            if result is None:
                figure.note(
                    f"{dataset.name}: k = {k} infeasible (more than {k} "
                    "identical tuples) -- no reported value"
                )
                continue
            series.add(k, result.cost)
    return figure


def figure_13(
    *,
    scale: float = 1.0,
    k: int = 256,
    grid: Sequence[float] = (
        0.0,
        0.1,
        0.2,
        0.3,
        0.4,
        0.5,
        0.6,
        0.7,
        0.8,
        0.9,
        1.0,
    ),
    seed: int = 0,
) -> FigureResult:
    """Figure 13: output progressiveness of hybrid (k = 256).

    For each dataset, the fraction of tuples extracted when x% of the
    eventual queries have been issued; the paper observes both curves
    are close to the diagonal ("linear progressiveness").
    """
    figure = FigureResult(
        "fig13",
        "Output progressiveness of hybrid (k=256)",
        "fraction of queries issued",
        "fraction of tuples extracted",
    )
    for dataset in (yahoo_autos(), adult()):
        dataset = _scaled(dataset, scale, seed)
        result = measure_crawl(dataset, k, Hybrid, priority_seed=seed)
        curve = result.progress_fractions()
        series = figure.new_series(dataset.name)
        for target in grid:
            # Last sample at or below the target query fraction; ties on
            # the query fraction take the latest (largest tuple count).
            reached = max(
                (point for point in curve if point[0] <= target),
                default=(0.0, 0.0),
                key=lambda point: (point[0], point[1]),
            )
            series.add(round(target, 2), round(reached[1], 4))
        figure.note(
            f"{dataset.name}: total {result.cost} queries, "
            f"{result.tuples_extracted} tuples"
        )
    return figure


# ----------------------------------------------------------------------
# Theorem checks: measured cost inside the proven envelopes
# ----------------------------------------------------------------------
def theorem_3_check(
    *,
    k: int = 32,
    d: int = 4,
    ms: Sequence[int] = (8, 16, 32, 64),
    seed: int = 0,
) -> FigureResult:
    """Rank-shrink on the Theorem 3 hard instance vs the d*m lower bound."""
    figure = FigureResult(
        "thm3",
        f"Theorem 3 hard instance: measured vs bounds (k={k}, d={d})",
        "m (groups)",
        "number of queries",
    )
    measured = figure.new_series("rank-shrink")
    lower = figure.new_series("lower bound d*m")
    upper = figure.new_series("Theorem 1 upper bound")
    for m in ms:
        instance = theorem3_instance(k, d, m)
        result = measure_crawl(
            instance.dataset, k, RankShrink, priority_seed=seed
        )
        measured.add(m, result.cost)
        lower.add(m, bounds.theorem3_lower_bound(d, m))
        upper.add(m, bounds.rank_shrink_upper_bound(instance.dataset.n, k, d))
    return figure


def theorem_4_check(
    *, k: int = 20, us: Sequence[int] = (3, 4, 5), seed: int = 0
) -> FigureResult:
    """Slice-cover on the Theorem 4 hard instance vs the dU^2 shape."""
    d = 2 * k
    figure = FigureResult(
        "thm4",
        f"Theorem 4 hard instance: measured vs bounds (k={k}, d={d})",
        "U (domain size)",
        "number of queries",
    )
    eager = figure.new_series("slice-cover")
    lazy = figure.new_series("lazy-slice-cover")
    lower = figure.new_series("lower bound")
    upper = figure.new_series("Lemma 4 upper bound")
    for U in us:
        instance = theorem4_instance(k, U)
        result = measure_crawl(
            instance.dataset, k, SliceCover, priority_seed=seed
        )
        eager.add(U, result.cost)
        lazy_result = measure_crawl(
            instance.dataset, k, LazySliceCover, priority_seed=seed
        )
        lazy.add(U, lazy_result.cost)
        lower.add(U, bounds.theorem4_lower_bound(d, U))
        upper.add(U, bounds.theorem4_upper_bound(k, U))
    return figure


# ----------------------------------------------------------------------
# Ablations (not in the paper; design-choice probes flagged in DESIGN.md)
# ----------------------------------------------------------------------
def ablation_ordering(
    *, scale: float = 1.0, k: int = 256, seed: int = 0
) -> FigureResult:
    """Attribute-ordering ablation for lazy-slice-cover on NSF.

    The paper fixes the Figure 9 order (small domains first) for all
    algorithms; this probe quantifies how much that choice matters.
    """
    figure = FigureResult(
        "abl_order",
        f"Lazy-slice-cover on NSF under attribute orderings (k={k})",
        "ordering",
        "number of queries",
    )
    base = _scaled(nsf(), scale, seed)
    figure.note(f"n = {base.n}, scale = {scale:g}")
    series = figure.new_series("lazy-slice-cover")
    variants = (
        ("paper (Figure 9)", base),
        ("domain asc", order_by_domain_size(base, ascending=True)),
        ("domain desc", order_by_domain_size(base, ascending=False)),
    )
    for label, dataset in variants:
        result = measure_crawl(dataset, k, LazySliceCover, priority_seed=seed)
        series.add(label, result.cost)
    return figure


def ablation_split_threshold(
    *,
    scale: float = 1.0,
    k: int = 256,
    divisors: Sequence[int] = (2, 3, 4, 8, 16),
    seed: int = 0,
) -> FigureResult:
    """Rank-shrink's case threshold (the paper's k/4) on Adult-numeric.

    ``divisor = g`` performs a 2-way split only when at most ``k/g``
    response tuples tie at the median value.  The paper's ``g = 4``
    balances split balance against 3-way frequency.
    """
    figure = FigureResult(
        "abl_split",
        f"Rank-shrink split-threshold divisor sweep (Adult-numeric, k={k})",
        "threshold divisor",
        "number of queries",
    )
    dataset = _scaled(adult_numeric(), scale, seed)
    figure.note(f"n = {dataset.n}, scale = {scale:g}")
    series = figure.new_series("rank-shrink")
    for divisor in divisors:
        result = measure_crawl(
            dataset,
            k,
            lambda server, g=divisor: RankShrink(server, threshold_divisor=g),
            priority_seed=seed,
        )
        series.add(divisor, result.cost)
    return figure


from repro.experiments.extensions import (  # noqa: E402  (registry tail)
    extension_adversarial,
    extension_partition,
    extension_sampling,
)

#: CLI registry: figure id -> experiment function.
FIGURES = {
    "9": figure_9,
    "10a": figure_10a,
    "10b": figure_10b,
    "10c": figure_10c,
    "11a": figure_11a,
    "11b": figure_11b,
    "11c": figure_11c,
    "12": figure_12,
    "13": figure_13,
    "thm3": theorem_3_check,
    "thm4": theorem_4_check,
    "abl-order": ablation_ordering,
    "abl-split": ablation_split_threshold,
    "ext-adversary": extension_adversarial,
    "ext-sampling": extension_sampling,
    "ext-partition": extension_partition,
}
