"""CLI for regenerating the paper's figures.

Usage::

    python -m repro.experiments 10a               # one figure, full scale
    python -m repro.experiments 11a 11b --scale 0.2
    python -m repro.experiments all --scale 0.1 --markdown

``--scale`` Bernoulli-subsamples the datasets (1.0 reproduces the
paper's cardinalities; small scales give quick sanity runs).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.figures import FIGURES
from repro.experiments.reporting import format_figure, format_markdown


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the figures of the VLDB 2012 hidden-database "
        "crawling paper.",
    )
    parser.add_argument(
        "figures",
        nargs="+",
        metavar="FIGURE",
        help=f"figure ids ({', '.join(FIGURES)}) or 'all'",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="dataset subsampling fraction (default 1.0 = paper scale)",
    )
    parser.add_argument("--seed", type=int, default=0, help="experiment seed")
    parser.add_argument(
        "--markdown",
        action="store_true",
        help="emit Markdown tables (for EXPERIMENTS.md) instead of text",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    requested = list(FIGURES) if "all" in args.figures else args.figures
    unknown = [f for f in requested if f not in FIGURES]
    if unknown:
        print(f"unknown figure id(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(FIGURES)} (or 'all')", file=sys.stderr)
        return 2
    renderer = format_markdown if args.markdown else format_figure
    for figure_id in requested:
        experiment = FIGURES[figure_id]
        kwargs = {"seed": args.seed}
        # Theorem checks run on constructed instances; scale does not apply.
        if figure_id not in ("thm3", "thm4"):
            kwargs["scale"] = args.scale
        started = time.perf_counter()
        figure = experiment(**kwargs)
        elapsed = time.perf_counter() - started
        print(renderer(figure))
        print(f"(wall time: {elapsed:.1f}s)")
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
