"""Experiment plumbing: series, figure results, and crawl measurement.

A figure of the paper is reproduced as a :class:`FigureResult`: named
series of (x, y) points -- y is always a query count except for the
progressiveness figure -- plus free-form notes (e.g. "Yahoo infeasible
at k = 64").  :mod:`repro.experiments.figures` builds one per paper
figure; :mod:`repro.experiments.reporting` renders them as text tables.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.crawl.base import Crawler, CrawlResult
from repro.crawl.verify import assert_complete
from repro.dataspace.dataset import Dataset
from repro.exceptions import InfeasibleCrawlError
from repro.server.server import TopKServer

__all__ = [
    "SeriesPoint",
    "Series",
    "FigureResult",
    "measure_crawl",
    "try_measure_crawl",
]


@dataclass(frozen=True)
class SeriesPoint:
    """One measurement: x-coordinate, measured value, free extras."""

    x: float | int | str
    y: float
    extra: dict = field(default_factory=dict)


@dataclass
class Series:
    """A named curve of a figure."""

    name: str
    points: list[SeriesPoint] = field(default_factory=list)

    def add(self, x, y, **extra) -> None:
        """Append a point."""
        self.points.append(SeriesPoint(x, y, dict(extra)))

    def xs(self) -> list:
        """The x-coordinates, in insertion order."""
        return [p.x for p in self.points]

    def ys(self) -> list[float]:
        """The measured values, in insertion order."""
        return [p.y for p in self.points]


@dataclass
class FigureResult:
    """A reproduced figure: metadata plus its series."""

    figure_id: str
    title: str
    xlabel: str
    ylabel: str
    series: list[Series] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def new_series(self, name: str) -> Series:
        """Create, register and return a new series."""
        series = Series(name)
        self.series.append(series)
        return series

    def series_by_name(self, name: str) -> Series:
        """Look a series up by name."""
        for series in self.series:
            if series.name == name:
                return series
        raise KeyError(f"no series named {name!r} in figure {self.figure_id}")

    def note(self, text: str) -> None:
        """Attach a free-form note (rendered under the table)."""
        self.notes.append(text)


def measure_crawl(
    dataset: Dataset,
    k: int,
    crawler_factory: Callable[[TopKServer], Crawler],
    *,
    priority_seed: int = 0,
    verify: bool = True,
) -> CrawlResult:
    """Run one crawl measurement on a fresh server.

    A new :class:`TopKServer` (fresh priorities, fresh cache) is built
    for every measurement so algorithms never share state.  With
    ``verify=True`` (default) the extracted bag is checked against the
    ground truth -- an experiment whose crawl is wrong must not produce
    a data point.

    Raises
    ------
    InfeasibleCrawlError
        Propagated so callers can record "no reported value" points, as
        the paper does for Yahoo at k = 64.
    """
    server = TopKServer(dataset, k, priority_seed=priority_seed)
    crawler = crawler_factory(server)
    result = crawler.crawl()
    if verify:
        assert_complete(result, dataset)
    return result


def try_measure_crawl(
    dataset: Dataset,
    k: int,
    crawler_factory: Callable[[TopKServer], Crawler],
    *,
    priority_seed: int = 0,
    verify: bool = True,
) -> CrawlResult | None:
    """Like :func:`measure_crawl`, but returns ``None`` when infeasible."""
    try:
        return measure_crawl(
            dataset,
            k,
            crawler_factory,
            priority_seed=priority_seed,
            verify=verify,
        )
    except InfeasibleCrawlError:
        return None
