"""Horvitz-Thompson estimation over drill-down samples.

Given walks from :class:`~repro.analytics.random_walk.DrillDownSampler`,
a successful walk that sampled tuple instance ``t`` with probability
``p(t)`` contributes ``f(t) / p(t)`` to an estimate of the database
total ``sum_t f(t)``; failed walks contribute ``0``.  Because the walk
reaches each tuple instance along exactly one path,

    E[f(t_sampled) / p(t_sampled)] = sum_t p(t) * f(t) / p(t)
                                   = sum_t f(t),

so the per-walk contributions are independent unbiased estimators:

* ``f = 1`` estimates the hidden database's **size** ``n`` (which the
  interface never reveals);
* ``f = value of attribute j`` estimates the **sum** over that
  attribute;
* the ratio of the two estimates the **mean** (a standard ratio
  estimator: consistent, only asymptotically unbiased).

Each estimate carries the sample standard error, so callers can judge
whether a budget bought them anything -- the comparison harness
(:mod:`repro.analytics.compare`) and the accuracy benchmark rely on it.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.analytics.random_walk import DrillDownSampler, WalkOutcome
from repro.exceptions import SchemaError
from repro.server.response import Row

__all__ = [
    "EstimateReport",
    "horvitz_thompson",
    "estimate_size",
    "estimate_sum",
    "estimate_mean",
]


@dataclass(frozen=True, slots=True)
class EstimateReport:
    """One estimated quantity plus the sampling effort that bought it.

    Attributes
    ----------
    estimate:
        The Horvitz-Thompson point estimate.
    stderr:
        Standard error of the estimate (sample std of the per-walk
        contributions over ``sqrt(walks)``); ``nan`` for fewer than two
        walks.
    walks, successes:
        Walks performed and walks that produced a sample.
    cost:
        Distinct queries issued (the Problem 1 cost metric), including
        cache-warmed re-walks at zero marginal cost.
    """

    estimate: float
    stderr: float
    walks: int
    successes: int
    cost: int

    def relative_error(self, truth: float) -> float:
        """``|estimate - truth| / truth`` against a known ground truth."""
        if truth == 0:
            raise SchemaError("relative error undefined for zero truth")
        return abs(self.estimate - truth) / abs(truth)

    def __str__(self) -> str:
        return (
            f"{self.estimate:.1f} +- {self.stderr:.1f} "
            f"({self.successes}/{self.walks} walks, {self.cost} queries)"
        )


def horvitz_thompson(
    outcomes: Sequence[WalkOutcome],
    f: Callable[[Row], float],
    *,
    cost: int,
) -> EstimateReport:
    """The HT estimate of ``sum_t f(t)`` from walk outcomes."""
    if not outcomes:
        raise SchemaError("at least one walk outcome is required")
    contributions = []
    successes = 0
    for outcome in outcomes:
        if outcome.success:
            successes += 1
            assert outcome.row is not None
            contributions.append(f(outcome.row) / outcome.probability)
        else:
            contributions.append(0.0)
    count = len(contributions)
    mean = sum(contributions) / count
    if count > 1:
        variance = sum((x - mean) ** 2 for x in contributions) / (count - 1)
        stderr = math.sqrt(variance / count)
    else:
        stderr = float("nan")
    return EstimateReport(mean, stderr, count, successes, cost)


def _run_walks(source, walks: int, seed: int) -> tuple[list[WalkOutcome], int]:
    sampler = DrillDownSampler(source, seed=seed)
    before = sampler.client.cost
    outcomes = sampler.walks(walks)
    return outcomes, sampler.client.cost - before


def estimate_size(source, *, walks: int, seed: int = 0) -> EstimateReport:
    """Estimate the hidden database's size ``n`` (never revealed directly)."""
    outcomes, cost = _run_walks(source, walks, seed)
    return horvitz_thompson(outcomes, lambda row: 1.0, cost=cost)


def estimate_sum(
    source, attribute: int, *, walks: int, seed: int = 0
) -> EstimateReport:
    """Estimate ``sum`` of one attribute over the hidden database."""
    outcomes, cost = _run_walks(source, walks, seed)
    return horvitz_thompson(
        outcomes, lambda row: float(row[attribute]), cost=cost
    )


def estimate_mean(
    source, attribute: int, *, walks: int, seed: int = 0
) -> EstimateReport:
    """Estimate the mean of one attribute (HT ratio estimator).

    The ratio of two unbiased totals is consistent but only
    asymptotically unbiased; its reported ``stderr`` is the first-order
    (delta-method-free, conservative) scaling of the numerator's error
    by the size estimate.
    """
    outcomes, cost = _run_walks(source, walks, seed)
    total = horvitz_thompson(
        outcomes, lambda row: float(row[attribute]), cost=cost
    )
    size = horvitz_thompson(outcomes, lambda row: 1.0, cost=cost)
    if size.estimate == 0:
        raise SchemaError(
            "all walks failed; cannot form a mean estimate "
            "(raise the walk count)"
        )
    estimate = total.estimate / size.estimate
    stderr = total.stderr / size.estimate
    return EstimateReport(estimate, stderr, total.walks, total.successes, cost)
