"""Random drill-down sampling over the top-k interface.

The paper's related work (Section 1.4, references [8, 9, 14]) contrasts
crawling with *sampling*: instead of extracting everything, issue a few
queries and estimate aggregates from the tuples they surface.  This
module implements the canonical technique of that line -- the random
drill-down walk in the spirit of Dasgupta et al. (reference [9]) -- so
the trade-off the paper argues about is measurable in this codebase.

One **walk** descends the query hierarchy until a query resolves:

* each categorical attribute (in schema order) is pinned to a value
  drawn uniformly from its domain -- a branch taken with probability
  ``1 / U_i``;
* each numeric attribute's bounded extent is halved repeatedly, the
  walk picking a half with probability ``1/2`` per split;
* at the first *resolved* query, one tuple is drawn uniformly from the
  returned bag (an empty bag fails the walk).

Every step's probability is recorded, so the tuple instance ``t``
reached by a walk has a known selection probability ``p(t)`` -- the
product of its branch probabilities times ``1 / |R|``.  Because each
tuple is reachable along exactly one path, the Horvitz-Thompson
weighting ``1 / p(t)`` makes walk outcomes unbiased estimators of
database totals (see :mod:`repro.analytics.estimators`).

Requirements and caveats, stated honestly:

* numeric attributes must carry finite bounds (the halving walk needs
  a starting extent); categorical-only spaces need nothing;
* a point query that still overflows (multiplicity above ``k``) fails
  the walk -- the same pathological input that makes Problem 1
  unsolvable;
* walks *fail* whenever they resolve on an empty region, and sparse
  spaces fail a lot: that inefficiency is intrinsic to sampling and is
  precisely what the comparison benchmark quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import SchemaError, UnboundedDomainError
from repro.query.query import Query
from repro.server.client import CachingClient
from repro.server.response import Row

__all__ = ["WalkOutcome", "DrillDownSampler"]


@dataclass(frozen=True, slots=True)
class WalkOutcome:
    """The result of one drill-down walk.

    Attributes
    ----------
    row:
        The sampled tuple instance, or ``None`` for a failed walk
        (empty resolved region, or an overflowing point query).
    probability:
        The selection probability ``p(row)`` of the sampled instance;
        meaningless for failed walks.
    depth:
        Queries issued along the walk (before client-side caching).
    """

    row: Row | None
    probability: float
    depth: int

    @property
    def success(self) -> bool:
        """Whether the walk produced a sample."""
        return self.row is not None


class DrillDownSampler:
    """Random drill-down walks with tracked selection probabilities.

    Parameters
    ----------
    source:
        The hidden database; a shared :class:`CachingClient` is
        accepted (and is the recommended way to run many walks:
        repeated prefixes then cost nothing).
    seed:
        RNG seed; two samplers with the same seed walk identically.

    Raises
    ------
    UnboundedDomainError
        If the space has a numeric attribute without finite bounds.
    """

    def __init__(self, source, *, seed: int = 0):
        if isinstance(source, CachingClient):
            self._client = source
        else:
            self._client = CachingClient(source)
        self._rng = np.random.default_rng(seed)
        space = self._client.space
        for attr in space:
            if attr.is_numeric and not attr.is_bounded:
                raise UnboundedDomainError(
                    f"drill-down sampling needs finite bounds on numeric "
                    f"attribute {attr.name!r}"
                )

    # ------------------------------------------------------------------
    @property
    def client(self) -> CachingClient:
        """The (possibly shared) caching client; its ``cost`` is the budget."""
        return self._client

    # ------------------------------------------------------------------
    def walk(self) -> WalkOutcome:
        """Perform one drill-down walk."""
        space = self._client.space
        query = Query.full(space)
        probability = 1.0
        depth = 0

        def attempt(q: Query) -> WalkOutcome | None:
            nonlocal depth
            depth += 1
            response = self._client.run(q)
            if response.overflow:
                return None
            if not response.rows:
                return WalkOutcome(None, 0.0, depth)
            index = int(self._rng.integers(0, len(response.rows)))
            return WalkOutcome(
                response.rows[index],
                probability / len(response.rows),
                depth,
            )

        outcome = attempt(query)
        if outcome is not None:
            return outcome

        # Pin categorical attributes one by one, uniformly at random.
        for i in range(space.cat):
            size = space[i].domain_size
            assert size is not None
            value = int(self._rng.integers(1, size + 1))
            probability /= size
            query = query.with_value(i, value)
            outcome = attempt(query)
            if outcome is not None:
                return outcome

        # Halve numeric extents, one coin flip per split.
        for j in range(space.cat, space.dimensionality):
            attr = space[j]
            lo, hi = attr.lo, attr.hi
            assert lo is not None and hi is not None
            query = query.with_range(j, lo, hi)
            outcome = attempt(query)
            if outcome is not None:
                return outcome
            while lo < hi:
                mid = (lo + hi) // 2
                if self._rng.integers(0, 2):
                    lo = mid + 1
                else:
                    hi = mid
                probability /= 2.0
                query = query.with_range(j, lo, hi)
                outcome = attempt(query)
                if outcome is not None:
                    return outcome

        # Every attribute is exhausted and the point query still
        # overflowed: multiplicity above k, the Problem-1-breaking case.
        return WalkOutcome(None, 0.0, depth)

    def walks(self, count: int) -> list[WalkOutcome]:
        """Perform ``count`` independent walks."""
        if count < 1:
            raise SchemaError(f"walk count must be positive, got {count}")
        return [self.walk() for _ in range(count)]
