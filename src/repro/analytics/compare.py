"""Sampling versus crawling, at equal query budgets.

The paper's pitch (Sections 1.2 and 1.4): sampling answers *specific*
aggregate questions approximately, while crawling -- at a cost the
paper proves is near the minimum possible -- buys the full content and
with it *exact* answers to "virtually any form of processing".  This
module stages that comparison fairly:

for each query budget ``B``

* **sampling** spends ``B`` queries on drill-down walks and reports the
  Horvitz-Thompson size/sum estimates with their actual relative
  errors;
* **crawling** runs the paper's crawler under a hard ``B``-query limit
  (partial results allowed) and reports the fraction of the database
  extracted; once the budget reaches the crawler's finishing cost the
  errors are exactly zero, forever.

The output is the raw series behind ``benchmarks/bench_analytics.py``.
The comparison needs ground truth, so it runs on an owned dataset --
like every experiment in the paper's Section 6.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crawl.hybrid import Hybrid
from repro.dataspace.dataset import Dataset
from repro.exceptions import SchemaError
from repro.server.client import CachingClient
from repro.server.limits import QueryBudget
from repro.server.server import TopKServer

__all__ = ["BudgetPoint", "ComparisonReport", "compare_at_budgets"]


@dataclass(frozen=True, slots=True)
class BudgetPoint:
    """Both approaches' outcomes at one query budget.

    ``sample_*_error`` are relative errors of the sampling estimates;
    ``crawl_fraction`` is the fraction of the bag a budget-limited
    crawl extracted (``1.0`` means exact answers to everything).
    """

    budget: int
    sample_size_error: float
    sample_sum_error: float
    sample_walks: int
    crawl_fraction: float
    crawl_complete: bool


@dataclass(frozen=True)
class ComparisonReport:
    """The full sweep, plus the anchors that contextualise it."""

    points: tuple[BudgetPoint, ...]
    crawl_full_cost: int
    n: int
    attribute: int

    def rows(self) -> list[tuple]:
        """Printable rows: one per budget."""
        return [
            (
                p.budget,
                round(p.sample_size_error, 4),
                round(p.sample_sum_error, 4),
                round(p.crawl_fraction, 4),
                "yes" if p.crawl_complete else "no",
            )
            for p in self.points
        ]


#: Stop sampling after this many consecutive fully-cached walks: the
#: sampler has exhausted every query it will ever issue, so further
#: walks refine the estimate without spending budget.
_STALL_LIMIT = 200


def _sampling_point(dataset, k, budget, attribute, seed):
    """Spend up to ``budget`` queries on walks; report actual errors.

    Walks continue until the budget is spent *or* the response cache
    saturates (many consecutive walks issuing no new query) -- on a
    small space the sampler may simply run out of distinct queries
    below the budget.
    """
    from repro.analytics.random_walk import DrillDownSampler

    server = TopKServer(dataset, k, priority_seed=seed)
    sampler = DrillDownSampler(CachingClient(server), seed=seed)
    outcomes = []
    stalled = 0
    while sampler.client.cost < budget and stalled < _STALL_LIMIT:
        before = sampler.client.cost
        outcomes.append(sampler.walk())
        stalled = stalled + 1 if sampler.client.cost == before else 0
    from repro.analytics.estimators import horvitz_thompson

    cost = sampler.client.cost
    size = horvitz_thompson(outcomes, lambda row: 1.0, cost=cost)
    total = horvitz_thompson(
        outcomes, lambda row: float(row[attribute]), cost=cost
    )
    true_sum = float(sum(row[attribute] for row in dataset.iter_rows()))
    return (
        size.relative_error(dataset.n),
        total.relative_error(true_sum) if true_sum else 0.0,
        len(outcomes),
    )


def _crawling_point(dataset, k, budget, seed):
    """Crawl under a hard budget; report the extracted fraction."""
    server = TopKServer(
        dataset, k, priority_seed=seed, limits=[QueryBudget(budget)]
    )
    result = Hybrid(server).crawl(allow_partial=True)
    return len(result.rows) / max(1, dataset.n), result.complete


def compare_at_budgets(
    dataset: Dataset,
    k: int,
    budgets: list[int],
    *,
    attribute: int | None = None,
    seed: int = 0,
) -> ComparisonReport:
    """Run the sampling-vs-crawling sweep on an owned dataset.

    Parameters
    ----------
    dataset, k:
        The ground-truth content and the interface limit.
    budgets:
        Query budgets to evaluate, ascending.
    attribute:
        Attribute for the sum estimate; defaults to the last (numeric
        attributes live at the end of a mixed schema).
    seed:
        Controls priorities and walk randomness.
    """
    if not budgets or sorted(budgets) != list(budgets):
        raise SchemaError("budgets must be a non-empty ascending list")
    if attribute is None:
        attribute = dataset.space.dimensionality - 1
    full_cost = Hybrid(TopKServer(dataset, k, priority_seed=seed)).crawl().cost
    points = []
    for budget in budgets:
        size_err, sum_err, walks = _sampling_point(
            dataset, k, budget, attribute, seed
        )
        fraction, complete = _crawling_point(dataset, k, budget, seed)
        points.append(
            BudgetPoint(budget, size_err, sum_err, walks, fraction, complete)
        )
    return ComparisonReport(tuple(points), full_cost, dataset.n, attribute)
