"""Analytics over hidden databases: sampling estimators vs crawling.

The paper positions crawling against the sampling line of deep-web
research (Section 1.4): samples answer fixed aggregate questions
approximately; a crawl -- provably near the cheapest possible one --
answers everything exactly.  This package supplies the sampling side
so the claim can be measured rather than asserted:

* :class:`~repro.analytics.random_walk.DrillDownSampler` -- random
  drill-down walks with tracked selection probabilities;
* :mod:`repro.analytics.estimators` -- Horvitz-Thompson size / sum /
  mean estimation from walks;
* :func:`~repro.analytics.compare.compare_at_budgets` -- the equal
  budget sampling-vs-crawling sweep behind
  ``benchmarks/bench_analytics.py``.
"""

from repro.analytics.compare import (
    BudgetPoint,
    ComparisonReport,
    compare_at_budgets,
)
from repro.analytics.estimators import (
    EstimateReport,
    estimate_mean,
    estimate_size,
    estimate_sum,
    horvitz_thompson,
)
from repro.analytics.random_walk import DrillDownSampler, WalkOutcome

__all__ = [
    "BudgetPoint",
    "ComparisonReport",
    "compare_at_budgets",
    "EstimateReport",
    "estimate_mean",
    "estimate_size",
    "estimate_sum",
    "horvitz_thompson",
    "DrillDownSampler",
    "WalkOutcome",
]
