"""Query model: predicates, queries, splits and slice queries."""

from repro.query.predicates import (
    EqualityPredicate,
    Predicate,
    RangePredicate,
    compile_matcher,
    compile_predicate,
)
from repro.query.query import Query, full_query, point_query, slice_query

__all__ = [
    "EqualityPredicate",
    "Predicate",
    "RangePredicate",
    "compile_matcher",
    "compile_predicate",
    "Query",
    "full_query",
    "point_query",
    "slice_query",
]
