"""Queries: conjunctions of one predicate per attribute.

A :class:`Query` is the unit of cost in Problem 1.  It is an immutable,
hashable value whose identity is its predicate vector, so structurally
identical queries -- no matter which algorithm built them -- hit the same
entry of the client-side response cache.

The module also implements the geometric operations of the paper:

* 2-way and 3-way *splits* of a numeric extent (Section 2.1, Figure 2),
  the atomic refinement steps of ``binary-shrink`` and ``rank-shrink``;
* *slice queries* ``Ai = c`` with wildcards elsewhere (Section 3.2), the
  building blocks of ``slice-cover``;
* the level-wise refinement of the categorical *data space tree*
  (Section 3.1): a node at level ``l`` pins attributes ``A1 .. Al``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.dataspace.space import DataSpace
from repro.exceptions import SchemaError
from repro.query.predicates import EqualityPredicate, Predicate, RangePredicate

__all__ = ["Query", "full_query", "slice_query", "point_query"]


@dataclass(frozen=True)
class Query:
    """One query against the hidden database's interface.

    Equality and hashing consider only the predicate vector, so queries
    built independently by different algorithms (or by re-runs of the
    same algorithm) coincide in the response cache.  The ``space`` field
    is carried for validation and pretty-printing.
    """

    predicates: tuple[Predicate, ...]
    space: DataSpace = field(compare=False, hash=False, repr=False)

    def __post_init__(self) -> None:
        if len(self.predicates) != self.space.dimensionality:
            raise SchemaError(
                f"query has {len(self.predicates)} predicates, space has "
                f"{self.space.dimensionality} attributes"
            )
        for i, pred in enumerate(self.predicates):
            attr = self.space[i]
            if attr.is_categorical and not isinstance(pred, EqualityPredicate):
                raise SchemaError(
                    f"attribute {attr.name!r} is categorical; it only "
                    "supports equality/wildcard predicates"
                )
            if attr.is_numeric and not isinstance(pred, RangePredicate):
                raise SchemaError(
                    f"attribute {attr.name!r} is numeric; it only supports "
                    "range predicates"
                )
            if (
                isinstance(pred, EqualityPredicate)
                and pred.value is not None
                and not attr.contains(pred.value)
            ):
                raise SchemaError(
                    f"value {pred.value} outside the domain of {attr.name!r}"
                )
        # Queries are hashed on every cache probe of the hot path; the
        # predicate-vector hash is immutable, so pay for it once here.
        object.__setattr__(self, "_hash", hash(self.predicates))

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def full(cls, space: DataSpace) -> "Query":
        """The all-wildcard query covering the entire data space."""
        preds: list[Predicate] = []
        for attr in space:
            if attr.is_categorical:
                preds.append(EqualityPredicate(None))
            else:
                preds.append(RangePredicate(None, None))
        return cls(tuple(preds), space)

    def with_value(self, index: int, value: int | None) -> "Query":
        """Refine a categorical attribute to ``value`` (``None`` = wildcard)."""
        attr = self.space[index]
        if not attr.is_categorical:
            raise SchemaError(f"{attr.name!r} is numeric; use with_range")
        preds = list(self.predicates)
        preds[index] = EqualityPredicate(value)
        return Query(tuple(preds), self.space)

    def with_range(
        self, index: int, lo: int | None, hi: int | None
    ) -> "Query":
        """Refine a numeric attribute's extent to ``[lo, hi]``."""
        attr = self.space[index]
        if not attr.is_numeric:
            raise SchemaError(f"{attr.name!r} is categorical; use with_value")
        preds = list(self.predicates)
        preds[index] = RangePredicate(lo, hi)
        return Query(tuple(preds), self.space)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def predicate(self, index: int) -> Predicate:
        """The predicate on attribute ``index``."""
        return self.predicates[index]

    def extent(self, index: int) -> tuple[int | None, int | None]:
        """``(lo, hi)`` extent on a numeric attribute."""
        pred = self.predicates[index]
        if not isinstance(pred, RangePredicate):
            raise SchemaError(
                f"attribute {self.space[index].name!r} has no range extent"
            )
        return pred.lo, pred.hi

    def is_exhausted(self, index: int) -> bool:
        """Whether the attribute is pinned to a single value on this query."""
        return self.predicates[index].is_point

    def is_point(self) -> bool:
        """Whether the query has degenerated into a single point of D."""
        return all(p.is_point for p in self.predicates)

    def matches(self, row: Sequence[int]) -> bool:
        """Whether a tuple satisfies every predicate of the query."""
        for pred, value in zip(self.predicates, row):
            if not pred.matches(value):
                return False
        return True

    def fixed_level(self) -> int:
        """Length of the pinned categorical prefix (data-space-tree level).

        A node of the data space tree at level ``l`` pins ``A1 .. Al`` and
        leaves every later categorical attribute wildcarded (Section 3.1).
        """
        level = 0
        for i in range(self.space.cat):
            pred = self.predicates[i]
            assert isinstance(pred, EqualityPredicate)
            if pred.is_wildcard:
                break
            level += 1
        return level

    def is_slice(self) -> tuple[int, int] | None:
        """If this is a slice query ``Ai = c``, return ``(i, c)``.

        A slice query pins exactly one categorical attribute and leaves
        everything else unconstrained (Section 3.2).
        """
        pinned: tuple[int, int] | None = None
        for i, pred in enumerate(self.predicates):
            if isinstance(pred, EqualityPredicate):
                if pred.value is None:
                    continue
                if pinned is not None:
                    return None
                pinned = (i, pred.value)
            else:
                if not pred.is_unconstrained:
                    return None
        return pinned

    def intersect(self, other: "Query") -> "Query | None":
        """The query matching exactly the tuples both queries match.

        Returns ``None`` when the conjunction is unsatisfiable (two
        different equality constants, or ranges with an empty overlap).
        Used by :class:`repro.crawl.partition.SubspaceView` to confine
        a crawler to one region of the data space.
        """
        if other.space != self.space:
            raise SchemaError(
                "cannot intersect queries over different data spaces"
            )
        merged: list[Predicate] = []
        for mine, theirs in zip(self.predicates, other.predicates):
            if isinstance(mine, EqualityPredicate):
                assert isinstance(theirs, EqualityPredicate)
                if mine.value is None:
                    merged.append(theirs)
                elif theirs.value is None or theirs.value == mine.value:
                    merged.append(mine)
                else:
                    return None
            else:
                assert isinstance(theirs, RangePredicate)
                lo = (
                    mine.lo
                    if theirs.lo is None
                    else (
                        theirs.lo
                        if mine.lo is None
                        else max(mine.lo, theirs.lo)
                    )
                )
                hi = (
                    mine.hi
                    if theirs.hi is None
                    else (
                        theirs.hi
                        if mine.hi is None
                        else min(mine.hi, theirs.hi)
                    )
                )
                if lo is not None and hi is not None and lo > hi:
                    return None
                merged.append(RangePredicate(lo, hi))
        return Query(tuple(merged), self.space)

    # ------------------------------------------------------------------
    # Splits (paper Section 2.1, Figure 2)
    # ------------------------------------------------------------------
    def split_2way(self, index: int, x: int) -> tuple["Query", "Query"]:
        """2-way split of the extent on attribute ``index`` at value ``x``.

        Produces ``q_left`` with extent ``[lo, x - 1]`` and ``q_right``
        with extent ``[x, hi]``; all other predicates are inherited.
        ``x`` must lie strictly above the extent's lower end, otherwise
        the left part would be empty.
        """
        lo, hi = self.extent(index)
        if lo is not None and x <= lo:
            raise SchemaError(f"2-way split at {x} <= lower end {lo}")
        if hi is not None and x > hi:
            raise SchemaError(f"2-way split at {x} > upper end {hi}")
        return (
            self.with_range(index, lo, x - 1),
            self.with_range(index, x, hi),
        )

    def split_3way(
        self, index: int, x: int
    ) -> tuple["Query | None", "Query", "Query | None"]:
        """3-way split at ``x``: ``[lo, x-1]``, ``[x, x]``, ``[x+1, hi]``.

        When ``x`` sits on an end of the extent the corresponding side
        would have a meaningless extent and is returned as ``None``, as
        prescribed in Section 2.2 ("we simply discard qleft (resp.
        qright)").
        """
        lo, hi = self.extent(index)
        if (lo is not None and x < lo) or (hi is not None and x > hi):
            raise SchemaError(
                f"3-way split at {x} outside extent [{lo}, {hi}]"
            )
        left = (
            None
            if lo is not None and x == lo
            else self.with_range(index, lo, x - 1)
        )
        mid = self.with_range(index, x, x)
        right = (
            None
            if hi is not None and x == hi
            else self.with_range(index, x + 1, hi)
        )
        return left, mid, right

    # ------------------------------------------------------------------
    def __str__(self) -> str:
        parts = []
        for attr, pred in zip(self.space, self.predicates):
            if isinstance(pred, EqualityPredicate):
                if not pred.is_wildcard:
                    parts.append(f"{attr.name}{pred}")
            elif not pred.is_unconstrained:
                parts.append(f"{attr.name} in {pred}")
        return "Query(" + (", ".join(parts) if parts else "*") + ")"


def full_query(space: DataSpace) -> Query:
    """Module-level alias of :meth:`Query.full`."""
    return Query.full(space)


def slice_query(space: DataSpace, index: int, value: int) -> Query:
    """The slice query ``A_index = value`` with wildcards elsewhere."""
    attr = space[index]
    if not attr.is_categorical:
        raise SchemaError(
            f"slice queries are defined on categorical attributes; "
            f"{attr.name!r} is numeric"
        )
    return Query.full(space).with_value(index, value)


def point_query(space: DataSpace, point: Sequence[int]) -> Query:
    """The query pinning every attribute to the coordinates of ``point``."""
    validated = space.validate_point(point)
    q = Query.full(space)
    for i, value in enumerate(validated):
        if space[i].is_categorical:
            q = q.with_value(i, value)
        else:
            q = q.with_range(i, value, value)
    return q
