"""Per-attribute predicates of the hidden-database query interface.

Section 1.1 of the paper fixes the interface: a query carries exactly one
predicate per attribute --

* on a numeric attribute, a range condition ``Ai in [x, y]``; we model
  half-open infinities with ``None`` endpoints, so ``RangePredicate(None,
  None)`` is the unconstrained predicate ``Ai in (-inf, +inf)``;
* on a categorical attribute, an equality ``Ai = x`` where ``x`` is a
  domain value or the wildcard ``*``; ``EqualityPredicate(None)`` is the
  wildcard.

Predicates are immutable, hashable value objects, which lets whole
queries serve as cache keys in :class:`repro.server.client.CachingClient`
(the paper's "lookup table" for slice queries falls out of that cache).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import SchemaError

__all__ = ["RangePredicate", "EqualityPredicate", "Predicate"]


@dataclass(frozen=True, slots=True)
class RangePredicate:
    """``Ai in [lo, hi]`` on a numeric attribute; ``None`` = unbounded."""

    lo: int | None = None
    hi: int | None = None

    def __post_init__(self) -> None:
        if self.lo is not None and self.hi is not None and self.lo > self.hi:
            raise SchemaError(f"empty range [{self.lo}, {self.hi}]")

    # ------------------------------------------------------------------
    @property
    def is_unconstrained(self) -> bool:
        """Whether the predicate admits every integer."""
        return self.lo is None and self.hi is None

    @property
    def is_point(self) -> bool:
        """Whether the extent covers exactly one value (attribute exhausted).

        The paper calls an attribute *exhausted on q* when q's extent on
        it has shrunk to a single value (Section 2.1).
        """
        return self.lo is not None and self.lo == self.hi

    @property
    def width(self) -> int | None:
        """Number of admitted integers, or ``None`` when unbounded."""
        if self.lo is None or self.hi is None:
            return None
        return self.hi - self.lo + 1

    def matches(self, value: int) -> bool:
        """Whether ``value`` satisfies the range condition."""
        if self.lo is not None and value < self.lo:
            return False
        if self.hi is not None and value > self.hi:
            return False
        return True

    def clamp(self, lo: int | None, hi: int | None) -> "RangePredicate":
        """Intersect with another extent (used to seed bounded crawls)."""
        new_lo = (
            self.lo
            if lo is None
            else (lo if self.lo is None else max(lo, self.lo))
        )
        new_hi = (
            self.hi
            if hi is None
            else (hi if self.hi is None else min(hi, self.hi))
        )
        return RangePredicate(new_lo, new_hi)

    def __str__(self) -> str:
        lo = "-inf" if self.lo is None else str(self.lo)
        hi = "+inf" if self.hi is None else str(self.hi)
        return f"[{lo}, {hi}]"


@dataclass(frozen=True, slots=True)
class EqualityPredicate:
    """``Ai = value`` on a categorical attribute; ``None`` = wildcard ``*``."""

    value: int | None = None

    @property
    def is_wildcard(self) -> bool:
        """Whether the predicate is ``Ai = *`` (admits every domain value)."""
        return self.value is None

    @property
    def is_point(self) -> bool:
        """Whether the attribute is pinned to a single value."""
        return self.value is not None

    def matches(self, value: int) -> bool:
        """Whether ``value`` satisfies the equality condition."""
        return self.value is None or value == self.value

    def __str__(self) -> str:
        return "*" if self.value is None else f"={self.value}"


#: A query predicate: a range on numeric or an (in)equality on categorical.
Predicate = RangePredicate | EqualityPredicate
