"""Per-attribute predicates of the hidden-database query interface.

Section 1.1 of the paper fixes the interface: a query carries exactly one
predicate per attribute --

* on a numeric attribute, a range condition ``Ai in [x, y]``; we model
  half-open infinities with ``None`` endpoints, so ``RangePredicate(None,
  None)`` is the unconstrained predicate ``Ai in (-inf, +inf)``;
* on a categorical attribute, an equality ``Ai = x`` where ``x`` is a
  domain value or the wildcard ``*``; ``EqualityPredicate(None)`` is the
  wildcard.

Predicates are immutable, hashable value objects, which lets whole
queries serve as cache keys in :class:`repro.server.client.CachingClient`
(the paper's "lookup table" for slice queries falls out of that cache).

Two evaluation paths coexist:

* :meth:`RangePredicate.matches` / :meth:`EqualityPredicate.matches` --
  the *interpreted* reference semantics, one method dispatch per value;
* :func:`compile_predicate` / :func:`compile_matcher` -- the hot-path
  twins: one compilation pass turns a predicate (or a whole predicate
  vector) into a specialised closure, so a scan over thousands of rows
  pays the interpretation cost once instead of once per row.  A
  hypothesis property (``tests/query/test_predicates.py``) pins the
  compiled forms to the interpreted ones on arbitrary inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.exceptions import SchemaError

__all__ = [
    "RangePredicate",
    "EqualityPredicate",
    "Predicate",
    "compile_predicate",
    "compile_matcher",
]


@dataclass(frozen=True, slots=True)
class RangePredicate:
    """``Ai in [lo, hi]`` on a numeric attribute; ``None`` = unbounded."""

    lo: int | None = None
    hi: int | None = None

    def __post_init__(self) -> None:
        if self.lo is not None and self.hi is not None and self.lo > self.hi:
            raise SchemaError(f"empty range [{self.lo}, {self.hi}]")

    # ------------------------------------------------------------------
    @property
    def is_unconstrained(self) -> bool:
        """Whether the predicate admits every integer."""
        return self.lo is None and self.hi is None

    @property
    def is_point(self) -> bool:
        """Whether the extent covers exactly one value (attribute exhausted).

        The paper calls an attribute *exhausted on q* when q's extent on
        it has shrunk to a single value (Section 2.1).
        """
        return self.lo is not None and self.lo == self.hi

    @property
    def width(self) -> int | None:
        """Number of admitted integers, or ``None`` when unbounded."""
        if self.lo is None or self.hi is None:
            return None
        return self.hi - self.lo + 1

    def matches(self, value: int) -> bool:
        """Whether ``value`` satisfies the range condition."""
        if self.lo is not None and value < self.lo:
            return False
        if self.hi is not None and value > self.hi:
            return False
        return True

    def clamp(self, lo: int | None, hi: int | None) -> "RangePredicate":
        """Intersect with another extent (used to seed bounded crawls)."""
        new_lo = (
            self.lo
            if lo is None
            else (lo if self.lo is None else max(lo, self.lo))
        )
        new_hi = (
            self.hi
            if hi is None
            else (hi if self.hi is None else min(hi, self.hi))
        )
        return RangePredicate(new_lo, new_hi)

    def __str__(self) -> str:
        lo = "-inf" if self.lo is None else str(self.lo)
        hi = "+inf" if self.hi is None else str(self.hi)
        return f"[{lo}, {hi}]"


@dataclass(frozen=True, slots=True)
class EqualityPredicate:
    """``Ai = value`` on a categorical attribute; ``None`` = wildcard ``*``."""

    value: int | None = None

    @property
    def is_wildcard(self) -> bool:
        """Whether the predicate is ``Ai = *`` (admits every domain value)."""
        return self.value is None

    @property
    def is_point(self) -> bool:
        """Whether the attribute is pinned to a single value."""
        return self.value is not None

    def matches(self, value: int) -> bool:
        """Whether ``value`` satisfies the equality condition."""
        return self.value is None or value == self.value

    def __str__(self) -> str:
        return "*" if self.value is None else f"={self.value}"


#: A query predicate: a range on numeric or an (in)equality on categorical.
Predicate = RangePredicate | EqualityPredicate


def compile_predicate(pred: Predicate) -> Callable[[int], bool] | None:
    """Compile one predicate into a specialised value test.

    Returns ``None`` when the predicate is unconstrained (a wildcard
    equality or a fully unbounded range) -- the caller can then skip
    the test entirely, which is the whole point: the shape of the
    predicate is inspected **once**, not once per row.  Otherwise the
    returned closure agrees with :meth:`~RangePredicate.matches` on
    every integer (pinned by a hypothesis property in
    ``tests/query/test_predicates.py``).

    Examples
    --------
    >>> from repro.query import RangePredicate, EqualityPredicate, compile_predicate
    >>> test = compile_predicate(RangePredicate(2, 5))
    >>> [test(v) for v in (1, 2, 5, 6)]
    [False, True, True, False]
    >>> compile_predicate(EqualityPredicate(None)) is None
    True
    """
    if isinstance(pred, EqualityPredicate):
        if pred.value is None:
            return None
        want = int(pred.value)
        return lambda v: v == want
    lo, hi = pred.lo, pred.hi
    if lo is None and hi is None:
        return None
    if lo is None:
        top = int(hi)  # type: ignore[arg-type]
        return lambda v: v <= top
    if hi is None:
        bot = int(lo)
        return lambda v: v >= bot
    if lo == hi:
        want = int(lo)
        return lambda v: v == want
    bot, top = int(lo), int(hi)
    return lambda v: bot <= v <= top


def compile_matcher(
    predicates: Sequence[Predicate], skip: int | None = None
) -> Callable[[Sequence[int]], bool] | None:
    """Compile a predicate vector into one row-matching closure.

    This is the hot-path replacement for evaluating
    ``all(pred.matches(row[i]) for i, pred in enumerate(predicates))``
    per row: a single code-generation pass emits one conjunction with
    the constants inlined (e.g. ``lambda r: 1 <= r[0] <= 5 and
    r[2] == 3``), so a scan over the whole table dispatches **zero**
    predicate methods.  Unconstrained predicates are dropped from the
    conjunction; ``skip`` excludes one attribute index (used by
    :class:`repro.server.engines.IndexedEngine`, whose candidate index
    already enforces that attribute).  Returns ``None`` when nothing
    remains to test -- i.e. every row matches.

    Examples
    --------
    >>> from repro.query import RangePredicate, EqualityPredicate, compile_matcher
    >>> match = compile_matcher((RangePredicate(1, 5), EqualityPredicate(3)))
    >>> match((2, 3)), match((2, 4)), match((0, 3))
    (True, False, False)
    >>> compile_matcher((RangePredicate(), EqualityPredicate(None))) is None
    True
    """
    parts: list[str] = []
    for i, pred in enumerate(predicates):
        if i == skip:
            continue
        if isinstance(pred, EqualityPredicate):
            if pred.value is not None:
                parts.append(f"r[{i}] == {int(pred.value)}")
            continue
        lo, hi = pred.lo, pred.hi
        if lo is not None and hi is not None:
            if lo == hi:
                parts.append(f"r[{i}] == {int(lo)}")
            else:
                parts.append(f"{int(lo)} <= r[{i}] <= {int(hi)}")
        elif lo is not None:
            parts.append(f"r[{i}] >= {int(lo)}")
        elif hi is not None:
            parts.append(f"r[{i}] <= {int(hi)}")
    if not parts:
        return None
    return eval(  # noqa: S307 -- source built solely from int() constants
        "lambda r: " + " and ".join(parts), {"__builtins__": {}}
    )
