"""Adversarial servers: the interface's freedom, made executable.

Section 1.1 of the paper leaves the server one degree of freedom: when
a query overflows, *it* chooses which ``k`` qualifying tuples to return
(footnote 2: "usually the k tuples that have the highest priorities ...
according to a ranking function").  Two consequences of the theory are
worth testing as code:

1. **The Theorem 1 guarantees are choice-independent.**  Every upper
   bound holds for *any* deterministic choice of the ``k``-subset --
   the proofs never assume randomness.  :class:`AdversarialTopKServer`
   lets a :class:`ResponsePolicy` make the choice (rank by an
   attribute like a "cheapest first" site, or cluster the response
   around one value to force rank-shrink's 3-way splits), and the test
   suite re-checks every crawler's cost bound under each policy.

2. **The ``> k`` duplicates impossibility is real.**  The paper argues
   Problem 1 is unsolvable when a point holds more than ``k`` identical
   tuples, because the server "can always choose to leave ``t_{k+1}``
   out of its response".  :class:`DuplicateHidingServer` *is* that
   server: it deterministically withholds one designated copy forever,
   while staying fully within the interface contract.  No algorithm
   can extract the hidden copy -- crawlers detect the situation and
   raise :class:`~repro.exceptions.InfeasibleCrawlError` instead.

Both servers satisfy the :class:`~repro.server.interface.QueryInterface`
protocol, so every crawler runs against them unchanged.
"""

from __future__ import annotations

import abc
from collections import Counter
from collections.abc import Sequence

from repro.dataspace.dataset import Dataset
from repro.dataspace.space import DataSpace
from repro.exceptions import AlgorithmInvariantError, SchemaError
from repro.query.query import Query
from repro.server.engines import make_engine
from repro.server.response import QueryResponse, Row

__all__ = [
    "ResponsePolicy",
    "PriorityOrderPolicy",
    "RankByAttributePolicy",
    "ModeClusterPolicy",
    "AdversarialTopKServer",
    "DuplicateHidingServer",
]


class ResponsePolicy(abc.ABC):
    """Chooses the ``k`` tuples an overflowing query returns.

    A policy must be a *pure function* of the full result: the server
    answers repeated queries identically (the Section 1.1 contract),
    which holds exactly when the policy is deterministic.
    """

    #: Human-readable policy name, for reports.
    name: str = "policy"

    @abc.abstractmethod
    def select(
        self, matching: Sequence[Row], k: int, query: Query
    ) -> list[Row]:
        """Pick ``k`` of the ``matching`` tuples (given in priority order)."""


class PriorityOrderPolicy(ResponsePolicy):
    """The reference behaviour: the first ``k`` tuples in priority order.

    With this policy :class:`AdversarialTopKServer` answers exactly like
    :class:`~repro.server.server.TopKServer`, which the tests use to
    validate the adversarial evaluation path itself.
    """

    name = "priority-order"

    def select(
        self, matching: Sequence[Row], k: int, query: Query
    ) -> list[Row]:
        return list(matching[:k])


class RankByAttributePolicy(ResponsePolicy):
    """A ranking function: ``k`` smallest (or largest) on one attribute.

    This models real sites that order results by price, year or
    mileage.  For a crawler it is *adversarially skewed*: the sample an
    overflowing query returns is a one-sided extreme of the true
    result, so rank-shrink's pivot (the ``k/2``-th returned value) is a
    low quantile of ``q(D)`` rather than its median.  The Theorem 1
    bound survives -- its proof only counts tuples of the *returned*
    bag on each side of the pivot.
    """

    def __init__(self, attribute: int, *, descending: bool = False):
        self._attribute = attribute
        self._descending = descending
        order = "desc" if descending else "asc"
        self.name = f"rank-by-A{attribute + 1}-{order}"

    def select(
        self, matching: Sequence[Row], k: int, query: Query
    ) -> list[Row]:
        j = self._attribute
        # Stable sort: equal-key tuples keep priority order, so the
        # choice is deterministic.
        ranked = sorted(
            matching, key=lambda row: -row[j] if self._descending else row[j]
        )
        return ranked[:k]


class ModeClusterPolicy(ResponsePolicy):
    """Concentrate the response on one attribute's most common value.

    Returns every qualifying tuple carrying the modal value of the
    chosen attribute first (ties broken toward the smaller value), then
    fills up with the remaining tuples in priority order.  Against
    rank-shrink this maximises ties at the pivot, pushing the algorithm
    into Case 2 (3-way splits) as often as the data allows -- the very
    case that contributes the ``d`` factor to the ``O(d n / k)`` bound.
    """

    def __init__(self, attribute: int):
        self._attribute = attribute
        self.name = f"mode-cluster-A{attribute + 1}"

    def select(
        self, matching: Sequence[Row], k: int, query: Query
    ) -> list[Row]:
        j = self._attribute
        counts = Counter(row[j] for row in matching)
        # Most common value; deterministic tie-break toward smaller value.
        mode = min(counts, key=lambda v: (-counts[v], v))
        clustered = [row for row in matching if row[j] == mode]
        rest = [row for row in matching if row[j] != mode]
        return (clustered + rest)[:k]


class AdversarialTopKServer:
    """A contract-conforming server with a pluggable ``k``-subset choice.

    Parameters
    ----------
    dataset:
        The hidden content.
    k:
        The retrieval limit.
    policy:
        The :class:`ResponsePolicy` choosing overflow responses.
    engine:
        Evaluation engine for the *full* result of each query (the
        policy needs all of ``q(D)``, not just ``k`` tuples).

    Notes
    -----
    The server keeps the policy honest: a selection that is not a
    ``k``-sized sub-bag of the true result raises
    :class:`AlgorithmInvariantError` -- an adversary may choose, but
    never lie.
    """

    def __init__(
        self,
        dataset: Dataset,
        k: int,
        policy: ResponsePolicy,
        *,
        engine: str = "vector",
    ):
        if k < 1:
            raise SchemaError(f"k must be at least 1, got {k}")
        self._dataset = dataset
        self._k = k
        self._policy = policy
        self._engine = make_engine(engine, dataset.rows)

    # ------------------------------------------------------------------
    # The QueryInterface protocol
    # ------------------------------------------------------------------
    @property
    def space(self) -> DataSpace:
        """The public schema."""
        return self._dataset.space

    @property
    def k(self) -> int:
        """The retrieval limit."""
        return self._k

    def run(self, query: Query) -> QueryResponse:
        """Answer per Section 1.1, the policy choosing overflow subsets."""
        if query.space != self._dataset.space:
            raise SchemaError("query was built against a different data space")
        matching, _ = self._engine.top(query, self._dataset.n)
        if len(matching) <= self._k:
            return QueryResponse(tuple(matching), overflow=False)
        chosen = self._policy.select(matching, self._k, query)
        self._check_honest(chosen, matching)
        return QueryResponse(tuple(chosen), overflow=True)

    def _check_honest(self, chosen: list[Row], matching: list[Row]) -> None:
        if len(chosen) != self._k:
            raise AlgorithmInvariantError(
                f"policy {self._policy.name!r} returned {len(chosen)} "
                f"tuples instead of k={self._k}"
            )
        if Counter(chosen) - Counter(matching):
            raise AlgorithmInvariantError(
                f"policy {self._policy.name!r} returned tuples outside "
                "the query's true result"
            )

    def __repr__(self) -> str:
        return (
            f"AdversarialTopKServer(n={self._dataset.n}, k={self._k}, "
            f"policy={self._policy.name})"
        )


class DuplicateHidingServer:
    """The impossibility adversary of Section 1.1.

    Built over a dataset holding more than ``k`` copies of one point,
    this server forever withholds one designated copy: every query the
    point satisfies necessarily overflows (more than ``k`` tuples
    qualify), so the interface never forces the copy out.  The served
    answers are fully consistent with a database that simply has one
    copy fewer -- which is exactly why no algorithm can tell the
    difference, i.e. why Problem 1 requires multiplicity at most ``k``.

    Parameters
    ----------
    dataset, k:
        The content and the retrieval limit.
    point:
        The overloaded point; its multiplicity must exceed ``k``.
    """

    def __init__(self, dataset: Dataset, k: int, point: Sequence[int]):
        if k < 1:
            raise SchemaError(f"k must be at least 1, got {k}")
        self._point = dataset.space.validate_point(point)
        multiplicity = dataset.multiset()[self._point]
        if multiplicity <= k:
            raise SchemaError(
                f"point {self._point} holds {multiplicity} <= k={k} tuples; "
                "the hiding argument needs more than k duplicates"
            )
        self._dataset = dataset
        self._k = k
        self._engine = make_engine("vector", dataset.rows)
        #: Copies of the hidden tuple revealed across all responses (max).
        self._max_copies_revealed = 0

    # ------------------------------------------------------------------
    # The QueryInterface protocol
    # ------------------------------------------------------------------
    @property
    def space(self) -> DataSpace:
        """The public schema."""
        return self._dataset.space

    @property
    def k(self) -> int:
        """The retrieval limit."""
        return self._k

    def run(self, query: Query) -> QueryResponse:
        """Answer per Section 1.1, never surrendering the hidden copy."""
        if query.space != self._dataset.space:
            raise SchemaError("query was built against a different data space")
        matching, _ = self._engine.top(query, self._dataset.n)
        if not query.matches(self._point):
            overflow = len(matching) > self._k
            return QueryResponse(tuple(matching[: self._k]), overflow)
        # The point qualifies, so |q(D)| > k: the query overflows and we
        # may pick any k-sub-bag.  Drop one copy of the hidden tuple
        # first, then return the top k of what remains.
        assert len(matching) > self._k
        withheld = list(matching)
        withheld.remove(self._point)
        response = withheld[: self._k]
        self._max_copies_revealed = max(
            self._max_copies_revealed,
            sum(1 for row in response if row == self._point),
        )
        return QueryResponse(tuple(response), overflow=True)

    # ------------------------------------------------------------------
    # Verification-side introspection
    # ------------------------------------------------------------------
    @property
    def hidden_point(self) -> Row:
        """The point whose last copy is withheld."""
        return self._point

    @property
    def max_copies_revealed(self) -> int:
        """Most copies of the hidden point any single response exposed.

        Provably at most ``multiplicity - 1``: the proof of the
        impossibility argument, measured.
        """
        return self._max_copies_revealed

    def __repr__(self) -> str:
        return (
            f"DuplicateHidingServer(n={self._dataset.n}, k={self._k}, "
            f"point={self._point})"
        )
