"""Closed-form cost bounds from the paper's theorems.

Upper bounds (Theorem 1, with the explicit constants from the proofs of
Lemmas 1, 2, 4 and 9) and lower bounds (the trivial ``n/k``, Theorem 3's
``d*m`` and Theorem 4's ``Omega(d U^2)``).  The test suite pins every
crawler's measured cost inside these envelopes, so an implementation
regression that voids a guarantee fails loudly.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.dataspace.dataset import Dataset
from repro.dataspace.space import SpaceKind

__all__ = [
    "trivial_lower_bound",
    "rank_shrink_upper_bound",
    "slice_cover_upper_bound",
    "hybrid_upper_bound",
    "upper_bound_for_dataset",
    "theorem3_parameters",
    "theorem3_lower_bound",
    "theorem4_parameters_valid",
    "theorem4_lower_bound",
    "theorem4_upper_bound",
]


def _ceil_div(a: int, b: int) -> int:
    return -(a // -b)


def trivial_lower_bound(n: int, k: int) -> int:
    """``ceil(n/k)``: every query returns at most ``k`` tuples."""
    if n <= 0:
        return 1
    return _ceil_div(n, k)


def rank_shrink_upper_bound(n: int, k: int, d: int) -> int:
    """Lemma 2 with its explicit constant: at most ``20 d n / k`` queries.

    The proof shows the recursion tree has fewer than ``12 n / k``
    internal nodes and that the inductive constant ``alpha = 20``
    suffices; we add 1 for the root query of a trivially-resolved crawl.
    """
    return 20 * d * _ceil_div(max(n, 1), k) + 1


def slice_cover_upper_bound(
    n: int, k: int, domain_sizes: Sequence[int]
) -> int:
    """Lemma 4: ``U1`` if ``d = 1``; else ``sum Ui + (n/k) sum min(Ui, n/k)``.

    One extra query is allowed for lazy-slice-cover's root query (eager
    slice-cover never issues the root; see DESIGN.md).
    """
    if len(domain_sizes) == 1:
        return domain_sizes[0] + 1
    ratio = _ceil_div(max(n, 1), k)
    slices = sum(domain_sizes)
    traversal = ratio * sum(min(u, ratio) for u in domain_sizes)
    return slices + traversal + 1


def hybrid_upper_bound(
    n: int, k: int, categorical_domain_sizes: Sequence[int], d: int
) -> int:
    """Lemma 9, with Lemma 2's constant for the numeric sub-crawls.

    ``cat = 1``: ``U1 + O((d - 1) n / k)``.  ``cat > 1``: the Lemma 4
    slice/traversal terms plus ``O((d - cat) n / k)``.
    """
    cat = len(categorical_domain_sizes)
    if cat == 0:
        return rank_shrink_upper_bound(n, k, d)
    ratio = _ceil_div(max(n, 1), k)
    numeric_term = 20 * (d - cat) * ratio if d > cat else 0
    if cat == 1:
        return categorical_domain_sizes[0] + numeric_term + 2
    slices = sum(categorical_domain_sizes)
    traversal = ratio * sum(min(u, ratio) for u in categorical_domain_sizes)
    return slices + traversal + numeric_term + 2


def upper_bound_for_dataset(dataset: Dataset, k: int) -> int:
    """The Theorem 1 bound matching the dataset's space kind."""
    space = dataset.space
    if space.kind is SpaceKind.NUMERIC:
        return rank_shrink_upper_bound(dataset.n, k, space.dimensionality)
    if space.kind is SpaceKind.CATEGORICAL:
        return slice_cover_upper_bound(
            dataset.n, k, list(space.categorical_domain_sizes)
        )
    return hybrid_upper_bound(
        dataset.n,
        k,
        list(space.categorical_domain_sizes),
        space.dimensionality,
    )


# ----------------------------------------------------------------------
# Theorem 3: the numeric lower bound
# ----------------------------------------------------------------------
def theorem3_parameters(k: int, d: int, m: int) -> dict[str, int]:
    """Derived quantities of the Theorem 3 instance (requires ``d <= k``)."""
    if d > k:
        raise ValueError(f"Theorem 3 requires d <= k, got d={d}, k={k}")
    n = m * (k + d)
    return {"n": n, "groups": m, "diagonal": k * m, "non_diagonal": d * m}


def theorem3_lower_bound(d: int, m: int) -> int:
    """Any correct algorithm performs at least ``d * m`` queries.

    Lemma 5: each of the ``d*m`` non-diagonal points must be covered by
    a distinct *resolved* query.
    """
    return d * m


# ----------------------------------------------------------------------
# Theorem 4: the categorical lower bound
# ----------------------------------------------------------------------
def theorem4_parameters_valid(k: int, U: int) -> bool:
    """Whether ``(k, U)`` satisfies Theorem 4's side conditions.

    Requires ``U >= 3``, ``k >= 3``, ``d = 2k`` and ``d U^2 <= 2^(d/4)``.
    """
    d = 2 * k
    return U >= 3 and k >= 3 and d * U * U <= 2 ** (d / 4)


def theorem4_lower_bound(d: int, U: int) -> int:
    """A concrete floor below the ``Omega(d U^2)`` bound.

    The proof's dichotomy: either at least ``(d/8) * C(U, 2)`` diverse
    queries are issued, or at least ``2^(d/4) >= d U^2`` resolved
    monotonic queries are; the minimum of the two is a valid concrete
    lower bound for any correct algorithm.
    """
    diverse_branch = (d // 8) * math.comb(U, 2)
    monotonic_branch = d * U * U
    return max(1, min(diverse_branch, monotonic_branch))


def theorem4_upper_bound(k: int, U: int) -> int:
    """Slice-cover's Lemma 4 bound on the Theorem 4 instance.

    With ``n = d U`` and ``d = 2k``: ``n/k = 2U``, so the bound is
    ``d U + 2U * d U = d U (1 + 2U)`` -- within a constant factor of the
    ``Omega(d U^2)`` lower bound, which is the optimality claim.
    """
    d = 2 * k
    return slice_cover_upper_bound(d * U, k, [U] * d)
