"""Theory layer: bounds, recursion trees, hardness checks, adversaries."""

from repro.theory.adversary import (
    AdversarialTopKServer,
    DuplicateHidingServer,
    ModeClusterPolicy,
    PriorityOrderPolicy,
    RankByAttributePolicy,
    ResponsePolicy,
)
from repro.theory.bounds import (
    hybrid_upper_bound,
    rank_shrink_upper_bound,
    slice_cover_upper_bound,
    theorem3_lower_bound,
    theorem3_parameters,
    theorem4_lower_bound,
    theorem4_parameters_valid,
    theorem4_upper_bound,
    trivial_lower_bound,
    upper_bound_for_dataset,
)
from repro.theory.hardness import (
    check_lemma5_cover,
    check_lemma7_diverse_resolves,
    check_lemma8_monotonic_width,
    classify_categorical_query,
    resolved_queries,
)
from repro.theory.recursion_tree import (
    RecursionTreeAnalysis,
    RecursionTreeTracer,
    TreeNode,
)

__all__ = [
    "AdversarialTopKServer",
    "DuplicateHidingServer",
    "ModeClusterPolicy",
    "PriorityOrderPolicy",
    "RankByAttributePolicy",
    "ResponsePolicy",
    "hybrid_upper_bound",
    "rank_shrink_upper_bound",
    "slice_cover_upper_bound",
    "theorem3_lower_bound",
    "theorem3_parameters",
    "theorem4_lower_bound",
    "theorem4_parameters_valid",
    "theorem4_upper_bound",
    "trivial_lower_bound",
    "upper_bound_for_dataset",
    "check_lemma5_cover",
    "check_lemma7_diverse_resolves",
    "check_lemma8_monotonic_width",
    "classify_categorical_query",
    "resolved_queries",
    "RecursionTreeAnalysis",
    "RecursionTreeTracer",
    "TreeNode",
]
