"""Instrumented recursion tree for rank-shrink (the proof object of Lemma 1).

The cost analysis of rank-shrink argues over a *recursion tree*: nodes
are queries, a split's products are the splitting query's children, and
the leaves partition the processed region.  Lemma 1 classifies the
leaves of the 1-d tree:

* **type 1** -- the middle band of a 3-way split (resolved immediately;
  its point holds at least ``k/4`` identical tuples);
* **type 2** -- any other leaf covering at least ``k/4`` tuples;
* **type 3** -- a leaf covering fewer than ``k/4`` tuples.

and counts: at most ``4n/k`` leaves of types 1+2, at most twice as many
type-3 leaves as type-2+1 (each type-3 leaf is the sibling of a type-1
or type-2 leaf), hence ``O(n/k)`` nodes in total.

Passing a :class:`RecursionTreeTracer` to rank-shrink records the tree;
:class:`RecursionTreeAnalysis` recomputes the leaf classes against the
ground-truth dataset so tests can check the counting argument on real
executions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dataspace.dataset import Dataset
from repro.query.query import Query

__all__ = ["TreeNode", "RecursionTreeTracer", "RecursionTreeAnalysis"]


@dataclass
class TreeNode:
    """One query of the rank-shrink recursion."""

    node_id: int
    query: Query
    parent_id: int | None
    #: "root", or the node's role in its parent's split: "left" / "mid" / "right".
    role: str
    resolved: bool = False
    #: "2way" / "3way" when the node split, else None (leaf).
    split_kind: str | None = None
    split_dim: int | None = None
    split_value: int | None = None
    children: list[int] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        """Whether the node never split (its query resolved)."""
        return self.split_kind is None


class RecursionTreeTracer:
    """Collects the recursion tree while rank-shrink runs."""

    def __init__(self):
        self.nodes: list[TreeNode] = []

    # -- hooks called by repro.crawl.rank_shrink.solve_numeric ---------
    def enter(
        self, query: Query, parent: TreeNode | None, role: str
    ) -> TreeNode:
        node = TreeNode(
            node_id=len(self.nodes),
            query=query,
            parent_id=None if parent is None else parent.node_id,
            role=role,
        )
        self.nodes.append(node)
        if parent is not None:
            parent.children.append(node.node_id)
        return node

    def mark_resolved(self, node: TreeNode) -> None:
        node.resolved = True

    def mark_split(
        self, node: TreeNode, kind: str, dim: int, value: int
    ) -> None:
        node.split_kind = kind
        node.split_dim = dim
        node.split_value = value

    # -- structure accessors -------------------------------------------
    @property
    def size(self) -> int:
        """Total number of nodes (= queries issued by rank-shrink)."""
        return len(self.nodes)

    def leaves(self) -> list[TreeNode]:
        """All leaves, i.e. resolved queries."""
        return [node for node in self.nodes if node.is_leaf]

    def internal_nodes(self) -> list[TreeNode]:
        """All splitting nodes."""
        return [node for node in self.nodes if not node.is_leaf]

    def siblings(self, node: TreeNode) -> list[TreeNode]:
        """The other children of the node's parent."""
        if node.parent_id is None:
            return []
        parent = self.nodes[node.parent_id]
        return [
            self.nodes[child_id]
            for child_id in parent.children
            if child_id != node.node_id
        ]


class RecursionTreeAnalysis:
    """Lemma 1's leaf classification, recomputed against the ground truth."""

    def __init__(self, tracer: RecursionTreeTracer, dataset: Dataset, k: int):
        self._tracer = tracer
        self._dataset = dataset
        self._k = k

    def tuples_covered(self, node: TreeNode) -> int:
        """``|q(D)|`` for the node's query (operator-side knowledge)."""
        return sum(
            1 for row in self._dataset.iter_rows() if node.query.matches(row)
        )

    def leaf_type(self, node: TreeNode) -> int:
        """The Lemma 1 class (1, 2, or 3) of a leaf."""
        if not node.is_leaf:
            raise ValueError("leaf_type is defined for leaves only")
        covered = self.tuples_covered(node)
        threshold = self._k / 4
        if node.role == "mid" and covered >= threshold:
            return 1
        if covered >= threshold:
            return 2
        return 3

    def leaf_type_counts(self) -> dict[int, int]:
        """How many leaves fall in each Lemma 1 class."""
        counts = {1: 0, 2: 0, 3: 0}
        for leaf in self._tracer.leaves():
            counts[self.leaf_type(leaf)] += 1
        return counts

    def check_lemma1_counts(self) -> None:
        """Assert the counting argument of Lemma 1 on this execution.

        * types 1 and 2 together: at most ``4 n / k`` leaves;
        * every type-3 leaf has a sibling of type 1 or 2 (hence at most
          ``8 n / k`` of them);
        * internal nodes are fewer than the leaves (each split adds at
          least one node).
        """
        counts = self.leaf_type_counts()
        n = self._dataset.n
        heavy_cap = 4 * n / self._k
        if counts[1] + counts[2] > heavy_cap:
            raise AssertionError(
                f"{counts[1] + counts[2]} type-1/2 leaves exceed 4n/k = "
                f"{heavy_cap}"
            )
        for leaf in self._tracer.leaves():
            if self.leaf_type(leaf) != 3:
                continue
            sibling_types = [
                self.leaf_type(s)
                for s in self._tracer.siblings(leaf)
                if s.is_leaf
            ]
            if not any(t in (1, 2) for t in sibling_types):
                raise AssertionError(
                    f"type-3 leaf {leaf.node_id} has no type-1/2 leaf sibling"
                )
        internal = len(self._tracer.internal_nodes())
        if internal > max(1, len(self._tracer.leaves())):
            raise AssertionError("more internal nodes than leaves")
