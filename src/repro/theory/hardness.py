"""Checkers for the lower-bound proof machinery (Sections 4.1 and 4.2).

The adversarial arguments of Theorems 3 and 4 make concrete claims about
what any *correct* execution must look like on the hard instances.
Because our crawlers are correct, those claims are testable invariants
of real executions:

* **Lemma 5** (numeric): on the Theorem 3 instance, every non-diagonal
  point is covered by at least one resolved query, and no resolved
  query covers two non-diagonal points -- hence cost >= ``d*m``.
* **Lemma 7** (categorical): a *diverse* query (two non-wildcard
  predicates with different constants) matches at most two tuples of the
  Theorem 4 instance, so it always resolves.
* **Lemma 8** (categorical): a resolved *monotonic* query (>= 2
  non-wildcard predicates, all the same constant) has at least ``d/2``
  non-wildcard predicates.

These checkers double as validation of the hard-instance generators in
:mod:`repro.datasets.hard`.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.query.predicates import EqualityPredicate, RangePredicate
from repro.query.query import Query
from repro.server.response import QueryResponse

__all__ = [
    "resolved_queries",
    "check_lemma5_cover",
    "classify_categorical_query",
    "check_lemma7_diverse_resolves",
    "check_lemma8_monotonic_width",
]

CrawlLog = Iterable[tuple[Query, QueryResponse]]


def resolved_queries(log: CrawlLog) -> list[Query]:
    """The resolved queries of an execution log."""
    return [query for query, response in log if response.resolved]


def check_lemma5_cover(
    log: CrawlLog, non_diagonal_points: Sequence[tuple[int, ...]]
) -> int:
    """Verify Lemma 5 on an execution over the Theorem 3 instance.

    Returns the number of resolved queries (a witness that cost >= the
    number of non-diagonal points).

    Raises
    ------
    AssertionError
        If some non-diagonal point is covered by no resolved query, or
        one resolved query covers two of them (contradicting the proof).
    """
    resolved = resolved_queries(log)
    for point in non_diagonal_points:
        if not any(q.matches(point) for q in resolved):
            raise AssertionError(
                f"non-diagonal point {point} not covered by any resolved "
                "query -- the crawl could not have been correct"
            )
    for query in resolved:
        covered = [p for p in non_diagonal_points if query.matches(p)]
        if len(covered) > 1:
            raise AssertionError(
                f"resolved query {query} covers {len(covered)} non-diagonal "
                f"points ({covered[:2]}...), contradicting Lemma 5"
            )
    return len(resolved)


def classify_categorical_query(query: Query) -> str:
    """Theorem 4's taxonomy: ``diverse``, ``monotonic`` or ``other``.

    * diverse -- at least two non-wildcard predicates carrying *different*
      constants;
    * monotonic -- at least two non-wildcard predicates, all carrying the
      *same* constant;
    * other -- at most one non-wildcard predicate.
    """
    constants: list[int] = []
    for pred in query.predicates:
        if isinstance(pred, EqualityPredicate):
            if pred.value is not None:
                constants.append(pred.value)
        elif isinstance(pred, RangePredicate):  # pragma: no cover - defensive
            raise ValueError("Theorem 4 queries are categorical")
    if len(constants) < 2:
        return "other"
    if len(set(constants)) == 1:
        return "monotonic"
    return "diverse"


def check_lemma7_diverse_resolves(log: CrawlLog) -> int:
    """Every diverse query in the log must have resolved (Lemma 7)."""
    checked = 0
    for query, response in log:
        if classify_categorical_query(query) == "diverse":
            checked += 1
            if response.overflow:
                raise AssertionError(
                    f"diverse query {query} overflowed, contradicting Lemma 7"
                )
    return checked


def check_lemma8_monotonic_width(log: CrawlLog, d: int) -> int:
    """Resolved monotonic queries pin at least ``d/2`` attributes (Lemma 8)."""
    checked = 0
    for query, response in log:
        if response.overflow:
            continue
        if classify_categorical_query(query) != "monotonic":
            continue
        checked += 1
        pinned = sum(
            1
            for pred in query.predicates
            if isinstance(pred, EqualityPredicate) and pred.value is not None
        )
        if pinned < d / 2:
            raise AssertionError(
                f"resolved monotonic query {query} pins only {pinned} < d/2 "
                f"= {d / 2} attributes, contradicting Lemma 8"
            )
    return checked
