"""Crawl-as-a-service: a multi-tenant job server over a durable store.

The paper models one crawl as one batch run; the service layer turns
the same machinery into a long-running server that multiplexes many
concurrent crawl jobs from many tenants over one shared worker fleet:

* :class:`~repro.service.store.ResultStore` -- rows stream into SQLite
  as regions complete (the executor layer's ``on_region`` seam), so a
  job's output survives process death and is queryable mid-crawl;
* :class:`~repro.service.jobs.JobManager` -- admission through
  per-tenant limits
  (:class:`~repro.crawl.coordinator.TenantLimitRegistry`), round-robin
  fairness across tenants on top of
  :class:`~repro.crawl.rebalance.WorkStealingScheduler`, and per-job
  lifecycle (``PENDING -> RUNNING -> DONE/FAILED/CANCELLED``);
* :class:`~repro.service.api.CrawlService` -- the thin facade
  (``submit`` / ``status`` / ``cancel`` / ``rows``) the ``repro-serve``
  CLI (:mod:`repro.service.__main__`) exposes.

Jobs are submitted as :class:`~repro.crawl.spec.CrawlSpec` objects --
the same config the batch CLI builds from its flags -- so a crawl means
exactly the same thing as a service job as it does on the command line.
"""

from repro.service.api import CrawlService
from repro.service.jobs import JobManager, JobState, JobStatus
from repro.service.store import ResultStore

__all__ = [
    "CrawlService",
    "JobManager",
    "JobState",
    "JobStatus",
    "ResultStore",
]
