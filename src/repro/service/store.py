"""Durable SQLite result store for the job service.

One database file holds every tenant's jobs: their identity (plan and
data-space signatures, reusing the checkpoint codecs of
:mod:`repro.crawl.checkpoint`), their lifecycle status, every completed
region's result, the extracted rows themselves, and each tenant's exact
admission charge.  Regions land in **one transaction each** -- region
metadata, its rows (batch-inserted) and the tenant's charge snapshot
commit atomically at the executor layer's ``on_region`` boundary -- so
killing the server at any instant loses at most the region in flight,
never a committed one, and a restarted server resumes from the store
re-issuing zero queries.

Rows are stored per (job, session, region index, position) and read
back ordered by exactly that key, which *is* the deterministic merge
order of :func:`~repro.crawl.partition._merge_session_results`: a
mid-crawl ``rows`` query returns a prefix-consistent view of what the
finished crawl will return, byte-identical region by region.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from collections.abc import Callable
from pathlib import Path

from repro.crawl.base import CrawlResult
from repro.crawl.checkpoint import (
    decode_result,
    encode_result,
    plan_signature,
    space_signature,
)
from repro.crawl.partition import PartitionPlan
from repro.crawl.rebalance import RegionKey
from repro.exceptions import SchemaError

__all__ = ["ResultStore"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    job_id        INTEGER PRIMARY KEY AUTOINCREMENT,
    tenant        TEXT NOT NULL,
    name          TEXT NOT NULL,
    status        TEXT NOT NULL,
    k             INTEGER NOT NULL,
    space         TEXT NOT NULL,
    plan          TEXT NOT NULL,
    regions_total INTEGER NOT NULL,
    priority      INTEGER NOT NULL DEFAULT 0,
    error         TEXT,
    UNIQUE (tenant, name)
);
CREATE TABLE IF NOT EXISTS regions (
    job_id       INTEGER NOT NULL REFERENCES jobs (job_id),
    session      INTEGER NOT NULL,
    region_index INTEGER NOT NULL,
    result       TEXT NOT NULL,
    cost         INTEGER NOT NULL,
    tuples       INTEGER NOT NULL,
    PRIMARY KEY (job_id, session, region_index)
);
CREATE TABLE IF NOT EXISTS rows (
    job_id       INTEGER NOT NULL,
    session      INTEGER NOT NULL,
    region_index INTEGER NOT NULL,
    position     INTEGER NOT NULL,
    row          TEXT NOT NULL,
    PRIMARY KEY (job_id, session, region_index, position)
);
CREATE TABLE IF NOT EXISTS tenants (
    tenant TEXT PRIMARY KEY,
    charge TEXT NOT NULL
);
"""

#: Job statuses the store accepts (the service's JobState values).
_STATUSES = frozenset({"pending", "running", "done", "failed", "cancelled"})


class ResultStore:
    """The service's one durable plane: jobs, regions, rows, charges.

    Thread-safe over a single connection (one lock serialises access;
    SQLite's WAL journal keeps each region commit atomic), usable from
    however many fleet workers file regions at once.  Open it as a
    context manager or call :meth:`close`.

    Examples
    --------
    File regions as they complete, query rows mid-crawl::

        with ResultStore("crawl.db") as store:
            job_id, completed = store.open_job("acme", "demo", plan, k)
            store.region_done(job_id, (0, 0), result)
            store.rows(job_id)   # every committed row, merge-ordered
    """

    def __init__(self, path: str | Path):
        self._path = Path(path)
        # Autocommit mode: every write lands immediately unless wrapped
        # in the explicit BEGIN IMMEDIATE of region_done, whose commit
        # is the one durability boundary that must be atomic.
        self._conn = sqlite3.connect(
            str(self._path), check_same_thread=False, isolation_level=None
        )
        self._lock = threading.RLock()
        with self._lock:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.executescript(_SCHEMA)
            # Databases created before job priorities existed lack the
            # column; add it in place (default 0 = the old behaviour)
            # so an upgraded server opens its old store unchanged.
            columns = {
                row[1]
                for row in self._conn.execute("PRAGMA table_info(jobs)")
            }
            if "priority" not in columns:
                self._conn.execute(
                    "ALTER TABLE jobs ADD COLUMN priority "
                    "INTEGER NOT NULL DEFAULT 0"
                )
            self._conn.commit()

    @property
    def path(self) -> Path:
        """The database file."""
        return self._path

    def close(self) -> None:
        """Close the connection (committed state stays on disk)."""
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Jobs
    # ------------------------------------------------------------------
    def open_job(
        self,
        tenant: str,
        name: str,
        plan: PartitionPlan,
        k: int,
        *,
        priority: int = 0,
    ) -> tuple[int, dict[RegionKey, CrawlResult]]:
        """Create -- or resume -- the job ``(tenant, name)``.

        A new job is inserted as ``pending`` with the plan's identity
        embedded.  An existing job is validated against it (same data
        space, same ``k``, same plan -- :class:`SchemaError` otherwise,
        foreign results must never be spliced) and its committed
        regions are returned as a ``completed`` map: pre-file them into
        the executor and those regions re-issue **zero** queries.  A
        non-terminal existing job is reset to ``pending`` (the previous
        server died mid-crawl).  ``priority`` is recorded either way --
        a resubmission may re-class a job (the rows it already
        committed are priority-independent).
        """
        space = json.dumps(space_signature(plan.space))
        signature = json.dumps(plan_signature(plan), sort_keys=True)
        with self._lock:
            row = self._conn.execute(
                "SELECT job_id, status, k, space, plan FROM jobs "
                "WHERE tenant = ? AND name = ?",
                (tenant, name),
            ).fetchone()
            if row is None:
                cursor = self._conn.execute(
                    "INSERT INTO jobs (tenant, name, status, k, space, "
                    "plan, regions_total, priority) VALUES (?, ?, "
                    "'pending', ?, ?, ?, ?, ?)",
                    (
                        tenant,
                        name,
                        int(k),
                        space,
                        signature,
                        len(plan.regions),
                        int(priority),
                    ),
                )
                self._conn.commit()
                return int(cursor.lastrowid), {}
            job_id, status, stored_k, stored_space, stored_plan = row
            if int(stored_k) != int(k):
                raise SchemaError(
                    f"job {tenant!r}/{name!r} was stored at "
                    f"k={stored_k}, the submission requests k={k}; "
                    "results would be inconsistent"
                )
            if stored_space != space:
                raise SchemaError(
                    f"job {tenant!r}/{name!r} was stored against a "
                    "different data space; its rows cannot be reused"
                )
            if stored_plan != signature:
                raise SchemaError(
                    f"job {tenant!r}/{name!r} was stored for a "
                    "different partition plan; its regions cannot be "
                    "filed into this plan's positions"
                )
            if status not in ("done", "cancelled"):
                self._conn.execute(
                    "UPDATE jobs SET status = 'pending', error = NULL, "
                    "priority = ? WHERE job_id = ?",
                    (int(priority), job_id),
                )
            else:
                self._conn.execute(
                    "UPDATE jobs SET priority = ? WHERE job_id = ?",
                    (int(priority), job_id),
                )
            self._conn.commit()
            return int(job_id), self._completed(int(job_id), plan)

    def find_job(self, tenant: str, name: str) -> int | None:
        """The job id of ``(tenant, name)``, or ``None``."""
        with self._lock:
            row = self._conn.execute(
                "SELECT job_id FROM jobs WHERE tenant = ? AND name = ?",
                (tenant, name),
            ).fetchone()
        return int(row[0]) if row is not None else None

    def set_status(
        self, job_id: int, status: str, *, error: str | None = None
    ) -> None:
        """Record a lifecycle transition (with an error for failures)."""
        if status not in _STATUSES:
            raise ValueError(f"unknown job status {status!r}")
        with self._lock:
            self._conn.execute(
                "UPDATE jobs SET status = ?, error = ? WHERE job_id = ?",
                (status, error, job_id),
            )
            self._conn.commit()

    def job_status(self, job_id: int) -> dict:
        """One job's durable status row, with live region aggregates.

        ``{"job_id", "tenant", "name", "status", "k", "regions_done",
        "regions_total", "cost", "tuples", "error", "priority"}`` --
        ``cost`` and ``tuples`` sum the *committed* regions, so a
        mid-crawl read reports exactly the progress that would survive
        a kill.
        """
        with self._lock:
            row = self._conn.execute(
                "SELECT job_id, tenant, name, status, k, regions_total, "
                "error, priority FROM jobs WHERE job_id = ?",
                (job_id,),
            ).fetchone()
            if row is None:
                raise KeyError(f"no job {job_id} in {self._path}")
            done, cost, tuples = self._conn.execute(
                "SELECT COUNT(*), COALESCE(SUM(cost), 0), "
                "COALESCE(SUM(tuples), 0) FROM regions WHERE job_id = ?",
                (job_id,),
            ).fetchone()
        return {
            "job_id": int(row[0]),
            "tenant": row[1],
            "name": row[2],
            "status": row[3],
            "k": int(row[4]),
            "regions_done": int(done),
            "regions_total": int(row[5]),
            "cost": int(cost),
            "tuples": int(tuples),
            "error": row[6],
            "priority": int(row[7]),
        }

    def list_jobs(self, tenant: str | None = None) -> list[dict]:
        """Status rows for every job (optionally one tenant's), by id."""
        with self._lock:
            query = "SELECT job_id FROM jobs"
            params: tuple = ()
            if tenant is not None:
                query += " WHERE tenant = ?"
                params = (tenant,)
            ids = [
                int(row[0])
                for row in self._conn.execute(
                    query + " ORDER BY job_id", params
                )
            ]
        return [self.job_status(job_id) for job_id in ids]

    # ------------------------------------------------------------------
    # Regions and rows
    # ------------------------------------------------------------------
    def region_done(
        self,
        job_id: int,
        key: RegionKey,
        result: CrawlResult,
        *,
        tenant_charge: tuple[str, dict | Callable[[], dict]] | None = None,
    ) -> None:
        """Commit one completed region -- atomically, rows included.

        The executor layer's ``on_region`` seam writes here: region
        metadata, its extracted rows and (when given) the tenant's
        admission-charge snapshot land in a single transaction, so the
        durable state always pairs rows with the queries they cost.
        Re-filing an already-committed region replaces it (idempotent
        -- a resumed job can safely race its own history).

        ``tenant_charge`` may carry the snapshot itself or a callable
        producing it.  Pass a callable when several workers commit for
        the same tenant concurrently: it is evaluated *inside* this
        store's serialized critical section, so the last commit always
        lands the freshest charge -- a snapshot read earlier, in the
        worker, could be overtaken by a sibling's queries and written
        last (a lost update that under-reports the charge).
        """
        session, index = key
        entry = encode_result(result)
        rows = entry.pop("rows")
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                self._conn.execute(
                    "INSERT OR REPLACE INTO regions (job_id, session, "
                    "region_index, result, cost, tuples) "
                    "VALUES (?, ?, ?, ?, ?, ?)",
                    (
                        job_id,
                        session,
                        index,
                        json.dumps(entry),
                        int(result.cost),
                        len(rows),
                    ),
                )
                self._conn.execute(
                    "DELETE FROM rows WHERE job_id = ? AND session = ? "
                    "AND region_index = ?",
                    (job_id, session, index),
                )
                self._conn.executemany(
                    "INSERT INTO rows (job_id, session, region_index, "
                    "position, row) VALUES (?, ?, ?, ?, ?)",
                    (
                        (job_id, session, index, pos, json.dumps(row))
                        for pos, row in enumerate(rows)
                    ),
                )
                if tenant_charge is not None:
                    tenant, charge = tenant_charge
                    if callable(charge):
                        charge = charge()
                    self._conn.execute(
                        "INSERT OR REPLACE INTO tenants (tenant, charge) "
                        "VALUES (?, ?)",
                        (tenant, json.dumps(charge)),
                    )
            except BaseException:
                self._conn.rollback()
                raise
            self._conn.commit()

    def _completed(
        self, job_id: int, plan: PartitionPlan
    ) -> dict[RegionKey, CrawlResult]:
        # Caller holds self._lock.
        completed: dict[RegionKey, CrawlResult] = {}
        for session, index, entry_json in self._conn.execute(
            "SELECT session, region_index, result FROM regions "
            "WHERE job_id = ? ORDER BY session, region_index",
            (job_id,),
        ):
            entry = json.loads(entry_json)
            entry["rows"] = [
                json.loads(row)
                for (row,) in self._conn.execute(
                    "SELECT row FROM rows WHERE job_id = ? AND "
                    "session = ? AND region_index = ? ORDER BY position",
                    (job_id, session, index),
                )
            ]
            completed[(int(session), int(index))] = decode_result(
                entry, plan.space
            )
        return completed

    def completed(
        self, job_id: int, plan: PartitionPlan
    ) -> dict[RegionKey, CrawlResult]:
        """Every committed region result, keyed by plan position.

        The resume map: hand it to the executor as ``completed=`` (or
        let :meth:`open_job` do it) and those regions are pre-filed
        without re-issuing a query.
        """
        with self._lock:
            return self._completed(job_id, plan)

    def rows(
        self,
        job_id: int,
        *,
        offset: int = 0,
        limit: int | None = None,
    ) -> list[tuple[int, ...]]:
        """Committed rows of a job, in deterministic merge order.

        Ordered by (session, region index, extraction position) --
        exactly the finished crawl's ``result.rows`` order -- and
        queryable **mid-crawl**: the answer is always the committed
        prefix of the final bag.  ``offset``/``limit`` page through
        that order (``limit=None`` reads to the end); because a page
        is read under the same lock region commits take, every page is
        a contiguous slice of some committed prefix -- never a torn
        view of a region mid-commit.
        """
        if offset < 0:
            raise ValueError(f"offset must be >= 0, got {offset}")
        if limit is not None and limit < 0:
            raise ValueError(f"limit must be >= 0 or None, got {limit}")
        with self._lock:
            return [
                tuple(json.loads(row))
                for (row,) in self._conn.execute(
                    "SELECT row FROM rows WHERE job_id = ? "
                    "ORDER BY session, region_index, position "
                    "LIMIT ? OFFSET ?",
                    (job_id, -1 if limit is None else int(limit), int(offset)),
                )
            ]

    # ------------------------------------------------------------------
    # Tenant charges
    # ------------------------------------------------------------------
    def save_tenant_charge(self, tenant: str, charge: dict) -> None:
        """Persist one tenant's exact admission charge snapshot."""
        with self._lock:
            self._conn.execute(
                "INSERT OR REPLACE INTO tenants (tenant, charge) "
                "VALUES (?, ?)",
                (tenant, json.dumps(charge)),
            )
            self._conn.commit()

    def tenant_charge(self, tenant: str) -> dict | None:
        """The persisted charge snapshot for ``tenant`` (or ``None``)."""
        with self._lock:
            row = self._conn.execute(
                "SELECT charge FROM tenants WHERE tenant = ?", (tenant,)
            ).fetchone()
        return json.loads(row[0]) if row is not None else None
