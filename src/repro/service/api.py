"""The service facade: one object, four verbs, one durable store.

:class:`CrawlService` wires the three service pieces together -- the
:class:`~repro.service.store.ResultStore`, the per-tenant
:class:`~repro.crawl.coordinator.TenantLimitRegistry` and the
:class:`~repro.service.jobs.JobManager` fleet -- behind the thin API
the ``repro-serve`` CLI (and any embedding program) talks to:
``submit``, ``status``, ``cancel``, ``rows``.
"""

from __future__ import annotations

from pathlib import Path

from repro.crawl.coordinator import TenantLimitRegistry
from repro.crawl.partition import PartitionedResult
from repro.crawl.spec import CrawlSpec
from repro.server.limits import SimulatedClock
from repro.service.jobs import DEFAULT_FLEET, JobManager, JobStatus
from repro.service.store import ResultStore

__all__ = ["CrawlService"]


class CrawlService:
    """A multi-tenant crawl job server over one durable SQLite store.

    Opening the service starts its worker fleet; closing it (context
    manager or :meth:`shutdown`) drains the fleet and closes the store.
    Everything a job produces is committed to the store region by
    region, so a service killed mid-crawl loses nothing committed:
    reopen the same store path, re-register the tenants, resubmit the
    jobs, and each resumes from its committed regions re-issuing zero
    queries -- with every tenant's exact admission charge restored.

    ``backend`` picks where region units crawl -- ``thread`` (inline
    on the fleet), ``process`` (a worker-process pool, per-tenant
    limits coordinator-hosted for exactly-once admission) or ``async``
    -- and ``max_pending`` bounds each tenant's pending + running jobs
    (refusals raise :class:`~repro.exceptions.RetryAfter`).

    Examples
    --------
    Serve two tenants' jobs concurrently over one fleet::

        with CrawlService("crawl.db", workers=4) as service:
            service.register_tenant("acme", budget=500)
            service.register_tenant("umbrella", budget=80)
            job = service.submit(
                "acme", dataset, k=64, name="demo",
                spec=CrawlSpec(max_workers=2),
            )
            service.wait(job)
            service.rows(job)    # the extracted bag, merge-ordered
    """

    def __init__(
        self,
        store_path: str | Path,
        *,
        workers: int = DEFAULT_FLEET,
        backend: str = "thread",
        max_pending: int | None = None,
        clock: SimulatedClock | None = None,
    ):
        self.store = ResultStore(store_path)
        self.registry = TenantLimitRegistry(clock=clock)
        self.manager = JobManager(
            self.store,
            self.registry,
            workers=workers,
            backend=backend,
            max_pending=max_pending,
        )

    def register_tenant(
        self,
        tenant: str,
        *,
        budget: int | None = None,
        per_day: int | None = None,
    ) -> None:
        """Declare a tenant and its quotas; restores persisted charges.

        Idempotent for equal quotas.  If the store holds the tenant's
        charge snapshot from a previous server life, it is restored
        under the registry's same-window semantics -- queries a dead
        server already charged stay charged.
        """
        self.registry.register(tenant, budget=budget, per_day=per_day)
        charge = self.store.tenant_charge(tenant)
        if charge is not None:
            self.registry.restore(tenant, charge)

    def submit(
        self,
        tenant: str,
        dataset,
        k: int,
        *,
        name: str,
        spec: CrawlSpec | None = None,
        sessions: int | None = None,
        seed: int = 0,
        priority: int = 0,
        wrap_source=None,
    ) -> int:
        """Queue a crawl job for ``tenant``; returns its durable id.

        See :meth:`JobManager.submit
        <repro.service.jobs.JobManager.submit>` -- the spec is the same
        :class:`~repro.crawl.spec.CrawlSpec` the batch CLI builds
        (its ``executor`` overrides the service backend per job),
        ``priority`` classes drain strictly before lower ones, and
        resubmitting an existing ``(tenant, name)`` resumes it from the
        store.  Raises :class:`~repro.exceptions.RetryAfter` when the
        tenant is at the service's ``max_pending`` bound.
        """
        return self.manager.submit(
            tenant,
            dataset,
            k,
            name=name,
            spec=spec,
            sessions=sessions,
            seed=seed,
            priority=priority,
            wrap_source=wrap_source,
        )

    def status(self, job_id: int) -> JobStatus:
        """The job's current lifecycle state and committed progress."""
        return self.manager.status(job_id)

    def cancel(self, job_id: int) -> bool:
        """Cancel an active job; ``False`` for terminal/unknown jobs."""
        return self.manager.cancel(job_id)

    def rows(
        self,
        job_id: int,
        *,
        offset: int = 0,
        limit: int | None = None,
    ) -> list[tuple[int, ...]]:
        """The job's committed rows, merge-ordered, mid-crawl included.

        ``offset``/``limit`` page through the deterministic merge
        order; every page is a contiguous slice of a committed prefix.
        """
        return self.store.rows(job_id, offset=offset, limit=limit)

    def queue_depth(self, tenant: str) -> int:
        """The tenant's admission depth (pending + running jobs)."""
        return self.manager.queue_depth(tenant)

    def wait_for_slot(
        self, tenant: str, timeout: float | None = None
    ) -> bool:
        """Block until the tenant is under the ``max_pending`` bound."""
        return self.manager.wait_for_slot(tenant, timeout)

    def wait(self, job_id: int, timeout: float | None = None) -> JobStatus:
        """Block until the job is terminal; returns its final status."""
        return self.manager.wait(job_id, timeout)

    def result(self, job_id: int) -> PartitionedResult:
        """A job finished in this server's lifetime, merged."""
        return self.manager.result(job_id)

    def shutdown(self) -> None:
        """Drain the fleet and close the store (idempotent)."""
        self.manager.shutdown()
        self.store.close()

    def __enter__(self) -> "CrawlService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
