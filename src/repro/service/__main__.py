"""CLI: serve multi-tenant crawl jobs over a durable SQLite store.

``repro-serve`` (also ``python -m repro.service``) drives
:class:`~repro.service.api.CrawlService` from a *jobs file* -- tenants
with their quotas, plus one entry per crawl job::

    {
      "tenants": {"acme": {"budget": 500}, "umbrella": {}},
      "jobs": [
        {"tenant": "acme", "name": "demo", "csv": "demo.csv", "k": 64,
         "algorithm": "hybrid", "workers": 2}
      ]
    }

Each job entry carries exactly the batch CLI's crawl flags as keys
(``algorithm``, ``workers``, ``rebalance``, ``shard_subtrees``, ...):
both front ends build their :class:`~repro.crawl.spec.CrawlSpec`
through the one :func:`~repro.crawl.spec.spec_from_args` mapping, so a
flag cannot mean two things.  Two service-only keys ride along:
``priority`` (integer admission class; higher classes drain strictly
first) and ``backend`` (override the server's unit backend for one
job).  Usage::

    repro-serve run jobs.json --store crawl.db --fleet 4
    repro-serve run jobs.json --store crawl.db --backend process
    repro-serve status --store crawl.db
    repro-serve rows --store crawl.db --tenant acme --name demo

``--backend process`` crawls region units on a worker-process pool
(per-tenant limits hosted on a coordinator process, admission
exactly-once); ``--max-pending N`` bounds each tenant's pending +
running jobs -- the CLI then waits for a slot and resubmits when the
service refuses with ``RetryAfter``.

``run`` submits every job (resuming any with committed regions already
in the store -- those re-issue zero queries), waits for the fleet, and
prints one status line per job; it exits 0 only when every job is
done.  ``status`` lists the store's jobs with their committed
progress.  ``rows`` prints a job's committed rows (merge-ordered,
mid-crawl included) as comma-separated values, or writes them to
``--output``.
"""

from __future__ import annotations

import argparse
import json
import sys
from types import SimpleNamespace

from repro.crawl.spec import spec_from_args
from repro.datasets.io import load_csv
from repro.exceptions import ReproError, RetryAfter
from repro.service.api import CrawlService
from repro.service.jobs import BACKENDS, DEFAULT_FLEET, JobState
from repro.service.store import ResultStore


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve multi-tenant crawl jobs over a durable "
        "SQLite store.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser(
        "run", help="submit a jobs file and wait for the fleet"
    )
    run.add_argument("jobs", help="jobs file (JSON: tenants + jobs)")
    run.add_argument(
        "--store", required=True, help="SQLite result store path"
    )
    run.add_argument(
        "--fleet",
        type=int,
        default=DEFAULT_FLEET,
        help=f"shared worker fleet size (default: {DEFAULT_FLEET})",
    )
    run.add_argument(
        "--backend",
        choices=BACKENDS,
        default="thread",
        help="where region units crawl (default: thread; a job entry's "
        "'backend' key overrides per job)",
    )
    run.add_argument(
        "--max-pending",
        type=int,
        default=None,
        help="per-tenant bound on pending + running jobs (default: "
        "unbounded); the CLI waits and resubmits on refusal",
    )

    status = commands.add_parser(
        "status", help="list the store's jobs and committed progress"
    )
    status.add_argument("--store", required=True)
    status.add_argument(
        "--tenant", default=None, help="restrict to one tenant"
    )

    rows = commands.add_parser(
        "rows", help="print a job's committed rows, merge-ordered"
    )
    rows.add_argument("--store", required=True)
    rows.add_argument("--tenant", required=True)
    rows.add_argument("--name", required=True)
    rows.add_argument(
        "--output", default=None, help="write rows here instead of stdout"
    )
    rows.add_argument(
        "--offset",
        type=int,
        default=0,
        help="skip this many rows of the merge order (default: 0)",
    )
    rows.add_argument(
        "--limit",
        type=int,
        default=None,
        help="print at most this many rows (default: all)",
    )
    return parser


def _status_line(status) -> str:
    state = getattr(status, "state", None)
    label = state.value if state is not None else status["status"]
    get = (
        (lambda key: getattr(status, key))
        if state is not None
        else status.__getitem__
    )
    line = (
        f"{get('tenant')}/{get('name')}: {label} "
        f"[{get('regions_done')}/{get('regions_total')} regions, "
        f"{get('cost')} queries, {get('tuples')} tuples]"
    )
    priority = get("priority")
    if priority:
        line += f" (priority {priority})"
    error = get("error")
    if error:
        line += f" -- {error}"
    return line


def _run(args) -> int:
    try:
        with open(args.jobs) as handle:
            config = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot load {args.jobs}: {exc}", file=sys.stderr)
        return 2
    entries = config.get("jobs", [])
    if not entries:
        print(f"error: {args.jobs} declares no jobs", file=sys.stderr)
        return 2
    datasets = {}
    with CrawlService(
        args.store,
        workers=args.fleet,
        backend=args.backend,
        max_pending=args.max_pending,
    ) as service:
        for tenant, quota in config.get("tenants", {}).items():
            service.register_tenant(
                tenant,
                budget=quota.get("budget"),
                per_day=quota.get("per_day"),
            )
        submitted = []
        for entry in entries:
            for field in ("tenant", "name", "csv", "k"):
                if field not in entry:
                    print(
                        f"error: job entry missing {field!r}: {entry}",
                        file=sys.stderr,
                    )
                    return 2
            path = entry["csv"]
            try:
                if path not in datasets:
                    datasets[path] = load_csv(path)
            except (OSError, ReproError) as exc:
                print(
                    f"error: cannot load {path}: {exc}", file=sys.stderr
                )
                return 2
            spec = spec_from_args(SimpleNamespace(**entry))
            while True:
                try:
                    job_id = service.submit(
                        entry["tenant"],
                        datasets[path],
                        int(entry["k"]),
                        name=entry["name"],
                        spec=spec,
                        sessions=entry.get("workers"),
                        seed=int(entry.get("seed", 0)),
                        priority=int(entry.get("priority", 0)),
                    )
                    break
                except RetryAfter as refusal:
                    # Backpressure, not failure: the tenant is at its
                    # pending bound.  Wait for one of its jobs to
                    # drain, then resubmit this entry.
                    print(
                        f"waiting: {refusal}",
                        file=sys.stderr,
                    )
                    service.wait_for_slot(entry["tenant"])
            submitted.append(job_id)
        failed = 0
        for job_id in submitted:
            status = service.wait(job_id)
            print(_status_line(status))
            if status.state is not JobState.DONE:
                failed += 1
    return 1 if failed else 0


def _status(args) -> int:
    with ResultStore(args.store) as store:
        jobs = store.list_jobs(args.tenant)
    if not jobs:
        print("no jobs in store")
        return 0
    for snapshot in jobs:
        print(_status_line(snapshot))
    return 0


def _rows(args) -> int:
    with ResultStore(args.store) as store:
        job_id = store.find_job(args.tenant, args.name)
        if job_id is None:
            print(
                f"error: no job {args.tenant}/{args.name} in "
                f"{args.store}",
                file=sys.stderr,
            )
            return 2
        rows = store.rows(job_id, offset=args.offset, limit=args.limit)
    lines = "".join(",".join(str(v) for v in row) + "\n" for row in rows)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(lines)
        print(f"{len(rows)} rows written to {args.output}")
    else:
        sys.stdout.write(lines)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _run(args)
    if args.command == "status":
        return _status(args)
    return _rows(args)


if __name__ == "__main__":
    raise SystemExit(main())
