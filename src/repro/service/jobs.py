"""The job server's scheduling core: one fleet, many tenants, fairness.

A :class:`JobManager` runs a fixed fleet of worker threads over every
active job at once.  Each job keeps its own
:class:`~repro.crawl.rebalance.WorkStealingScheduler` (regions in plan
order, estimate-guided stealing *within* the job) and its own
:class:`~repro.crawl.runtime.GridSink`; the manager's dispatch loop
round-robins **across tenants** on top of them: every time a worker
asks for work, the next tenant in rotation that has an acquirable
region gets the slot.  A tenant running ten jobs and a tenant running
one therefore drain at the same per-tenant rate -- the fairness
contract -- and a tenant whose budget is exhausted merely fails *its
own* regions (the per-tenant limits of
:class:`~repro.crawl.coordinator.TenantLimitRegistry` admit
independently), never stalling anyone else's.

Regions execute through the runtime's
:func:`~repro.crawl.runtime.run_region` -- the same unit of work every
batch executor bottoms out in -- so a job's stored output is
byte-identical to the standalone crawl of the same spec.  Completed
regions stream into the :class:`~repro.service.store.ResultStore`
(rows plus the tenant's exact charge, one transaction per region), and
a job resubmitted after a server death resumes from the store with its
committed regions pre-filed: zero queries re-issued.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass

from repro.crawl.base import CrawlResult
from repro.crawl.coordinator import TenantLimitRegistry
from repro.crawl.partition import (
    PartitionedResult,
    PartitionPlan,
    _merge_session_results,
    partition_space,
)
from repro.crawl.rebalance import RegionKey, WorkStealingScheduler
from repro.crawl.runtime import (
    AggregatorFeed,
    GridSink,
    LocalUnitRunner,
    ShardPolicy,
    run_region,
)
from repro.crawl.spec import CrawlSpec
from repro.service.store import ResultStore
from repro.server.server import TopKServer

__all__ = ["JobManager", "JobState", "JobStatus"]

#: Fleet size when the caller does not choose one.
DEFAULT_FLEET = 4


class JobState(enum.Enum):
    """One job's lifecycle state.

    ``PENDING`` (submitted, no region started yet) -> ``RUNNING`` ->
    one of the terminal states: ``DONE`` (every region committed),
    ``FAILED`` (a region raised; the lowest failing plan position's
    error is kept) or ``CANCELLED``.  The running/terminal split
    mirrors :class:`~repro.crawl.base.SessionState`, lifted from one
    session to one job.
    """

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        """``True`` once the job can no longer make progress."""
        return self in (
            JobState.DONE,
            JobState.FAILED,
            JobState.CANCELLED,
        )


@dataclass(frozen=True)
class JobStatus:
    """One job's externally visible status snapshot.

    ``regions_done`` / ``cost`` / ``tuples`` count the regions
    *committed to the store* -- exactly the progress that survives a
    kill -- and ``error`` carries a failed job's first (lowest plan
    position) failure message.
    """

    job_id: int
    tenant: str
    name: str
    state: JobState
    regions_done: int
    regions_total: int
    cost: int
    tuples: int
    error: str | None = None


class _Job:
    """Manager-internal live state of one active job."""

    def __init__(
        self,
        job_id: int,
        tenant: str,
        name: str,
        plan: PartitionPlan,
        scheduler: WorkStealingScheduler,
        sink: GridSink,
        runner: LocalUnitRunner,
        policy: ShardPolicy | None,
    ):
        self.job_id = job_id
        self.tenant = tenant
        self.name = name
        self.plan = plan
        self.scheduler = scheduler
        self.sink = sink
        self.runner = runner
        self.policy = policy
        self.state = JobState.PENDING
        self.error: str | None = None


class JobManager:
    """A shared worker fleet multiplexing many tenants' crawl jobs.

    Construction starts ``workers`` daemon threads; :meth:`submit`
    hands them jobs, :meth:`shutdown` drains them (each finishes its
    in-flight region, nothing else starts).  All public methods are
    thread-safe.

    Examples
    --------
    Two tenants share the fleet but not their budgets::

        registry = TenantLimitRegistry()
        registry.register("acme", budget=500)
        registry.register("umbrella", budget=80)
        with ResultStore("crawl.db") as store:
            manager = JobManager(store, registry, workers=4)
            job = manager.submit(
                "acme", dataset, k=64, name="demo",
                spec=CrawlSpec(max_workers=2),
            )
            manager.wait(job)
            manager.shutdown()
    """

    def __init__(
        self,
        store: ResultStore,
        registry: TenantLimitRegistry,
        *,
        workers: int = DEFAULT_FLEET,
    ):
        if workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        self._store = store
        self._registry = registry
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._jobs: dict[int, _Job] = {}
        self._order: list[int] = []
        self._rotation = 0
        self._stop = False
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                name=f"job-fleet-{index}",
                daemon=True,
            )
            for index in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    # Submission and lifecycle
    # ------------------------------------------------------------------
    def submit(
        self,
        tenant: str,
        dataset,
        k: int,
        *,
        name: str,
        spec: CrawlSpec | None = None,
        sessions: int | None = None,
        seed: int = 0,
        wrap_source=None,
    ) -> int:
        """Queue one crawl job; returns its durable job id.

        The job crawls ``dataset`` behind per-session
        :class:`~repro.server.server.TopKServer` fronts carrying the
        tenant's registered limits, partitioned into ``sessions``
        regions (default: the spec's ``max_workers``, else the fleet
        size is a sensible ceiling -- one region can occupy at most one
        worker).  ``spec`` is the crawl configuration -- the same
        :class:`~repro.crawl.spec.CrawlSpec` the batch CLI builds.
        ``wrap_source`` optionally wraps each session server (e.g. a
        :class:`~repro.server.latency.LatencySource` simulating network
        round trips, as the service benchmark does).

        Resubmitting an existing ``(tenant, name)`` resumes it: regions
        already committed to the store are pre-filed and re-issue zero
        queries.  A job whose stored identity (space, plan, ``k``)
        differs raises :class:`~repro.exceptions.SchemaError`.
        """
        with self._lock:
            if self._stop:
                raise RuntimeError("JobManager is shut down")
        if spec is None:
            spec = CrawlSpec()
        count = sessions or spec.max_workers or len(self._threads)
        plan = partition_space(dataset.space, count)
        job_id, completed = self._store.open_job(tenant, name, plan, k)
        limits = self._registry.limits(tenant)
        sources = [
            TopKServer(dataset, k, priority_seed=seed, limits=limits)
            for _ in range(plan.sessions)
        ]
        if wrap_source is not None:
            sources = [wrap_source(source) for source in sources]
        feed = AggregatorFeed(spec.aggregator, plan)

        def on_region(key: RegionKey, result: CrawlResult) -> None:
            # The durability boundary: the region, its rows and the
            # tenant's exact charge commit as one transaction.  The
            # charge snapshot is a callable so the store reads it at
            # commit time, inside its critical section -- workers
            # committing concurrently for one tenant would otherwise
            # race stale snapshots into the last write.
            self._store.region_done(
                job_id,
                key,
                result,
                tenant_charge=(
                    tenant,
                    lambda: self._registry.charges()[tenant],
                ),
            )
            if spec.on_region is not None:
                spec.on_region(key, result)

        sink = GridSink(plan, feed, completed, on_region)
        scheduler = WorkStealingScheduler(
            plan.bundles,
            spec.estimator,
            {key: result.cost for key, result in completed.items()},
        )
        policy = ShardPolicy.resolve(
            spec.shard_subtrees, plan, spec.estimator, len(self._threads)
        )
        runner = LocalUnitRunner(
            sources, spec.crawler_factory, spec.allow_partial, feed=feed
        )
        job = _Job(
            job_id, tenant, name, plan, scheduler, sink, runner, policy
        )
        with self._cond:
            if self._stop:
                raise RuntimeError("JobManager is shut down")
            if job_id in self._jobs and not self._jobs[job_id].state.terminal:
                raise ValueError(
                    f"job {tenant!r}/{name!r} is already active"
                )
            self._jobs[job_id] = job
            if job_id not in self._order:
                self._order.append(job_id)
            if scheduler.done():
                # Every region was already in the store: the resumed
                # job is complete before a single worker touches it.
                self._finalize_locked(job)
            self._cond.notify_all()
        return job_id

    def cancel(self, job_id: int) -> bool:
        """Cancel an active job; returns whether anything was stopped.

        Queued regions are discarded (the scheduler's ``abort`` drains
        them); a region already mid-crawl finishes its queries but its
        completion is dropped.  Terminal and unknown jobs return
        ``False``.
        """
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None or job.state.terminal:
                return False
            job.scheduler.abort()
            job.state = JobState.CANCELLED
            self._store.set_status(job_id, "cancelled")
            self._cond.notify_all()
            return True

    def wait(self, job_id: int, timeout: float | None = None) -> JobStatus:
        """Block until the job is terminal; returns its final status.

        Raises :class:`TimeoutError` if ``timeout`` (seconds) elapses
        first.
        """
        with self._cond:
            job = self._jobs.get(job_id)
            if job is not None and not self._cond.wait_for(
                lambda: job.state.terminal, timeout
            ):
                raise TimeoutError(
                    f"job {job_id} still {job.state.value} after "
                    f"{timeout}s"
                )
        return self.status(job_id)

    def status(self, job_id: int) -> JobStatus:
        """The job's current status (live state, durable counters)."""
        snapshot = self._store.job_status(job_id)
        with self._lock:
            job = self._jobs.get(job_id)
            if job is not None:
                state = job.state
                error = job.error
            else:
                state = JobState(snapshot["status"])
                error = snapshot["error"]
        return JobStatus(
            job_id=snapshot["job_id"],
            tenant=snapshot["tenant"],
            name=snapshot["name"],
            state=state,
            regions_done=snapshot["regions_done"],
            regions_total=snapshot["regions_total"],
            cost=snapshot["cost"],
            tuples=snapshot["tuples"],
            error=error,
        )

    def result(self, job_id: int) -> PartitionedResult:
        """A finished job's merged result, byte-identical to batch.

        Only for jobs completed in this server's lifetime (the result
        grid lives in memory; rows of older jobs come from
        :meth:`ResultStore.rows <repro.service.store.ResultStore.rows>`).
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise KeyError(f"job {job_id} is not active in this server")
            if job.state is not JobState.DONE:
                raise ValueError(
                    f"job {job_id} is {job.state.value}, not done"
                )
            grid = tuple(tuple(session) for session in job.sink.grid)
        return _merge_session_results(job.plan, grid)

    def shutdown(self) -> None:
        """Stop the fleet (idempotent).

        Each worker finishes the region it is crawling -- committed
        work is never torn -- and nothing further is dispatched;
        non-terminal jobs stay resumable from the store.
        """
        with self._cond:
            if self._stop:
                return
            self._stop = True
            self._cond.notify_all()
        for thread in self._threads:
            thread.join()

    def __enter__(self) -> "JobManager":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # The fleet
    # ------------------------------------------------------------------
    def _next_work_locked(self):
        """The next (job, task) under tenant round-robin, or ``None``.

        Walks tenants in rotation order starting after the tenant
        served last; within a tenant, jobs are tried in submission
        order.  Advancing the rotation *past* the tenant that got the
        slot is what makes dispatch fair: a tenant is served at most
        once per full rotation, however many jobs or regions it has
        queued.
        """
        tenants: list[str] = []
        by_tenant: dict[str, list[_Job]] = {}
        for job_id in self._order:
            job = self._jobs.get(job_id)
            if job is None or job.state.terminal:
                continue
            if job.tenant not in by_tenant:
                tenants.append(job.tenant)
                by_tenant[job.tenant] = []
            by_tenant[job.tenant].append(job)
        if not tenants:
            return None
        start = self._rotation % len(tenants)
        for offset in range(len(tenants)):
            tenant = tenants[(start + offset) % len(tenants)]
            for job in by_tenant[tenant]:
                task = job.scheduler.acquire(block=False)
                if task is not None:
                    if job.state is JobState.PENDING:
                        job.state = JobState.RUNNING
                        self._store.set_status(job.job_id, "running")
                    self._rotation = (start + offset + 1) % len(tenants)
                    return job, task
        return None

    def _worker_loop(self) -> None:
        while True:
            with self._cond:
                item = None
                while not self._stop:
                    item = self._next_work_locked()
                    if item is not None:
                        break
                    self._cond.wait()
                if item is None:
                    return
            job, task = item
            ok = run_region(task, job.runner, job.sink, job.policy)
            if ok:
                result = job.sink.grid[task.session][task.index]
                job.scheduler.complete(task, result.cost)
            else:
                job.scheduler.fail(task)
            with self._cond:
                if not job.state.terminal and job.scheduler.done():
                    self._finalize_locked(job)
                self._cond.notify_all()

    def _finalize_locked(self, job: _Job) -> None:
        # Caller holds self._lock.
        if job.sink.failures:
            job.sink.failures.sort(key=lambda failure: failure[0])
            job.error = str(job.sink.failures[0][1])
            job.state = JobState.FAILED
            self._store.set_status(
                job.job_id, "failed", error=job.error
            )
        else:
            job.state = JobState.DONE
            self._store.set_status(job.job_id, "done")
