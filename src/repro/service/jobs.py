"""The job server's scheduling core: one fleet, many tenants, fairness.

A :class:`JobManager` runs a fixed fleet of worker threads over every
active job at once.  Each job keeps its own
:class:`~repro.crawl.rebalance.WorkStealingScheduler` (regions in plan
order, estimate-guided stealing *within* the job) and its own
:class:`~repro.crawl.runtime.GridSink`; the manager's dispatch loop
round-robins **across tenants** on top of them: every time a worker
asks for work, the next tenant in rotation that has an acquirable
region gets the slot.  A tenant running ten jobs and a tenant running
one therefore drain at the same per-tenant rate -- the fairness
contract -- and a tenant whose budget is exhausted merely fails *its
own* regions (the per-tenant limits of
:class:`~repro.crawl.coordinator.TenantLimitRegistry` admit
independently), never stalling anyone else's.

Three layers extend that core:

* **Backends.**  The fleet threads are the *dispatch* plane; where a
  region unit actually crawls is the job's ``backend``.  ``thread``
  crawls inline on the fleet thread (the original shape), ``process``
  ships the unit to a shared :class:`~concurrent.futures.
  ProcessPoolExecutor` -- per-tenant limits rehosted on a
  :class:`~repro.crawl.coordinator.LimitCoordinator` so admission
  stays exactly-once and lease-batched across OS processes -- and
  ``async`` bridges awaitable sources onto a shared event loop.  All
  three commit through the same parent-side store seam, one
  transaction per region, so kill-and-restart re-issues zero queries
  regardless of backend.

* **Admission control.**  ``max_pending`` bounds each tenant's pending
  + running jobs; :meth:`JobManager.submit` refuses past the bound
  with a structured :class:`~repro.exceptions.RetryAfter` (nothing
  written, nothing charged).  Integer job ``priority`` folds into
  dispatch as strict priority *between* classes and tenant
  round-robin *within* a class.

* **Elasticity.**  A unit that raises
  :class:`~repro.exceptions.WorkerDeparted` (a killed pool worker, an
  injected fault) is re-queued at the front of its home session --
  never lost, never re-charged -- up to a per-job departure cap.

Regions execute through the runtime's
:func:`~repro.crawl.runtime.crawl_region_unit` -- the same unit of
work every batch executor bottoms out in -- so a job's stored output
is byte-identical to the standalone crawl of the same spec.  Completed
regions stream into the :class:`~repro.service.store.ResultStore`
(rows plus the tenant's exact charge, one transaction per region), and
a job resubmitted after a server death resumes from the store with its
committed regions pre-filed: zero queries re-issued.
"""

from __future__ import annotations

import asyncio
import enum
import itertools
import pickle
import threading
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from repro.crawl.base import CrawlResult
from repro.crawl.coordinator import (
    LimitCoordinator,
    SharedBudget,
    TenantLimitRegistry,
    lease_chunk_for_plan,
)
from repro.crawl.executors import _bridge_source, pickle_payload
from repro.crawl.partition import (
    PartitionedResult,
    PartitionPlan,
    _merge_session_results,
    partition_space,
)
from repro.crawl.rebalance import (
    RegionKey,
    RegionTask,
    WorkStealingScheduler,
)
from repro.crawl.runtime import (
    AggregatorFeed,
    GridSink,
    LocalUnitRunner,
    ShardPolicy,
    crawl_region_unit,
)
from repro.crawl.spec import CrawlSpec
from repro.exceptions import RetryAfter, WorkerDeparted
from repro.service.store import ResultStore
from repro.server.server import TopKServer

__all__ = [
    "JobManager",
    "JobState",
    "JobStatus",
    "BACKENDS",
    "rotation_order",
]

#: Fleet size when the caller does not choose one.
DEFAULT_FLEET = 4

#: Where a job's region units crawl (the dispatch plane is always the
#: manager's thread fleet).
BACKENDS = ("thread", "process", "async")


def rotation_order(tenants: list[str], cursor: int) -> list[str]:
    """Tenants in round-robin order, starting at ``cursor``.

    The pure core of the dispatch rotation: ``tenants`` is one
    priority class's tenants in first-submission order, ``cursor`` the
    class's rotation state, and the result is the order in which the
    next free worker offers them the slot.  Serving the tenant at
    offset ``i`` advances the cursor *past* it
    (``cursor % n + i + 1``), which is what bounds any tenant's wait
    to one full rotation -- the starvation-freedom contract the
    property tests pin down.
    """
    if not tenants:
        return []
    start = cursor % len(tenants)
    return [
        tenants[(start + offset) % len(tenants)]
        for offset in range(len(tenants))
    ]


class JobState(enum.Enum):
    """One job's lifecycle state.

    ``PENDING`` (submitted, no region started yet) -> ``RUNNING`` ->
    one of the terminal states: ``DONE`` (every region committed),
    ``FAILED`` (a region raised; the lowest failing plan position's
    error is kept) or ``CANCELLED``.  The running/terminal split
    mirrors :class:`~repro.crawl.base.SessionState`, lifted from one
    session to one job.
    """

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        """``True`` once the job can no longer make progress."""
        return self in (
            JobState.DONE,
            JobState.FAILED,
            JobState.CANCELLED,
        )


@dataclass(frozen=True)
class JobStatus:
    """One job's externally visible status snapshot.

    ``regions_done`` / ``cost`` / ``tuples`` count the regions
    *committed to the store* -- exactly the progress that survives a
    kill -- and ``error`` carries a failed job's first (lowest plan
    position) failure message.  ``priority`` is the job's admission
    class (higher is served strictly first).
    """

    job_id: int
    tenant: str
    name: str
    state: JobState
    regions_done: int
    regions_total: int
    cost: int
    tuples: int
    error: str | None = None
    priority: int = 0


class _Job:
    """Manager-internal live state of one active job."""

    def __init__(
        self,
        job_id: int,
        tenant: str,
        name: str,
        plan: PartitionPlan,
        scheduler: WorkStealingScheduler,
        sink: GridSink,
        runner: LocalUnitRunner | None,
        policy: ShardPolicy | None,
        *,
        priority: int = 0,
        backend: str = "thread",
        allow_partial: bool = False,
        payload: bytes | None = None,
        ticket: int = 0,
    ):
        self.job_id = job_id
        self.tenant = tenant
        self.name = name
        self.plan = plan
        self.scheduler = scheduler
        self.sink = sink
        self.runner = runner
        self.policy = policy
        self.priority = priority
        self.backend = backend
        self.allow_partial = allow_partial
        self.payload = payload
        self.ticket = ticket
        self.state = JobState.PENDING
        self.error: str | None = None
        self.departures = 0
        total = sum(len(bundle) for bundle in plan.bundles)
        #: Departures tolerated before a unit's next departure is a
        #: region failure: generous enough for every region to ride out
        #: a few kills, small enough that a permanently departing fleet
        #: terminates instead of spinning.
        self.departure_cap = 4 * (total + 1)


# ----------------------------------------------------------------------
# Process-backend wire: per-worker cached runners keyed by job ticket
# ----------------------------------------------------------------------
#: Unpickled (runner) per job ticket, one cache per pool worker.  Keyed
#: by the manager's monotonically increasing ticket -- never the job
#: id -- so a *resubmitted* job (new sources, fresh crawler state)
#: can never hit a stale cache entry from its previous life.
_UNIT_RUNNERS: OrderedDict[int, LocalUnitRunner] = OrderedDict()
_UNIT_RUNNER_LIMIT = 16


def _unit_runner(
    ticket: int, payload: bytes, allow_partial: bool
) -> LocalUnitRunner:
    """This pool worker's runner for one job, unpickled once."""
    runner = _UNIT_RUNNERS.get(ticket)
    if runner is not None:
        _UNIT_RUNNERS.move_to_end(ticket)
        return runner
    sources, factory, stubs = pickle.loads(payload)

    def flush() -> None:
        for stub in stubs:
            stub.flush()

    runner = LocalUnitRunner(
        sources, factory, allow_partial, flush=flush if stubs else None
    )
    _UNIT_RUNNERS[ticket] = runner
    while len(_UNIT_RUNNERS) > _UNIT_RUNNER_LIMIT:
        _UNIT_RUNNERS.popitem(last=False)
    return runner


def _pool_run_unit(
    ticket: int,
    payload: bytes,
    session: int,
    index: int,
    region,
    budget: int | None,
    allow_partial: bool,
):
    """Crawl one region unit in a pool worker; the result pickles back.

    The payload rides along with every task (the pool outlives any one
    job, so an initializer cannot know future jobs' sources) but is
    unpickled once per worker per job.  The runner's region boundary
    flushes the worker's shared-limit leases on every exit path, so
    the authoritative charge is exact by the time the parent commits
    the result -- and a :class:`~repro.exceptions.WorkerDeparted`
    raised mid-unit travels back pickled for the parent to re-queue.
    """
    runner = _unit_runner(ticket, payload, allow_partial)
    return crawl_region_unit(
        RegionTask(session, index, region), runner, budget
    )


class JobManager:
    """A shared worker fleet multiplexing many tenants' crawl jobs.

    Construction starts ``workers`` daemon threads; :meth:`submit`
    hands them jobs, :meth:`shutdown` drains them (each finishes its
    in-flight region, nothing else starts).  ``backend`` picks where
    region units crawl (``thread``, ``process`` or ``async``; a job
    spec's ``executor`` overrides per job), and ``max_pending`` bounds
    each tenant's pending + running jobs (``None`` = unbounded).  All
    public methods are thread-safe.

    Examples
    --------
    Two tenants share the fleet but not their budgets::

        registry = TenantLimitRegistry()
        registry.register("acme", budget=500)
        registry.register("umbrella", budget=80)
        with ResultStore("crawl.db") as store:
            manager = JobManager(store, registry, workers=4)
            job = manager.submit(
                "acme", dataset, k=64, name="demo",
                spec=CrawlSpec(max_workers=2),
            )
            manager.wait(job)
            manager.shutdown()
    """

    def __init__(
        self,
        store: ResultStore,
        registry: TenantLimitRegistry,
        *,
        workers: int = DEFAULT_FLEET,
        backend: str = "thread",
        max_pending: int | None = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        if backend not in BACKENDS:
            known = ", ".join(BACKENDS)
            raise ValueError(
                f"unknown backend {backend!r}; expected one of: {known}"
            )
        if max_pending is not None and max_pending < 1:
            raise ValueError(
                f"max_pending must be positive or None, got {max_pending}"
            )
        self._store = store
        self._registry = registry
        self._backend = backend
        self._max_pending = max_pending
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._jobs: dict[int, _Job] = {}
        self._order: list[int] = []
        #: Per-priority-class tenant rotation cursors.
        self._rotation: dict[int, int] = {}
        #: Submissions past the admission check but not yet inserted.
        self._reserved: dict[str, int] = {}
        self._stop = False
        # Lazily created multi-process / async plumbing.  Guarded by
        # its own lock so coordinator round trips never park the
        # dispatch lock; ordering is always backend lock -> job lock.
        self._backend_lock = threading.Lock()
        self._coordinator: LimitCoordinator | None = None
        self._pool: ProcessPoolExecutor | None = None
        self._shared_stubs: dict[str, list] = {}
        self._loop: asyncio.AbstractEventLoop | None = None
        self._loop_thread: threading.Thread | None = None
        self._tickets = itertools.count(1)
        #: Bytes of the last process-job payload shipped to the pool.
        self.last_payload_bytes = 0
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                name=f"job-fleet-{index}",
                daemon=True,
            )
            for index in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    # Submission and lifecycle
    # ------------------------------------------------------------------
    def submit(
        self,
        tenant: str,
        dataset,
        k: int,
        *,
        name: str,
        spec: CrawlSpec | None = None,
        sessions: int | None = None,
        seed: int = 0,
        priority: int = 0,
        wrap_source=None,
    ) -> int:
        """Queue one crawl job; returns its durable job id.

        The job crawls ``dataset`` behind per-session
        :class:`~repro.server.server.TopKServer` fronts carrying the
        tenant's registered limits, partitioned into ``sessions``
        regions (default: the spec's ``max_workers``, else the fleet
        size is a sensible ceiling -- one region can occupy at most one
        worker).  ``spec`` is the crawl configuration -- the same
        :class:`~repro.crawl.spec.CrawlSpec` the batch CLI builds; its
        ``executor`` field overrides the manager backend for this job.
        ``priority`` is the job's admission class: classes drain in
        strictly descending order, tenants round-robin within one.
        ``wrap_source`` optionally wraps each session server (e.g. a
        :class:`~repro.server.latency.LatencySource` simulating network
        round trips, as the service benchmark does).

        When the manager's ``max_pending`` bound is set and the tenant
        already has that many jobs pending or running, the submission
        is refused with :class:`~repro.exceptions.RetryAfter` *before*
        anything is written or charged.

        Resubmitting an existing ``(tenant, name)`` resumes it: regions
        already committed to the store are pre-filed and re-issue zero
        queries.  A job whose stored identity (space, plan, ``k``)
        differs raises :class:`~repro.exceptions.SchemaError`.
        """
        with self._lock:
            if self._stop:
                raise RuntimeError("JobManager is shut down")
        if spec is None:
            spec = CrawlSpec()
        backend = self._resolve_backend(spec)
        self._reserve_slot(tenant)
        try:
            return self._submit_reserved(
                tenant,
                dataset,
                k,
                name=name,
                spec=spec,
                backend=backend,
                sessions=sessions,
                seed=seed,
                priority=priority,
                wrap_source=wrap_source,
            )
        finally:
            self._release_slot(tenant)

    def _submit_reserved(
        self,
        tenant: str,
        dataset,
        k: int,
        *,
        name: str,
        spec: CrawlSpec,
        backend: str,
        sessions: int | None,
        seed: int,
        priority: int,
        wrap_source,
    ) -> int:
        count = sessions or spec.max_workers or len(self._threads)
        plan = partition_space(dataset.space, count)
        job_id, completed = self._store.open_job(
            tenant, name, plan, k, priority=priority
        )
        if backend == "process":
            stubs = self._share_tenant(tenant)
        else:
            with self._backend_lock:
                stubs = self._shared_stubs.get(tenant)
        # Once a tenant's limits are rehosted on the coordinator, every
        # job of that tenant -- whatever its backend -- admits through
        # the stubs: one authoritative copy, one exact charge.
        limits = (
            stubs if stubs is not None else self._registry.limits(tenant)
        )
        sources = [
            TopKServer(dataset, k, priority_seed=seed, limits=limits)
            for _ in range(plan.sessions)
        ]
        if wrap_source is not None:
            sources = [wrap_source(source) for source in sources]
        feed = AggregatorFeed(spec.aggregator, plan)

        if stubs:
            # Commit-time charge reads pull the authoritative counters
            # out of the coordinator (flushing parked leases) and land
            # them in the registry's local objects on the way.
            def charge() -> dict:
                return self._registry.pull_shared(tenant, stubs)
        else:

            def charge() -> dict:
                return self._registry.charges()[tenant]

        def on_region(key: RegionKey, result: CrawlResult) -> None:
            # The durability boundary: the region, its rows and the
            # tenant's exact charge commit as one transaction.  The
            # charge snapshot is a callable so the store reads it at
            # commit time, inside its critical section -- workers
            # committing concurrently for one tenant would otherwise
            # race stale snapshots into the last write.
            self._store.region_done(
                job_id, key, result, tenant_charge=(tenant, charge)
            )
            if spec.on_region is not None:
                spec.on_region(key, result)

        sink = GridSink(plan, feed, completed, on_region)
        scheduler = WorkStealingScheduler(
            plan.bundles,
            spec.estimator,
            {key: result.cost for key, result in completed.items()},
        )
        policy = ShardPolicy.resolve(
            spec.shard_subtrees, plan, spec.estimator, len(self._threads)
        )
        runner: LocalUnitRunner | None = None
        payload: bytes | None = None
        ticket = 0
        if backend == "process":
            if stubs:
                chunk = spec.lease_chunk
                if chunk is None:
                    chunk = self._clamp_tenant_chunk(
                        stubs, lease_chunk_for_plan(plan, spec.estimator)
                    )
                for stub in stubs:
                    if isinstance(stub, SharedBudget):
                        stub.lease_chunk = chunk
            payload = pickle_payload(sources, spec.crawler_factory, stubs)
            # Operator-side introspection: bytes shipped per dispatched
            # process job (benchmarks gate this; lower is better).
            self.last_payload_bytes = len(payload)
            ticket = next(self._tickets)
            self._ensure_pool()
        else:
            if backend == "async":
                loop = self._ensure_loop()
                sources = [
                    _bridge_source(source, loop) for source in sources
                ]
            flush = None
            if stubs:

                def flush() -> None:
                    for stub in stubs:
                        stub.flush()

            runner = LocalUnitRunner(
                sources,
                spec.crawler_factory,
                spec.allow_partial,
                feed=feed,
                flush=flush,
            )
        job = _Job(
            job_id,
            tenant,
            name,
            plan,
            scheduler,
            sink,
            runner,
            policy,
            priority=priority,
            backend=backend,
            allow_partial=spec.allow_partial,
            payload=payload,
            ticket=ticket,
        )
        with self._cond:
            if self._stop:
                raise RuntimeError("JobManager is shut down")
            if job_id in self._jobs and not self._jobs[job_id].state.terminal:
                raise ValueError(
                    f"job {tenant!r}/{name!r} is already active"
                )
            self._jobs[job_id] = job
            if job_id not in self._order:
                self._order.append(job_id)
            if scheduler.done():
                # Every region was already in the store: the resumed
                # job is complete before a single worker touches it.
                self._finalize_locked(job)
            self._cond.notify_all()
        return job_id

    def cancel(self, job_id: int) -> bool:
        """Cancel an active job; returns whether anything was stopped.

        Queued regions are discarded (the scheduler's ``abort`` drains
        them); a region already mid-crawl finishes its queries but its
        completion is dropped.  Terminal and unknown jobs return
        ``False``.
        """
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None or job.state.terminal:
                return False
            job.scheduler.abort()
            job.state = JobState.CANCELLED
            self._store.set_status(job_id, "cancelled")
            self._cond.notify_all()
            return True

    def wait(self, job_id: int, timeout: float | None = None) -> JobStatus:
        """Block until the job is terminal; returns its final status.

        Raises :class:`TimeoutError` if ``timeout`` (seconds) elapses
        first.
        """
        with self._cond:
            job = self._jobs.get(job_id)
            if job is not None and not self._cond.wait_for(
                lambda: job.state.terminal, timeout
            ):
                raise TimeoutError(
                    f"job {job_id} still {job.state.value} after "
                    f"{timeout}s"
                )
        return self.status(job_id)

    def status(self, job_id: int) -> JobStatus:
        """The job's current status (live state, durable counters)."""
        snapshot = self._store.job_status(job_id)
        with self._lock:
            job = self._jobs.get(job_id)
            if job is not None:
                state = job.state
                error = job.error
            else:
                state = JobState(snapshot["status"])
                error = snapshot["error"]
        return JobStatus(
            job_id=snapshot["job_id"],
            tenant=snapshot["tenant"],
            name=snapshot["name"],
            state=state,
            regions_done=snapshot["regions_done"],
            regions_total=snapshot["regions_total"],
            cost=snapshot["cost"],
            tuples=snapshot["tuples"],
            error=error,
            priority=snapshot["priority"],
        )

    def queue_depth(self, tenant: str) -> int:
        """The tenant's admission depth: pending + running + reserved.

        Exactly the number :meth:`submit` checks against
        ``max_pending``, and the ``depth`` a refusal's
        :class:`~repro.exceptions.RetryAfter` carries.
        """
        with self._lock:
            return self._depth_locked(tenant)

    def wait_for_slot(
        self, tenant: str, timeout: float | None = None
    ) -> bool:
        """Block until the tenant is under its admission bound.

        Returns ``True`` when a slot is free (always, when the manager
        is unbounded), ``False`` on timeout.  The natural retry loop
        around a :class:`~repro.exceptions.RetryAfter` refusal -- but
        note the slot is not *held*: a racing submitter can still take
        it first.
        """
        with self._cond:
            return self._cond.wait_for(
                lambda: self._stop
                or self._max_pending is None
                or self._depth_locked(tenant) < self._max_pending,
                timeout,
            )

    def result(self, job_id: int) -> PartitionedResult:
        """A finished job's merged result, byte-identical to batch.

        Only for jobs completed in this server's lifetime (the result
        grid lives in memory; rows of older jobs come from
        :meth:`ResultStore.rows <repro.service.store.ResultStore.rows>`).
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise KeyError(f"job {job_id} is not active in this server")
            if job.state is not JobState.DONE:
                raise ValueError(
                    f"job {job_id} is {job.state.value}, not done"
                )
            grid = tuple(tuple(session) for session in job.sink.grid)
        return _merge_session_results(job.plan, grid)

    def shutdown(self) -> None:
        """Stop the fleet (idempotent).

        Each worker finishes the region it is crawling -- committed
        work is never torn -- and nothing further is dispatched;
        non-terminal jobs stay resumable from the store.  Backend
        resources (process pool, limit coordinator, event loop) are
        torn down after the fleet drains, with every shared tenant's
        authoritative charge landed back in the registry first.
        """
        with self._cond:
            if self._stop:
                return
            self._stop = True
            self._cond.notify_all()
        for thread in self._threads:
            thread.join()
        with self._backend_lock:
            pool = self._pool
            self._pool = None
            coordinator = self._coordinator
            self._coordinator = None
            shared = dict(self._shared_stubs)
            self._shared_stubs.clear()
            loop = self._loop
            self._loop = None
            loop_thread = self._loop_thread
            self._loop_thread = None
        if pool is not None:
            pool.shutdown(wait=True)
        if coordinator is not None:
            # Land the exact authoritative charges in the registry's
            # local objects before the coordinator process goes away;
            # the store already holds them from the last region commit.
            for tenant, stubs in shared.items():
                self._registry.pull_shared(tenant, stubs)
            coordinator.shutdown()
        if loop is not None:
            loop.call_soon_threadsafe(loop.stop)
            if loop_thread is not None:
                loop_thread.join()
            loop.close()

    def __enter__(self) -> "JobManager":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # Admission control
    # ------------------------------------------------------------------
    def _depth_locked(self, tenant: str) -> int:
        depth = self._reserved.get(tenant, 0)
        for job in self._jobs.values():
            if job.tenant == tenant and not job.state.terminal:
                depth += 1
        return depth

    def _reserve_slot(self, tenant: str) -> None:
        """Admit one submission against the tenant's pending bound.

        The reservation closes the check-then-insert window: two
        racing submitters both seeing ``bound - 1`` jobs must not both
        pass.  Refusal is clean -- raised before the store, the
        registry or the backend plumbing is touched.
        """
        with self._cond:
            if self._max_pending is not None:
                depth = self._depth_locked(tenant)
                if depth >= self._max_pending:
                    raise RetryAfter(
                        f"tenant {tenant!r} has {depth} jobs pending or "
                        f"running (bound {self._max_pending}); retry "
                        "after one drains",
                        tenant=tenant,
                        depth=depth,
                        bound=self._max_pending,
                    )
            self._reserved[tenant] = self._reserved.get(tenant, 0) + 1

    def _release_slot(self, tenant: str) -> None:
        with self._cond:
            remaining = self._reserved.get(tenant, 0) - 1
            if remaining > 0:
                self._reserved[tenant] = remaining
            else:
                self._reserved.pop(tenant, None)
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # Backend plumbing
    # ------------------------------------------------------------------
    def _resolve_backend(self, spec: CrawlSpec) -> str:
        backend = spec.executor or self._backend
        if backend == "sequential":
            # The batch CLI's sequential executor is the thread
            # backend's dispatch shape with a one-worker fleet; at the
            # service layer the fleet size is the manager's, so the
            # unit still crawls inline on a fleet thread.
            backend = "thread"
        if backend not in BACKENDS:
            known = ", ".join(BACKENDS)
            raise ValueError(
                f"unknown backend {backend!r}; expected one of: {known}"
            )
        return backend

    def _ensure_pool(self) -> ProcessPoolExecutor:
        with self._backend_lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=len(self._threads)
                )
            return self._pool

    def _revive_pool(self, broken: ProcessPoolExecutor) -> None:
        """Replace a broken pool (a worker process actually died)."""
        with self._backend_lock:
            if self._pool is broken:
                broken.shutdown(wait=False)
                self._pool = ProcessPoolExecutor(
                    max_workers=len(self._threads)
                )

    def _ensure_loop(self) -> asyncio.AbstractEventLoop:
        with self._backend_lock:
            if self._loop is None:
                self._loop = asyncio.new_event_loop()
                self._loop_thread = threading.Thread(
                    target=self._loop.run_forever,
                    name="job-async-loop",
                    daemon=True,
                )
                self._loop_thread.start()
            return self._loop

    def _share_tenant(self, tenant: str) -> list:
        """The tenant's limits as coordinator stubs (hosted lazily).

        First process-backed submission for a tenant rehosts its
        registered limits on the manager's
        :class:`~repro.crawl.coordinator.LimitCoordinator`; afterwards
        *every* job of the tenant admits through the stubs.  Rehosting
        under the tenant's active in-process jobs would strand their
        local charges, so that is refused.
        """
        limits = self._registry.limits(tenant)
        with self._backend_lock:
            stubs = self._shared_stubs.get(tenant)
            if stubs is not None:
                return stubs
            if limits:
                with self._lock:
                    active = sum(
                        1
                        for job in self._jobs.values()
                        if job.tenant == tenant and not job.state.terminal
                    )
                if active:
                    raise ValueError(
                        f"cannot rehost tenant {tenant!r} limits on the "
                        f"coordinator while {active} of its jobs admit "
                        "in-process; drain them first"
                    )
            if self._coordinator is None:
                self._coordinator = LimitCoordinator().start()
            stubs = self._registry.share(tenant, self._coordinator)
            self._shared_stubs[tenant] = stubs
            return stubs

    def _clamp_tenant_chunk(self, stubs: list, chunk: int) -> int:
        """Cap a lease chunk against *this tenant's* budget headroom.

        The coordinator's own ``clamp_lease_chunk`` scans every shared
        budget it hosts -- across tenants -- which would let one poor
        tenant shrink a rich tenant's batching.  The service clamps
        per tenant: only the stubs at hand bound the chunk.
        """
        fleet = len(self._threads)
        for stub in stubs:
            if isinstance(stub, SharedBudget):
                cap = max(1, stub.remaining // (4 * fleet))
                chunk = min(chunk, cap)
        return max(1, chunk)

    # ------------------------------------------------------------------
    # The fleet
    # ------------------------------------------------------------------
    def _next_work_locked(self):
        """The next (job, task) under priority + tenant round-robin.

        Active jobs group into priority classes; classes are walked in
        strictly descending priority (a lower class is served only
        when every higher class has nothing acquirable).  Within a
        class, tenants are walked in rotation order starting after the
        tenant served last (:func:`rotation_order`); within a tenant,
        jobs are tried in submission order.  Advancing the class's
        cursor *past* the tenant that got the slot is what makes
        dispatch fair: a tenant is served at most once per full
        rotation of its class, however many jobs or regions it has
        queued.
        """
        classes: dict[int, list[str]] = {}
        by_tenant: dict[tuple[int, str], list[_Job]] = {}
        for job_id in self._order:
            job = self._jobs.get(job_id)
            if job is None or job.state.terminal:
                continue
            bucket = by_tenant.setdefault((job.priority, job.tenant), [])
            if not bucket:
                classes.setdefault(job.priority, []).append(job.tenant)
            bucket.append(job)
        for priority in sorted(classes, reverse=True):
            tenants = classes[priority]
            cursor = self._rotation.get(priority, 0)
            start = cursor % len(tenants)
            for offset, tenant in enumerate(rotation_order(tenants, cursor)):
                for job in by_tenant[(priority, tenant)]:
                    task = job.scheduler.acquire(block=False)
                    if task is not None:
                        if job.state is JobState.PENDING:
                            job.state = JobState.RUNNING
                            self._store.set_status(job.job_id, "running")
                        self._rotation[priority] = (
                            start + offset + 1
                        ) % len(tenants)
                        return job, task
        return None

    def _run_unit(self, job: _Job, task) -> CrawlResult:
        """Crawl one acquired unit on the job's backend (raises)."""
        budget = (
            job.policy.budget_for(task.key)
            if job.policy is not None
            else None
        )
        if job.backend != "process":
            return crawl_region_unit(task, job.runner, budget)
        pool = self._pool
        if pool is None:
            pool = self._ensure_pool()
        try:
            future = pool.submit(
                _pool_run_unit,
                job.ticket,
                job.payload,
                task.session,
                task.index,
                task.region,
                budget,
                job.allow_partial,
            )
            return future.result()
        except BrokenProcessPool as exc:
            self._revive_pool(pool)
            raise WorkerDeparted(
                f"process pool worker died mid-unit: {exc}"
            ) from exc

    def _requeue_departed(self, job: _Job, task) -> bool:
        """Put a departed unit back at the front of its home session.

        Returns whether the unit was re-queued; past the job's
        departure cap (or on a terminal job, whose scheduler is
        aborted) the departure is handled as a region failure instead.
        """
        with self._cond:
            job.departures += 1
            if job.state.terminal or job.departures > job.departure_cap:
                return False
            if not job.scheduler.requeue(task):
                return False
            self._cond.notify_all()
            return True

    def _fail_unit(self, job: _Job, task, exc: BaseException) -> None:
        job.sink.region_failed(task.key, task.session, exc)
        job.scheduler.fail(task)
        with self._cond:
            if not job.state.terminal and job.scheduler.done():
                self._finalize_locked(job)
            self._cond.notify_all()

    def _worker_loop(self) -> None:
        while True:
            with self._cond:
                item = None
                while not self._stop:
                    item = self._next_work_locked()
                    if item is not None:
                        break
                    self._cond.wait()
                if item is None:
                    return
            job, task = item
            try:
                result = self._run_unit(job, task)
            except WorkerDeparted as exc:
                # The worker is gone, not the unit: requeue and let
                # the fleet re-attempt (exactly-once charges survive
                # because doomed attempts flushed their leases).
                if not self._requeue_departed(job, task):
                    self._fail_unit(job, task, exc)
            except Exception as exc:  # noqa: BLE001 - filed, not raised
                self._fail_unit(job, task, exc)
            else:
                job.sink.region_done(task.key, result)
                job.scheduler.complete(task, result.cost)
                with self._cond:
                    if not job.state.terminal and job.scheduler.done():
                        self._finalize_locked(job)
                    self._cond.notify_all()

    def _finalize_locked(self, job: _Job) -> None:
        # Caller holds self._lock.
        if job.sink.failures:
            job.sink.failures.sort(key=lambda failure: failure[0])
            job.error = str(job.sink.failures[0][1])
            job.state = JobState.FAILED
            self._store.set_status(
                job.job_id, "failed", error=job.error
            )
        else:
            job.state = JobState.DONE
            self._store.set_status(job.job_id, "done")
