"""Re-crawling a changed hidden database and diffing the snapshots.

A crawler that keeps a mirror of a hidden database must refresh it:
listings appear, sell, and change price.  The paper's algorithms
extract a *snapshot*; this module adds the maintenance layer around
them:

* :func:`diff_snapshots` -- the multiset difference of two extracted
  bags: tuples added and removed between crawls (an in-place attribute
  change appears as one removal plus one addition, which is all a bag
  of anonymous tuples can express);
* :func:`recrawl` -- crawl the *current* server state with a fresh
  client (the old response cache is stale by definition) and return
  the new snapshot together with its diff against the previous one.

The diff is exact because both snapshots are exact -- a capability
sampling-based monitoring cannot offer.  Cost-wise a re-crawl pays the
full Theorem 1 price again; the interface's one-bit overflow signal
gives an algorithm nothing to detect "nothing changed here" with, so
within the paper's model there is no cheaper sound delta scheme.  (A
server-side change cursor would change the model, not the algorithm.)
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Callable

from repro.crawl.base import CrawlResult, Crawler
from repro.crawl.hybrid import Hybrid
from repro.exceptions import SchemaError
from repro.server.response import Row

__all__ = ["SnapshotDiff", "diff_snapshots", "recrawl"]


@dataclass(frozen=True)
class SnapshotDiff:
    """Multiset delta between two crawl snapshots.

    ``added`` and ``removed`` carry per-tuple multiplicities: a tuple
    whose count went from 2 to 5 appears in ``added`` with
    multiplicity 3.
    """

    added: Counter
    removed: Counter

    @property
    def unchanged(self) -> bool:
        """Whether the two snapshots are identical as bags."""
        return not self.added and not self.removed

    @property
    def tuples_added(self) -> int:
        """Total multiplicity added."""
        return sum(self.added.values())

    @property
    def tuples_removed(self) -> int:
        """Total multiplicity removed."""
        return sum(self.removed.values())

    def __str__(self) -> str:
        if self.unchanged:
            return "SnapshotDiff(unchanged)"
        return (
            f"SnapshotDiff(+{self.tuples_added} tuples, "
            f"-{self.tuples_removed} tuples)"
        )


def diff_snapshots(
    old_rows: list[Row] | tuple[Row, ...],
    new_rows: list[Row] | tuple[Row, ...],
) -> SnapshotDiff:
    """The bag difference ``new - old`` / ``old - new``."""
    old_bag = Counter(old_rows)
    new_bag = Counter(new_rows)
    return SnapshotDiff(added=new_bag - old_bag, removed=old_bag - new_bag)


def recrawl(
    source,
    previous: CrawlResult,
    *,
    crawler_factory: Callable[..., Crawler] = Hybrid,
) -> tuple[CrawlResult, SnapshotDiff]:
    """Crawl the server's current content and diff it against ``previous``.

    Parameters
    ----------
    source:
        The hidden database *now* (a fresh server or session -- never a
        warmed :class:`~repro.server.client.CachingClient`, whose cached
        responses describe the old state).
    previous:
        The snapshot to diff against; must be complete (diffing a
        partial snapshot would report its missing tail as removals).
    crawler_factory:
        Crawler applied to the current state; defaults to
        :class:`Hybrid`.

    Raises
    ------
    SchemaError
        If ``previous`` is partial or the schema changed between
        snapshots.
    """
    if not previous.complete:
        raise SchemaError(
            "cannot diff against a partial snapshot; finish the first "
            "crawl (or re-crawl from scratch)"
        )
    if source.space != previous.space:
        raise SchemaError(
            "the server's schema changed since the previous snapshot; "
            "diffing across schemas is undefined"
        )
    result = crawler_factory(source).crawl()
    return result, diff_snapshots(previous.rows, result.rows)
