"""``hybrid``: the mixed-space algorithm (paper Section 5).

The algorithm composes the two optimal building blocks:

* over the categorical prefix ``A1 .. Acat`` it runs (lazy-)slice-cover's
  extended DFS, with every numeric predicate left unconstrained --
  "the effect is to disregard all the numeric attributes, and hence,
  essentially emulates a categorical server";
* whenever the traversal reaches a categorical point ``p_cat`` (a leaf of
  the categorical data space tree whose slice overflowed), it invokes
  rank-shrink on the numeric subspace ``D_NUM(p_cat)`` -- all queries of
  that sub-crawl keep ``Ai = ci`` pinned on the categorical prefix,
  emulating a numeric server.

Cost (Lemma 9): ``(n/k) * sum_cat min(Ui, n/k) + sum_cat Ui +
O((d - cat) * n / k)`` in general; ``U1 + O(d * n / k)`` when
``cat = 1``.  Degenerate prefixes are handled naturally: with
``cat = 0`` hybrid *is* rank-shrink, with ``cat = d`` it is
(lazy-)slice-cover.
"""

from __future__ import annotations

from repro.crawl.base import Crawler
from repro.crawl.rank_shrink import solve_numeric
from repro.crawl.slice_cover import (
    categorical_point_handler,
    extended_dfs,
    preprocess_slice_table,
)
from repro.query.query import Query

__all__ = ["Hybrid"]


class Hybrid(Crawler):
    """The general crawler: works on numeric, categorical and mixed spaces.

    Parameters
    ----------
    lazy:
        Use the lazy slice table (the paper's recommended variant) when
        ``True`` (default); eager preprocessing when ``False``.
    threshold_divisor:
        Forwarded to the rank-shrink sub-crawls (ablation knob).
    """

    name = "hybrid"

    #: Interception point of the splittable front
    #: (:mod:`repro.crawl.sharding`): when set on an *instance*, each
    #: numeric leaf subspace is handed to this callable as
    #: ``(leaf_query, numeric_dims)`` instead of being rank-shrunk
    #: inline, letting a shard planner defer the sub-crawl to workers.
    defer_numeric_leaf = None

    def __init__(
        self,
        source,
        *,
        lazy: bool = True,
        max_queries: int | None = None,
        threshold_divisor: int = 4,
        batteries: bool = True,
    ):
        super().__init__(source, max_queries=max_queries, batteries=batteries)
        self._lazy = lazy
        self._threshold_divisor = threshold_divisor

    def _numeric_dims(self) -> list[int]:
        return list(range(self.space.cat, self.space.dimensionality))

    def _numeric_leaf_handler(self, leaf_query: Query) -> None:
        """Crawl ``D_NUM(p_cat)``: rank-shrink with the prefix pinned."""
        if self.defer_numeric_leaf is not None:
            self.defer_numeric_leaf(leaf_query, self._numeric_dims())
            return
        solve_numeric(
            self,
            leaf_query,
            self._numeric_dims(),
            threshold_divisor=self._threshold_divisor,
        )

    def _execute(self) -> None:
        cat = self.space.cat
        root = Query.full(self.space)
        if cat == 0:
            # Purely numeric: hybrid degenerates to rank-shrink (and
            # the leaf handler keeps the splittable front's deferral
            # hook working for this degenerate case too).
            self._numeric_leaf_handler(root)
            return
        if self.space.num == 0:
            leaf_handler = categorical_point_handler(self)
        else:
            leaf_handler = self._numeric_leaf_handler
        if self._lazy:
            response = self._run_query(root)
            if response.resolved:
                self._confirm(response.rows)
                return
            extended_dfs(self, root, 0, lazy=True, leaf_handler=leaf_handler)
        else:
            preprocess_slice_table(self)
            self.client.begin_phase("traversal")
            try:
                extended_dfs(
                    self, root, 0, lazy=False, leaf_handler=leaf_handler
                )
            finally:
                self.client.end_phase()
