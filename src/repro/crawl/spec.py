"""`CrawlSpec`: one validated config object for a partitioned crawl.

:meth:`CrawlExecutor.run <repro.crawl.executors.CrawlExecutor.run>`
accreted ten keyword arguments over six PRs (``rebalance``,
``estimator``, ``shard_subtrees``, ``shared_limits``, ``completed``,
``on_region``, ...), and every caller -- the CLI, the parallel front
door, the benchmarks, now the job service -- re-plumbed the same flags
by hand.  :class:`CrawlSpec` consolidates them into a single frozen,
validated dataclass:

* the **run half** (``crawler_factory``, ``allow_partial``,
  ``aggregator``, ``rebalance``, ``estimator``, ``shard_subtrees``,
  ``shared_limits``, ``completed``, ``on_region``) configures one
  executor invocation -- ``executor.run(sources, plan, spec)``;
* the **backend half** (``executor``, ``max_workers``,
  ``lease_chunk``) configures which executor to build --
  ``make_executor(spec=spec)`` -- so backend-specific knobs like the
  process backend's admission lease chunk ride the spec instead of
  constructor-only arguments.

Specs are plain frozen dataclasses: derive variants with
:func:`dataclasses.replace`, ship them across process boundaries
(picklable whenever their ``crawler_factory`` and callbacks are), and
submit them as jobs to :mod:`repro.service`.

:func:`spec_from_args` is the one flag->spec mapping both CLIs share:
``python -m repro.crawl`` and ``repro-serve`` build their specs through
it, so a crawl flag means exactly the same thing submitted as a service
job as it does on the command line.
"""

from __future__ import annotations

import dataclasses
import functools
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.crawl.base import Crawler, CrawlResult, ProgressAggregator
from repro.crawl.binary_shrink import BinaryShrink
from repro.crawl.dfs import DepthFirstSearch
from repro.crawl.hybrid import Hybrid
from repro.crawl.rank_shrink import RankShrink
from repro.crawl.rebalance import CostEstimator, RegionKey
from repro.crawl.slice_cover import LazySliceCover, SliceCover

__all__ = ["CrawlSpec", "spec_from_args", "ALGORITHMS"]

#: CLI algorithm names -> crawler classes, shared by ``python -m
#: repro.crawl`` and the service's job files.
ALGORITHMS: dict[str, type[Crawler]] = {
    "hybrid": Hybrid,
    "rank-shrink": RankShrink,
    "binary-shrink": BinaryShrink,
    "dfs": DepthFirstSearch,
    "slice-cover": SliceCover,
    "lazy-slice-cover": LazySliceCover,
}


@dataclass(frozen=True)
class CrawlSpec:
    """Everything one partitioned crawl needs, as one frozen object.

    Field semantics are exactly those of the keyword arguments they
    replace on :meth:`~repro.crawl.executors.CrawlExecutor.run` and
    :func:`~repro.crawl.executors.make_executor`; see those docstrings
    for the full contracts.  Validation happens at construction, so an
    invalid combination fails where the spec is *built* (the CLI, a
    service submission) rather than deep inside a worker fleet.

    Examples
    --------
    Build once, run anywhere -- the spec is the whole configuration::

        from repro import CrawlSpec, make_executor

        spec = CrawlSpec(
            executor="process", max_workers=4,
            rebalance=True, shard_subtrees="auto",
            shared_limits=True, lease_chunk=16,
        )
        executor = make_executor(spec=spec)
        merged = executor.run(sources, plan, spec)

    Derive variants with :func:`dataclasses.replace`::

        import dataclasses
        resumed = dataclasses.replace(spec, completed=ckpt.completed)
    """

    # -- backend half: consumed by make_executor(spec=...) ------------
    #: Registry name of the backend to build (``None`` = caller's
    #: choice, defaulting to ``"thread"`` in :func:`make_executor`).
    executor: str | None = None
    #: Worker count for the backend; ``None`` picks the default.
    max_workers: int | None = None
    #: Admission lease chunk for the process backend's shared-limit
    #: mode (``None`` = sized from the estimator); see
    #: :class:`~repro.crawl.executors.ProcessExecutor`.
    lease_chunk: int | None = None

    # -- run half: consumed by CrawlExecutor.run(sources, plan, spec) -
    #: Crawler class (or picklable factory) applied per region.
    crawler_factory: Callable[..., Crawler] = Hybrid
    #: Budget-interrupted regions yield partial results instead of
    #: raising.
    allow_partial: bool = False
    #: Optional live progress sink.
    aggregator: ProgressAggregator | None = None
    #: Enable work stealing.
    rebalance: bool = False
    #: Optional cost estimator seeding stealing / shard / lease
    #: decisions.
    estimator: CostEstimator | None = None
    #: ``None`` | shard target per region | ``"auto"``.
    shard_subtrees: int | str | None = None
    #: Route limits through the shared-state control plane (process
    #: backend).
    shared_limits: bool = False
    #: Already-crawled results keyed by plan position (resume).
    completed: Mapping[RegionKey, CrawlResult] | None = None
    #: Callback fired per newly completed region (checkpoint seam).
    on_region: Callable[[RegionKey, CrawlResult], None] | None = None

    def __post_init__(self):
        if self.executor is not None:
            # Late import: executors imports this module at its top.
            from repro.crawl.executors import EXECUTORS

            if self.executor not in EXECUTORS:
                known = ", ".join(sorted(EXECUTORS))
                raise ValueError(
                    f"unknown executor {self.executor!r}; expected one "
                    f"of: {known}"
                )
        if self.max_workers is not None and self.max_workers < 1:
            raise ValueError(
                f"max_workers must be positive, got {self.max_workers}"
            )
        if self.lease_chunk is not None and self.lease_chunk < 1:
            raise ValueError(
                f"lease_chunk must be positive, got {self.lease_chunk}"
            )
        shards = self.shard_subtrees
        if shards is not None and shards != "auto":
            if isinstance(shards, bool) or not isinstance(shards, int):
                raise ValueError(
                    "shard_subtrees must be a positive int, 'auto' or "
                    f"None, got {shards!r}"
                )
            if shards < 1:
                raise ValueError(
                    f"shard_subtrees must be positive, got {shards}"
                )
        if not callable(self.crawler_factory):
            raise ValueError(
                "crawler_factory must be callable, got "
                f"{self.crawler_factory!r}"
            )

    #: The field names of the run half -- exactly the legacy keyword
    #: arguments ``CrawlExecutor.run`` still accepts through its
    #: deprecation shim.
    RUN_FIELDS = frozenset(
        {
            "crawler_factory",
            "allow_partial",
            "aggregator",
            "rebalance",
            "estimator",
            "shard_subtrees",
            "shared_limits",
            "completed",
            "on_region",
        }
    )

    def replace(self, **changes: Any) -> "CrawlSpec":
        """A copy with ``changes`` applied (re-validated).

        Sugar for :func:`dataclasses.replace`, kept as a method so
        call sites read ``spec.replace(on_region=writer.region_done)``.
        """
        return dataclasses.replace(self, **changes)


def spec_from_args(args: Any) -> CrawlSpec:
    """Build a :class:`CrawlSpec` from CLI-shaped arguments.

    ``args`` is anything with the crawl CLI's attribute names -- an
    :class:`argparse.Namespace` from ``python -m repro.crawl``, or a
    namespace the service CLI assembles from one job entry of a jobs
    file.  Missing attributes take the CLI's defaults, so a job entry
    only needs the flags it changes.  This is the **one** flag->spec
    mapping; both CLIs call it, so a flag cannot mean two things.

    Recognised attributes: ``algorithm``, ``max_queries``,
    ``executor``, ``workers``, ``rebalance``, ``shard_subtrees``,
    ``shared_limits``, ``lease_chunk``, ``allow_partial``.

    Examples
    --------
    ::

        args = build_parser().parse_args(argv)
        spec = spec_from_args(args)
        executor = make_executor(spec=spec)
    """
    algorithm = getattr(args, "algorithm", "hybrid")
    try:
        crawler = ALGORITHMS[algorithm]
    except KeyError:
        known = ", ".join(sorted(ALGORITHMS))
        raise ValueError(
            f"unknown algorithm {algorithm!r}; expected one of: {known}"
        ) from None
    max_queries = getattr(args, "max_queries", None)
    factory: Callable[..., Crawler]
    # functools.partial (not a lambda) so the factory stays picklable
    # for the process backend.
    factory = functools.partial(crawler, max_queries=max_queries)
    workers = getattr(args, "workers", None)
    # The service layer calls the knob "backend" (it picks where region
    # units *run*, not how a standalone crawl is driven); both names
    # land in the same spec field, explicit "executor" winning.
    executor = getattr(args, "executor", None) or getattr(
        args, "backend", None
    )
    return CrawlSpec(
        executor=executor,
        max_workers=int(workers) if workers is not None else None,
        lease_chunk=getattr(args, "lease_chunk", None),
        crawler_factory=factory,
        allow_partial=bool(getattr(args, "allow_partial", False)),
        rebalance=bool(getattr(args, "rebalance", False)),
        shard_subtrees=getattr(args, "shard_subtrees", None),
        shared_limits=bool(getattr(args, "shared_limits", False)),
    )
