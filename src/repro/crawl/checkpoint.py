"""Crawl checkpoints: persist the response cache across processes.

The paper's cost model assumes crawls spread over days (per-IP query
quotas).  Within one process, resuming is free: algorithms are
deterministic and a shared :class:`~repro.server.client.CachingClient`
replays the finished prefix from its cache.  This module extends that
to process restarts -- the cache is serialised to a JSON file and loaded
back, so a crawler killed after day N continues on day N+1 without
re-issuing a single query.

Format: one JSON object per cached entry, with the query encoded as a
list of per-attribute predicate tokens (``null`` = wildcard /
unbounded range end) and the response as rows + overflow flag.  The
file embeds the data-space signature; loading against a different
schema fails loudly instead of corrupting a crawl.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.dataspace.space import DataSpace
from repro.exceptions import SchemaError
from repro.query.predicates import EqualityPredicate, RangePredicate
from repro.query.query import Query
from repro.server.client import CachingClient
from repro.server.response import QueryResponse

__all__ = ["save_checkpoint", "load_checkpoint"]

_FORMAT_VERSION = 1


def _space_signature(space: DataSpace) -> list[str]:
    return [str(attr) for attr in space]


def _encode_query(query: Query) -> list:
    tokens: list = []
    for pred in query.predicates:
        if isinstance(pred, EqualityPredicate):
            tokens.append(["eq", pred.value])
        else:
            assert isinstance(pred, RangePredicate)
            tokens.append(["range", pred.lo, pred.hi])
    return tokens


def _decode_query(tokens: list, space: DataSpace) -> Query:
    preds: list = []
    for token in tokens:
        kind = token[0]
        if kind == "eq":
            preds.append(EqualityPredicate(token[1]))
        elif kind == "range":
            preds.append(RangePredicate(token[1], token[2]))
        else:
            raise SchemaError(f"unknown predicate token {token!r}")
    return Query(tuple(preds), space)


def save_checkpoint(client: CachingClient, path: str | Path) -> Path:
    """Write the client's cached responses (and cost) to ``path``."""
    path = Path(path)
    entries = []
    for query in client.history:
        response = client.peek(query)
        assert response is not None
        entries.append(
            {
                "query": _encode_query(query),
                "rows": [list(row) for row in response.rows],
                "overflow": response.overflow,
            }
        )
    payload = {
        "version": _FORMAT_VERSION,
        "space": _space_signature(client.space),
        "k": client.k,
        "entries": entries,
    }
    with path.open("w") as handle:
        json.dump(payload, handle)
    return path


def load_checkpoint(client: CachingClient, path: str | Path) -> int:
    """Load cached responses from ``path`` into ``client``.

    Returns the number of entries restored.  Restored entries cost
    nothing; the client's cost counter keeps counting only queries that
    actually reach the server.

    Raises
    ------
    SchemaError
        If the checkpoint was taken against a different data space or
        retrieval limit (resuming would silently corrupt the crawl).
    """
    path = Path(path)
    with path.open() as handle:
        payload = json.load(handle)
    if payload.get("version") != _FORMAT_VERSION:
        raise SchemaError(
            f"unsupported checkpoint version {payload.get('version')!r}"
        )
    if payload["space"] != _space_signature(client.space):
        raise SchemaError(
            "checkpoint was taken against a different data space: "
            f"{payload['space']} vs {_space_signature(client.space)}"
        )
    if payload["k"] != client.k:
        raise SchemaError(
            f"checkpoint was taken at k={payload['k']}, client has "
            f"k={client.k}; responses would be inconsistent"
        )
    restored = 0
    for entry in payload["entries"]:
        query = _decode_query(entry["query"], client.space)
        response = QueryResponse(
            tuple(tuple(int(v) for v in row) for row in entry["rows"]),
            bool(entry["overflow"]),
        )
        if client.peek(query) is None:
            client._store_local(query, response)
            restored += 1
    return restored
