"""Crawl checkpoints: persist cache *and* runtime state across restarts.

The paper's cost model assumes crawls spread over days (per-IP query
quotas).  Within one process, resuming is free: algorithms are
deterministic and a shared :class:`~repro.server.client.CachingClient`
replays the finished prefix from its cache.  This module extends that
to process restarts, at two granularities:

* **Cache checkpoints** (:func:`save_checkpoint` /
  :func:`load_checkpoint`) serialise a caching client's response cache,
  so a single-session crawler killed after day N continues on day N+1
  without re-issuing a single query.
* **Runtime checkpoints** (:func:`save_crawl_checkpoint` /
  :func:`load_crawl_checkpoint` / :class:`CheckpointWriter`) serialise
  a *partitioned* crawl's progress -- every completed region's full
  :class:`~repro.crawl.base.CrawlResult` keyed by plan position, plus
  the query-budget counters -- so a killed multi-worker crawl resumes
  by re-running the executor with the completed regions pre-filed:
  zero queries re-issued, merged bytes identical to an uninterrupted
  run (region crawls are pure functions of (source, region), so the
  still-missing regions produce exactly what they always would).

Every write is **atomic**: the JSON lands in a temp file in the target
directory and is ``os.replace``-d into place, so a crash mid-save can
never corrupt the previous checkpoint -- the file either has the old
complete state or the new complete state.

Format: a JSON object with a ``version``, a ``kind`` discriminator
(``"cache"`` / ``"runtime"``; absent in version-1 files, which are all
cache checkpoints), and the data-space signature; loading against a
different schema -- or a file written by a *newer* format version --
fails loudly with :class:`~repro.exceptions.SchemaError` instead of
misparsing forward-incompatible entries.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from dataclasses import dataclass, field
from pathlib import Path

from repro.crawl.base import CrawlResult, ProgressPoint
from repro.crawl.partition import PartitionPlan
from repro.crawl.rebalance import RegionKey
from repro.dataspace.space import DataSpace
from repro.exceptions import SchemaError
from repro.query.predicates import EqualityPredicate, RangePredicate
from repro.query.query import Query
from repro.server.client import CachingClient
from repro.server.response import QueryResponse

__all__ = [
    "save_checkpoint",
    "load_checkpoint",
    "CrawlCheckpoint",
    "save_crawl_checkpoint",
    "load_crawl_checkpoint",
    "CheckpointWriter",
    "encode_result",
    "decode_result",
    "plan_signature",
    "space_signature",
]

_FORMAT_VERSION = 2


def _atomic_write(path: Path, payload: dict) -> None:
    """Write ``payload`` as JSON to ``path`` without a torn-write window.

    The JSON is written to a temp file in the same directory (same
    filesystem, so the final ``os.replace`` is atomic) and renamed into
    place only once fully flushed; on any failure the temp file is
    removed and the previous checkpoint survives untouched.
    """
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def _check_version(payload: dict, path: Path) -> int:
    """The file's format version, rejecting files from the future."""
    version = payload.get("version")
    if not isinstance(version, int) or version < 1:
        raise SchemaError(
            f"unsupported checkpoint version {version!r} in {path}"
        )
    if version > _FORMAT_VERSION:
        raise SchemaError(
            f"checkpoint {path} has format version {version}, but this "
            f"reader understands at most {_FORMAT_VERSION}; it was "
            "written by a newer release (forward-incompatible entries "
            "would be misparsed) -- upgrade to resume it"
        )
    return version


def _load_payload(path: Path, expected_kind: str) -> dict:
    with path.open() as handle:
        payload = json.load(handle)
    version = _check_version(payload, path)
    # Version-1 files predate the discriminator and are all cache
    # checkpoints.
    kind = payload.get("kind", "cache") if version >= 1 else "cache"
    if kind != expected_kind:
        raise SchemaError(
            f"checkpoint {path} holds {kind!r} state, not "
            f"{expected_kind!r} (cache checkpoints load with "
            "load_checkpoint, runtime checkpoints with "
            "load_crawl_checkpoint)"
        )
    return payload


def space_signature(space: DataSpace) -> list[str]:
    """The JSON-able identity of a data space (one string per attribute)."""
    return [str(attr) for attr in space]


def _encode_query(query: Query) -> list:
    tokens: list = []
    for pred in query.predicates:
        if isinstance(pred, EqualityPredicate):
            tokens.append(["eq", pred.value])
        else:
            assert isinstance(pred, RangePredicate)
            tokens.append(["range", pred.lo, pred.hi])
    return tokens


def _decode_query(tokens: list, space: DataSpace) -> Query:
    preds: list = []
    for token in tokens:
        kind = token[0]
        if kind == "eq":
            preds.append(EqualityPredicate(token[1]))
        elif kind == "range":
            preds.append(RangePredicate(token[1], token[2]))
        else:
            raise SchemaError(f"unknown predicate token {token!r}")
    return Query(tuple(preds), space)


def save_checkpoint(client: CachingClient, path: str | Path) -> Path:
    """Write the client's cached responses (and cost) to ``path``."""
    path = Path(path)
    entries = []
    for query in client.history:
        response = client.peek(query)
        assert response is not None
        entries.append(
            {
                "query": _encode_query(query),
                "rows": [list(row) for row in response.rows],
                "overflow": response.overflow,
            }
        )
    payload = {
        "version": _FORMAT_VERSION,
        "kind": "cache",
        "space": space_signature(client.space),
        "k": client.k,
        "entries": entries,
    }
    _atomic_write(path, payload)
    return path


def load_checkpoint(client: CachingClient, path: str | Path) -> int:
    """Load cached responses from ``path`` into ``client``.

    Returns the number of entries restored.  Restored entries cost
    nothing; the client's cost counter keeps counting only queries that
    actually reach the server.

    Raises
    ------
    SchemaError
        If the checkpoint was taken against a different data space or
        retrieval limit (resuming would silently corrupt the crawl),
        holds runtime rather than cache state, or was written by a
        newer format version than this reader understands.
    """
    path = Path(path)
    payload = _load_payload(path, "cache")
    if payload["space"] != space_signature(client.space):
        raise SchemaError(
            "checkpoint was taken against a different data space: "
            f"{payload['space']} vs {space_signature(client.space)}"
        )
    if payload["k"] != client.k:
        raise SchemaError(
            f"checkpoint was taken at k={payload['k']}, client has "
            f"k={client.k}; responses would be inconsistent"
        )
    restored = 0
    for entry in payload["entries"]:
        query = _decode_query(entry["query"], client.space)
        response = QueryResponse(
            tuple(tuple(int(v) for v in row) for row in entry["rows"]),
            bool(entry["overflow"]),
        )
        if client.peek(query) is None:
            client._store_local(query, response)
            restored += 1
    return restored


# ----------------------------------------------------------------------
# Runtime checkpoints: completed regions + budget counters
# ----------------------------------------------------------------------
def encode_result(result: CrawlResult) -> dict:
    """One region result as a JSON-able dict (rows, cost, progress...)."""
    return {
        "algorithm": result.algorithm,
        "rows": [list(row) for row in result.rows],
        "cost": result.cost,
        "complete": result.complete,
        "progress": [[p.queries, p.tuples] for p in result.progress],
        "phase_costs": dict(result.phase_costs),
    }


def decode_result(entry: dict, space: DataSpace) -> CrawlResult:
    """Inverse of :func:`encode_result`, rebinding ``space``."""
    return CrawlResult(
        algorithm=str(entry["algorithm"]),
        space=space,
        rows=[tuple(int(v) for v in row) for row in entry["rows"]],
        cost=int(entry["cost"]),
        complete=bool(entry["complete"]),
        progress=[
            ProgressPoint(int(q), int(t)) for q, t in entry["progress"]
        ],
        phase_costs={
            str(name): int(cost)
            for name, cost in entry.get("phase_costs", {}).items()
        },
    )


def plan_signature(plan: PartitionPlan) -> dict:
    """The JSON-able identity of a partition plan (attribute + regions)."""
    return {
        "attribute": plan.attribute,
        "bundles": [
            [_encode_query(region) for region in bundle]
            for bundle in plan.bundles
        ],
    }


@dataclass
class CrawlCheckpoint:
    """A loaded runtime checkpoint, ready to hand to an executor.

    ``completed`` maps plan positions to their full results -- pass it
    as the executor's ``completed`` argument (or the CLI's ``--resume``
    path does) so those regions are pre-filed and never re-crawled.
    ``budget`` is the ``QueryBudget.state()`` snapshot taken with the
    checkpoint (``None`` when the crawl ran without a budget): restore
    it before resuming so the queries already paid stay charged.
    """

    completed: dict[RegionKey, CrawlResult] = field(default_factory=dict)
    budget: dict | None = None


def save_crawl_checkpoint(
    path: str | Path,
    plan: PartitionPlan,
    k: int,
    completed: dict[RegionKey, CrawlResult],
    *,
    budget: dict | None = None,
) -> Path:
    """Atomically write a partitioned crawl's runtime state to ``path``.

    ``completed`` holds every region result finished so far, keyed by
    plan position; ``budget`` is an optional ``QueryBudget.state()``
    snapshot.  The file embeds the data-space signature, ``k`` and the
    full plan signature, so resuming against a different schema, limit
    or plan fails loudly instead of splicing foreign results.
    """
    path = Path(path)
    payload = {
        "version": _FORMAT_VERSION,
        "kind": "runtime",
        "space": space_signature(plan.space),
        "k": int(k),
        "plan": plan_signature(plan),
        "completed": [
            {
                "session": session,
                "index": index,
                "result": encode_result(result),
            }
            for (session, index), result in sorted(completed.items())
        ],
        "budget": dict(budget) if budget is not None else None,
    }
    _atomic_write(path, payload)
    return path


def load_crawl_checkpoint(
    path: str | Path, plan: PartitionPlan, k: int
) -> CrawlCheckpoint:
    """Load a runtime checkpoint taken for exactly this plan and ``k``.

    Raises
    ------
    SchemaError
        If the checkpoint was taken against a different data space,
        retrieval limit or partition plan (its results would be spliced
        into the wrong regions), holds cache rather than runtime state,
        or was written by a newer format version.
    """
    path = Path(path)
    payload = _load_payload(path, "runtime")
    if payload["space"] != space_signature(plan.space):
        raise SchemaError(
            "runtime checkpoint was taken against a different data "
            f"space: {payload['space']} vs {space_signature(plan.space)}"
        )
    if payload["k"] != int(k):
        raise SchemaError(
            f"runtime checkpoint was taken at k={payload['k']}, the "
            f"resume requests k={k}; results would be inconsistent"
        )
    if payload["plan"] != plan_signature(plan):
        raise SchemaError(
            "runtime checkpoint was taken for a different partition "
            "plan (sessions, regions or split attribute differ); its "
            "results cannot be filed into this plan's positions"
        )
    completed: dict[RegionKey, CrawlResult] = {}
    for entry in payload["completed"]:
        session, index = int(entry["session"]), int(entry["index"])
        if not (
            0 <= session < plan.sessions
            and 0 <= index < len(plan.bundles[session])
        ):
            raise SchemaError(
                f"runtime checkpoint entry ({session}, {index}) lies "
                "outside the plan"
            )
        completed[(session, index)] = decode_result(
            entry["result"], plan.space
        )
    return CrawlCheckpoint(completed=completed, budget=payload["budget"])


class CheckpointWriter:
    """Incremental runtime-checkpoint writer for a running crawl.

    Wire its :meth:`region_done` as the executor's ``on_region``
    callback: each newly completed region atomically rewrites the
    checkpoint with everything finished so far (plus a fresh budget
    snapshot when a ``budget`` object was given), so killing the
    process at *any* point leaves a loadable checkpoint of some prefix
    of the crawl -- and resuming from it re-issues zero queries for
    that prefix.  Thread-safe: whichever worker files a region may
    invoke it.

    Examples
    --------
    ::

        writer = CheckpointWriter(path, plan, k=64, budget=budget)
        spec = CrawlSpec(on_region=writer.region_done)
        executor.run(sources, plan, spec)
    """

    def __init__(
        self,
        path: str | Path,
        plan: PartitionPlan,
        k: int,
        *,
        budget=None,
        completed: dict[RegionKey, CrawlResult] | None = None,
    ):
        self._path = Path(path)
        self._plan = plan
        self._k = int(k)
        #: An object with a ``state()`` snapshot method (a
        #: :class:`~repro.server.limits.QueryBudget`), or ``None``.
        self._budget = budget
        self._completed = dict(completed or {})
        self._lock = threading.Lock()

    @property
    def completed(self) -> dict[RegionKey, CrawlResult]:
        """A snapshot of every region filed so far."""
        with self._lock:
            return dict(self._completed)

    def region_done(self, key: RegionKey, result: CrawlResult) -> None:
        """File one completed region and rewrite the checkpoint."""
        with self._lock:
            self._completed[key] = result
            self._write_locked()

    def write(self) -> Path:
        """Rewrite the checkpoint from the current state (e.g. to seed
        the file before any region completes)."""
        with self._lock:
            self._write_locked()
        return self._path

    def _write_locked(self) -> None:
        budget = self._budget.state() if self._budget is not None else None
        save_crawl_checkpoint(
            self._path,
            self._plan,
            self._k,
            self._completed,
            budget=budget,
        )
