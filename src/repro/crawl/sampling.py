"""Random-probing baseline: what sampling-style access achieves.

The paper's related work (Section 1.4) contrasts crawling with the
query-based *sampling* line of research ([8, 9, 14]...): sampling
answers aggregate questions from a subset, but "virtually any query on
the database" needs the full content -- and random probing fundamentally
cannot deliver it with a bounded budget.  This module implements that
baseline so the claim is measurable:

:class:`RandomProber` issues random point/slice probes (the natural
uninformed strategy against the interface) and records its coverage
curve.  On any realistically-sized database its coverage flattens with
heavy diminishing returns -- per-probe yield decays as the unseen mass
concentrates in rare regions -- while the paper's crawlers finish with
cost ``O(n/k)``-ish.  The comparison is exercised in
``benchmarks/bench_sampling_baseline.py``.

Unlike the real crawlers, the prober is *not* guaranteed (or expected)
to terminate with the full bag; it runs until its probe budget is
spent.
"""

from __future__ import annotations

import numpy as np

from repro.crawl.base import Crawler
from repro.exceptions import SchemaError
from repro.query.query import Query

__all__ = ["RandomProber"]


class RandomProber(Crawler):
    """Uninformed baseline: random single-attribute probes.

    Each probe picks a random attribute and a random constraint on it
    (a categorical value, or a random narrow range for numeric
    attributes within the observed value span), leaving everything else
    unconstrained.  Returned tuples are collected as a *set* of
    distinct tuples -- multiplicities cannot be certified without
    resolved disjoint coverage, which is precisely what this strategy
    lacks.

    Parameters
    ----------
    probes:
        The probe budget.
    seed:
        RNG seed for probe selection.
    """

    name = "random-prober"

    def __init__(self, source, *, probes: int = 1000, seed: int = 0):
        super().__init__(source, max_queries=None)
        if probes < 1:
            raise SchemaError("probes must be positive")
        self._probes = probes
        self._rng = np.random.default_rng(seed)
        #: Distinct tuples observed, with the cost at first sighting.
        self.coverage_curve: list[tuple[int, int]] = []

    def _random_probe(
        self, observed_span: dict[int, tuple[int, int]]
    ) -> Query:
        space = self.space
        query = Query.full(space)
        dim = int(self._rng.integers(0, space.dimensionality))
        attr = space[dim]
        if attr.is_categorical:
            value = int(self._rng.integers(1, attr.domain_size + 1))
            return query.with_value(dim, value)
        lo, hi = observed_span.get(dim, (0, 1))
        if hi <= lo:
            hi = lo + 1
        width = max(1, (hi - lo) // 64)
        start = int(self._rng.integers(lo, hi + 1))
        return query.with_range(dim, start, start + width)

    def _execute(self) -> None:
        seen: set = set()
        span: dict[int, tuple[int, int]] = {}

        def absorb(rows) -> None:
            for row in rows:
                if row not in seen:
                    seen.add(row)
                    self._confirm([row])
                for dim in range(self.space.cat, self.space.dimensionality):
                    lo, hi = span.get(dim, (row[dim], row[dim]))
                    span[dim] = (min(lo, row[dim]), max(hi, row[dim]))

        # Seed with the all-wildcard query, like any client would.
        absorb(self._run_query(Query.full(self.space)).rows)
        self.coverage_curve.append((self.client.cost, len(seen)))
        for _ in range(self._probes - 1):
            response = self._run_query(self._random_probe(span))
            absorb(response.rows)
            self.coverage_curve.append((self.client.cost, len(seen)))

    def distinct_seen(self) -> int:
        """Number of distinct tuples observed so far."""
        return self.coverage_curve[-1][1] if self.coverage_curve else 0
